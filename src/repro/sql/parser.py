"""Recursive-descent parser for the GRFusion SQL dialect.

Grammar highlights beyond plain SQL:

* ``CREATE [UNDIRECTED|DIRECTED] GRAPH VIEW name
  VERTEXES(ID = col, attr = col, ...) FROM source
  EDGES(ID = col, FROM = col, TO = col, attr = col, ...) FROM source``
* ``FROM GV.PATHS PS [HINT(SHORTESTPATH(attr) | DFS | BFS)]`` and the
  sibling ``GV.VERTEXES`` / ``GV.EDGES`` constructs
* path element access in expressions: ``PS.Edges[0..*].attr``,
  ``PS.Vertexes[1..2].attr``, ``PS.StartVertex.Id``, ``PS.Length`` —
  parsed as generic :class:`~repro.sql.ast.FieldAccess` chains
* ``SELECT TOP n ...`` (Listing 6 of the paper) as well as ``LIMIT``
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlSyntaxError
from . import ast
from .lexer import Lexer, Token, TokenType

_GRAPH_ELEMENTS = {"PATHS", "VERTEXES", "EDGES"}

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Parser:
    """Parses one token stream into one or more statements."""

    def __init__(self, text: str):
        self._tokens: List[Token] = Lexer(text).tokens()
        self._position = 0
        self._parameter_count = 0

    # ------------------------------------------------------------------
    # token utilities
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if self._position < len(self._tokens) - 1:
            self._position += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(
            f"{message}, found {token.value!r}" if token.value else message,
            token.line,
            token.column,
        )

    def _check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        return self._peek().matches(type_, value)

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value.upper() in keywords

    def _accept(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: Optional[str] = None) -> Token:
        if self._check(type_, value):
            return self._advance()
        expected = value or type_.name
        raise self._error(f"expected {expected}")

    def _expect_name(self) -> str:
        """Accept an identifier, or a keyword used as a name."""
        token = self._peek()
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._advance()
            return token.value
        raise self._error("expected a name")

    def _at_end(self) -> bool:
        return self._peek().type is TokenType.EOF

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def parse(self) -> ast.Statement:
        statement = self._parse_statement()
        self._accept(TokenType.PUNCTUATION, ";")
        if not self._at_end():
            raise self._error("unexpected trailing input")
        return statement

    def parse_many(self) -> List[ast.Statement]:
        statements = []
        while not self._at_end():
            statements.append(self._parse_statement())
            while self._accept(TokenType.PUNCTUATION, ";"):
                pass
        return statements

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _parse_statement(self) -> ast.Statement:
        if self._check_keyword("EXPLAIN"):
            return self._parse_explain()
        if self._check_keyword("SELECT"):
            return self._parse_select_with_set_ops()
        if self._check_keyword("CREATE"):
            return self._parse_create()
        if self._check_keyword("DROP"):
            return self._parse_drop()
        if self._check_keyword("INSERT"):
            return self._parse_insert()
        if self._check_keyword("UPDATE"):
            return self._parse_update()
        if self._check_keyword("DELETE"):
            return self._parse_delete()
        if self._check_keyword("TRUNCATE"):
            return self._parse_truncate()
        if self._check_keyword("ALTER"):
            return self._parse_alter()
        raise self._error("expected a statement")

    def _parse_explain(self) -> ast.Explain:
        self._expect(TokenType.KEYWORD, "EXPLAIN")
        analyze = self._accept(TokenType.KEYWORD, "ANALYZE") is not None
        if self._check_keyword("EXPLAIN"):
            raise self._error("EXPLAIN cannot be nested")
        statement = self._parse_statement()
        return ast.Explain(statement, analyze)

    # -------------------------- CREATE --------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "CREATE")
        if self._check_keyword("TABLE"):
            return self._parse_create_table()
        if self._check_keyword("UNIQUE", "INDEX"):
            return self._parse_create_index()
        if self._check_keyword("MATERIALIZED", "VIEW"):
            return self._parse_create_view()
        if self._check_keyword("UNDIRECTED", "DIRECTED", "GRAPH"):
            return self._parse_create_graph_view()
        raise self._error("expected TABLE, INDEX, VIEW or GRAPH VIEW")

    def _parse_create_table(self) -> ast.CreateTable:
        self._expect(TokenType.KEYWORD, "TABLE")
        name = self._expect_name()
        self._expect(TokenType.PUNCTUATION, "(")
        columns: List[ast.ColumnDef] = []
        while True:
            column_name = self._expect_name()
            type_name = self._expect_name()
            # optional parenthesized length, e.g. VARCHAR(32): parsed, ignored
            if self._accept(TokenType.PUNCTUATION, "("):
                self._expect(TokenType.INTEGER)
                self._expect(TokenType.PUNCTUATION, ")")
            primary_key = False
            not_null = False
            while True:
                if self._accept(TokenType.KEYWORD, "PRIMARY"):
                    self._expect(TokenType.KEYWORD, "KEY")
                    primary_key = True
                elif self._check_keyword("NOT"):
                    self._advance()
                    self._expect(TokenType.KEYWORD, "NULL")
                    not_null = True
                else:
                    break
            columns.append(
                ast.ColumnDef(column_name, type_name, primary_key, not_null)
            )
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        self._expect(TokenType.PUNCTUATION, ")")
        partition_by = None
        if self._accept(TokenType.KEYWORD, "PARTITION"):
            self._expect(TokenType.KEYWORD, "BY")
            partition_by = self._expect_name()
        return ast.CreateTable(name, columns, partition_by)

    def _parse_create_index(self) -> ast.CreateIndex:
        unique = bool(self._accept(TokenType.KEYWORD, "UNIQUE"))
        self._expect(TokenType.KEYWORD, "INDEX")
        name = self._expect_name()
        self._expect(TokenType.KEYWORD, "ON")
        table = self._expect_name()
        self._expect(TokenType.PUNCTUATION, "(")
        columns = [self._expect_name()]
        while self._accept(TokenType.PUNCTUATION, ","):
            columns.append(self._expect_name())
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.CreateIndex(name, table, columns, unique)

    def _parse_create_view(self) -> ast.CreateView:
        self._accept(TokenType.KEYWORD, "MATERIALIZED")
        self._expect(TokenType.KEYWORD, "VIEW")
        name = self._expect_name()
        self._expect(TokenType.KEYWORD, "AS")
        query = self._parse_select()
        return ast.CreateView(name, query)

    def _parse_create_graph_view(self) -> ast.CreateGraphView:
        directed = True
        if self._accept(TokenType.KEYWORD, "UNDIRECTED"):
            directed = False
        else:
            self._accept(TokenType.KEYWORD, "DIRECTED")
        self._expect(TokenType.KEYWORD, "GRAPH")
        self._expect(TokenType.KEYWORD, "VIEW")
        name = self._expect_name()
        self._expect(TokenType.KEYWORD, "VERTEXES")
        vertex_mappings = self._parse_graph_mappings()
        self._expect(TokenType.KEYWORD, "FROM")
        vertex_source = self._expect_name()
        self._expect(TokenType.KEYWORD, "EDGES")
        edge_mappings = self._parse_graph_mappings()
        self._expect(TokenType.KEYWORD, "FROM")
        edge_source = self._expect_name()
        return ast.CreateGraphView(
            name,
            directed,
            vertex_mappings,
            vertex_source,
            edge_mappings,
            edge_source,
        )

    def _parse_graph_mappings(self) -> List[Tuple[str, str]]:
        """Parse ``(attr = column, ...)``; FROM/TO/ID may be keywords."""
        self._expect(TokenType.PUNCTUATION, "(")
        mappings: List[Tuple[str, str]] = []
        while True:
            attribute = self._expect_name()
            self._expect(TokenType.OPERATOR, "=")
            source_column = self._expect_name()
            mappings.append((attribute, source_column))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        self._expect(TokenType.PUNCTUATION, ")")
        return mappings

    def _parse_alter(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "ALTER")
        self._expect(TokenType.KEYWORD, "GRAPH")
        self._expect(TokenType.KEYWORD, "VIEW")
        name = self._expect_name()
        self._expect(TokenType.KEYWORD, "ADD")
        if self._accept(TokenType.KEYWORD, "VERTEXES"):
            element = "VERTEXES"
        elif self._accept(TokenType.KEYWORD, "EDGES"):
            element = "EDGES"
        else:
            raise self._error("expected VERTEXES or EDGES")
        mappings = self._parse_graph_mappings()
        self._expect(TokenType.KEYWORD, "FROM")
        source = self._expect_name()
        return ast.AlterGraphViewAddSource(name, element, mappings, source)

    # --------------------------- DROP ---------------------------------

    def _parse_drop(self) -> ast.Drop:
        self._expect(TokenType.KEYWORD, "DROP")
        if self._accept(TokenType.KEYWORD, "GRAPH"):
            self._expect(TokenType.KEYWORD, "VIEW")
            kind = "GRAPH VIEW"
        elif self._accept(TokenType.KEYWORD, "TABLE"):
            kind = "TABLE"
        elif self._accept(TokenType.KEYWORD, "VIEW"):
            kind = "VIEW"
        elif self._accept(TokenType.KEYWORD, "INDEX"):
            kind = "INDEX"
        else:
            raise self._error("expected TABLE, VIEW, INDEX or GRAPH VIEW")
        if_exists = False
        if self._accept(TokenType.KEYWORD, "IS"):
            # tolerated typo-path intentionally not supported; keep strict
            raise self._error("expected object name")
        name = self._expect_name()
        return ast.Drop(kind, name, if_exists)

    # --------------------------- DML ----------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._expect_name()
        columns: Optional[List[str]] = None
        if self._accept(TokenType.PUNCTUATION, "("):
            columns = [self._expect_name()]
            while self._accept(TokenType.PUNCTUATION, ","):
                columns.append(self._expect_name())
            self._expect(TokenType.PUNCTUATION, ")")
        if self._check_keyword("SELECT"):
            return ast.Insert(table, columns, [], query=self._parse_select())
        self._expect(TokenType.KEYWORD, "VALUES")
        rows: List[List[ast.Expression]] = []
        while True:
            self._expect(TokenType.PUNCTUATION, "(")
            row = [self._parse_expression()]
            while self._accept(TokenType.PUNCTUATION, ","):
                row.append(self._parse_expression())
            self._expect(TokenType.PUNCTUATION, ")")
            rows.append(row)
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        return ast.Insert(table, columns, rows)

    def _parse_update(self) -> ast.Update:
        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._expect_name()
        self._expect(TokenType.KEYWORD, "SET")
        assignments: List[Tuple[str, ast.Expression]] = []
        while True:
            column = self._expect_name()
            self._expect(TokenType.OPERATOR, "=")
            assignments.append((column, self._parse_expression()))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()
        return ast.Update(table, assignments, where)

    def _parse_delete(self) -> ast.Delete:
        self._expect(TokenType.KEYWORD, "DELETE")
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect_name()
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()
        return ast.Delete(table, where)

    def _parse_truncate(self) -> ast.Truncate:
        self._expect(TokenType.KEYWORD, "TRUNCATE")
        self._accept(TokenType.KEYWORD, "TABLE")
        return ast.Truncate(self._expect_name())

    # -------------------------- SELECT --------------------------------

    def _parse_select(self) -> ast.Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = bool(self._accept(TokenType.KEYWORD, "DISTINCT"))
        limit: Optional[int] = None
        if self._accept(TokenType.KEYWORD, "TOP"):
            limit = int(self._expect(TokenType.INTEGER).value)
        items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_select_item())
        self._expect(TokenType.KEYWORD, "FROM")
        from_items = [self._parse_from_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            from_items.append(self._parse_from_item())
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()
        group_by: List[ast.Expression] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._parse_expression())
            while self._accept(TokenType.PUNCTUATION, ","):
                group_by.append(self._parse_expression())
        having = None
        if self._accept(TokenType.KEYWORD, "HAVING"):
            having = self._parse_expression()
        order_by: List[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            while True:
                expression = self._parse_expression()
                ascending = True
                if self._accept(TokenType.KEYWORD, "DESC"):
                    ascending = False
                else:
                    self._accept(TokenType.KEYWORD, "ASC")
                order_by.append(ast.OrderItem(expression, ascending))
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break
        offset = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            limit = int(self._expect(TokenType.INTEGER).value)
        if self._accept(TokenType.KEYWORD, "OFFSET"):
            offset = int(self._expect(TokenType.INTEGER).value)
        return ast.Select(
            items,
            from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_with_set_ops(self) -> ast.Statement:
        statement: ast.Statement = self._parse_select()
        while self._accept(TokenType.KEYWORD, "UNION"):
            all_rows = bool(self._accept(TokenType.KEYWORD, "ALL"))
            right = self._parse_select()
            statement = ast.SetOperation(statement, right, all_rows)
        return statement

    def _parse_select_item(self) -> ast.SelectItem:
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # alias.* form
        if (
            self._peek().type is TokenType.IDENTIFIER
            and self._peek(1).matches(TokenType.PUNCTUATION, ".")
            and self._peek(2).matches(TokenType.OPERATOR, "*")
        ):
            qualifier = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(qualifier))
        expression = self._parse_expression()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect_name()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression, alias)

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_single_from_item()
        while self._check_keyword("JOIN", "INNER", "LEFT", "CROSS"):
            kind = "INNER"
            if self._accept(TokenType.KEYWORD, "INNER"):
                pass
            elif self._accept(TokenType.KEYWORD, "LEFT"):
                self._accept(TokenType.KEYWORD, "OUTER")
                kind = "LEFT"
            elif self._accept(TokenType.KEYWORD, "CROSS"):
                kind = "CROSS"
            self._expect(TokenType.KEYWORD, "JOIN")
            right = self._parse_single_from_item()
            condition = None
            if kind != "CROSS":
                self._expect(TokenType.KEYWORD, "ON")
                condition = self._parse_expression()
            item = ast.Join(item, right, condition, kind)
        return item

    def _parse_single_from_item(self) -> ast.FromItem:
        if self._check(TokenType.PUNCTUATION, "("):
            self._advance()
            query = self._parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            self._accept(TokenType.KEYWORD, "AS")
            if self._peek().type is not TokenType.IDENTIFIER:
                raise self._error("a derived table requires an alias")
            alias = self._advance().value
            return ast.SubquerySource(query, alias)
        name = self._expect_name()
        element: Optional[str] = None
        if self._check(TokenType.PUNCTUATION, "."):
            next_token = self._peek(1)
            if (
                next_token.type is TokenType.KEYWORD
                and next_token.value.upper() in _GRAPH_ELEMENTS
            ):
                self._advance()  # '.'
                element = self._advance().value  # PATHS / VERTEXES / EDGES
        alias = None
        if self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        hint = None
        if self._accept(TokenType.KEYWORD, "HINT"):
            hint = self._parse_hint()
        if element is not None:
            return ast.GraphRef(name, element, alias, hint)
        if hint is not None:
            raise self._error("HINT is only valid on GV.PATHS items")
        return ast.TableRef(name, alias)

    def _parse_hint(self) -> ast.TraversalHint:
        self._expect(TokenType.PUNCTUATION, "(")
        if self._accept(TokenType.KEYWORD, "SHORTESTPATH"):
            self._expect(TokenType.PUNCTUATION, "(")
            weight_attribute = self._expect_name()
            self._expect(TokenType.PUNCTUATION, ")")
            hint = ast.TraversalHint("SHORTESTPATH", weight_attribute)
        elif self._accept(TokenType.KEYWORD, "DFS"):
            hint = ast.TraversalHint("DFS")
        elif self._accept(TokenType.KEYWORD, "BFS"):
            hint = ast.TraversalHint("BFS")
        else:
            raise self._error("expected SHORTESTPATH, DFS or BFS")
        self._expect(TokenType.PUNCTUATION, ")")
        return hint

    # ----------------------- expressions ------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = False
        if self._check_keyword("NOT"):
            following = self._peek(1)
            if following.type is TokenType.KEYWORD and following.value in (
                "IN",
                "LIKE",
                "BETWEEN",
            ):
                self._advance()
                negated = True
        if self._accept(TokenType.KEYWORD, "IN"):
            return self._parse_in(left, negated)
        if self._accept(TokenType.KEYWORD, "LIKE"):
            pattern = self._parse_additive()
            return ast.Like(left, pattern, negated)
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept(TokenType.KEYWORD, "IS"):
            is_negated = bool(self._accept(TokenType.KEYWORD, "NOT"))
            self._expect(TokenType.KEYWORD, "NULL")
            return ast.IsNull(left, is_negated)
        return left

    def _parse_in(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self._expect(TokenType.PUNCTUATION, "(")
        if self._check_keyword("SELECT"):
            subquery = self._parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.InSubquery(operand, subquery, negated)
        items = [self._parse_expression()]
        while self._accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_expression())
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.InList(operand, items, negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            if self._check(TokenType.OPERATOR, "+"):
                self._advance()
                left = ast.BinaryOp("+", left, self._parse_multiplicative())
            elif self._check(TokenType.OPERATOR, "-"):
                self._advance()
                left = ast.BinaryOp("-", left, self._parse_multiplicative())
            elif self._check(TokenType.OPERATOR, "||"):
                self._advance()
                left = ast.BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            if self._check(TokenType.OPERATOR, "*"):
                self._advance()
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif self._check(TokenType.OPERATOR, "/"):
                self._advance()
                left = ast.BinaryOp("/", left, self._parse_unary())
            elif self._check(TokenType.OPERATOR, "%"):
                self._advance()
                left = ast.BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept(TokenType.OPERATOR, "-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept(TokenType.OPERATOR, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches(TokenType.PUNCTUATION, "?"):
            self._advance()
            parameter = ast.Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter
        if token.matches(TokenType.KEYWORD, "EXISTS"):
            self._advance()
            self._expect(TokenType.PUNCTUATION, "(")
            subquery = self._parse_select()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.ExistsSubquery(subquery)
        if token.matches(TokenType.KEYWORD, "CAST"):
            self._advance()
            self._expect(TokenType.PUNCTUATION, "(")
            operand = self._parse_expression()
            self._expect(TokenType.KEYWORD, "AS")
            type_name = self._expect_name()
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.Cast(operand, type_name)
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._parse_case()
        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect(TokenType.PUNCTUATION, ")")
                return ast.ScalarSubquery(subquery)
            expression = self._parse_expression()
            self._expect(TokenType.PUNCTUATION, ")")
            return expression
        if token.type is TokenType.KEYWORD and token.value.upper() in _AGGREGATE_KEYWORDS:
            return self._parse_function_call(self._advance().value)
        if token.type is TokenType.IDENTIFIER:
            if self._peek(1).matches(TokenType.PUNCTUATION, "("):
                return self._parse_function_call(self._advance().value)
            return self._parse_field_access()
        raise self._error("expected an expression")

    def _parse_case(self) -> ast.Expression:
        self._expect(TokenType.KEYWORD, "CASE")
        branches: List[Tuple[ast.Expression, ast.Expression]] = []
        while self._accept(TokenType.KEYWORD, "WHEN"):
            condition = self._parse_expression()
            self._expect(TokenType.KEYWORD, "THEN")
            result = self._parse_expression()
            branches.append((condition, result))
        otherwise = None
        if self._accept(TokenType.KEYWORD, "ELSE"):
            otherwise = self._parse_expression()
        self._expect(TokenType.KEYWORD, "END")
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        return ast.CaseWhen(branches, otherwise)

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._expect(TokenType.PUNCTUATION, "(")
        distinct = bool(self._accept(TokenType.KEYWORD, "DISTINCT"))
        args: List[ast.Expression] = []
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            args.append(ast.Star())
        elif not self._check(TokenType.PUNCTUATION, ")"):
            args.append(self._parse_expression())
            while self._accept(TokenType.PUNCTUATION, ","):
                args.append(self._parse_expression())
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.FunctionCall(name, args, distinct)

    def _parse_field_access(self) -> ast.Expression:
        base = self._expect(TokenType.IDENTIFIER).value
        accessors: List[ast.Node] = []
        while True:
            if self._check(TokenType.PUNCTUATION, "."):
                following = self._peek(1)
                if following.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    break
                self._advance()
                accessors.append(ast.NameAccessor(self._advance().value))
            elif self._check(TokenType.PUNCTUATION, "["):
                self._advance()
                start = int(self._expect(TokenType.INTEGER).value)
                if self._accept(TokenType.PUNCTUATION, "."):
                    self._expect(TokenType.PUNCTUATION, ".")
                    if self._check(TokenType.OPERATOR, "*"):
                        self._advance()
                        end: Optional[int] = None
                    else:
                        end = int(self._expect(TokenType.INTEGER).value)
                    accessors.append(ast.RangeAccessor(start, end))
                else:
                    accessors.append(ast.IndexAccessor(start))
                self._expect(TokenType.PUNCTUATION, "]")
            else:
                break
        if not accessors:
            return ast.Identifier(base)
        return ast.FieldAccess(base, accessors)


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement (a trailing ``;`` is allowed)."""
    return Parser(text).parse()


def parse_script(text: str) -> List[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    return Parser(text).parse_many()
