"""Hand-written SQL lexer.

Produces a flat token stream. Keywords are recognized case-insensitively;
identifiers preserve their written case (lookups elsewhere are
case-insensitive). Supports ``--`` line comments and ``/* */`` block
comments, single-quoted strings with ``''`` escaping, and double-quoted
identifiers.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Iterator, List, Optional

from ..errors import SqlSyntaxError


class TokenType(Enum):
    IDENTIFIER = auto()
    KEYWORD = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    EOF = auto()


# Keywords of the dialect, including the paper's graph extensions.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET TOP
    DISTINCT AS AND OR NOT IN IS NULL LIKE BETWEEN EXISTS
    INSERT INTO VALUES UPDATE SET DELETE TRUNCATE
    CREATE TABLE INDEX UNIQUE VIEW MATERIALIZED DROP ALTER ADD
    PRIMARY KEY FOREIGN REFERENCES DEFAULT CHECK PARTITION
    GRAPH VERTEXES EDGES PATHS UNDIRECTED DIRECTED HINT SHORTESTPATH
    DFS BFS
    JOIN INNER LEFT RIGHT OUTER ON CROSS
    TRUE FALSE
    COUNT SUM AVG MIN MAX
    UNION ALL CASE WHEN THEN ELSE END CAST
    EXPLAIN ANALYZE
    """.split()
)

_OPERATORS = (
    "<=",
    ">=",
    "<>",
    "!=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "||",
)

_PUNCTUATION = "(),.;[]?"


class Token:
    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_: TokenType, value: str, line: int, column: int):
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def matches(self, type_: TokenType, value: Optional[str] = None) -> bool:
        if self.type is not type_:
            return False
        if value is None:
            return True
        if type_ in (TokenType.KEYWORD, TokenType.OPERATOR, TokenType.PUNCTUATION):
            return self.value.upper() == value.upper()
        return self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r})"


class Lexer:
    """Tokenize a SQL string; iterate or call :meth:`tokens`."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        return list(self)

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self._next_token()
            yield token
            if token.type is TokenType.EOF:
                return

    # ------------------------------------------------------------------

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.text):
                if self.text[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.position >= len(self.text):
            return Token(TokenType.EOF, "", line, column)
        ch = self._peek()
        # Numbers must start with a digit: a leading '.' is always the
        # member-access / path-range punctuation (e.g. ``Edges[0..*]``).
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)
        if ch == "'":
            return self._lex_string(line, column)
        if ch == '"':
            return self._lex_quoted_identifier(line, column)
        for op in _OPERATORS:
            if self.text.startswith(op, self.position):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, column)
        if ch in _PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCTUATION, ch, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.position
        saw_dot = False
        saw_exp = False
        while self.position < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp:
                # ".." is the path range operator, not a decimal point
                if self._peek(1) == ".":
                    break
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp and self._peek(1).isdigit():
                saw_exp = True
                self._advance(2)
            elif (
                ch in "eE"
                and not saw_exp
                and self._peek(1) in "+-"
                and self._peek(2).isdigit()
            ):
                saw_exp = True
                self._advance(3)
            else:
                break
        text = self.text[start : self.position]
        if saw_dot or saw_exp:
            return Token(TokenType.FLOAT, text, line, column)
        return Token(TokenType.INTEGER, text, line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.position
        while self.position < len(self.text) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.text[start : self.position]
        if text.upper() in KEYWORDS:
            # Keywords keep their written case (matching is done
            # case-insensitively) so that keyword-named attributes like
            # ``PS.Edges`` round-trip verbatim through the AST.
            return Token(TokenType.KEYWORD, text, line, column)
        return Token(TokenType.IDENTIFIER, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                parts.append(ch)
                self._advance()
        return Token(TokenType.STRING, "".join(parts), line, column)

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()
        start = self.position
        while self.position < len(self.text) and self._peek() != '"':
            self._advance()
        if self.position >= len(self.text):
            raise self._error("unterminated quoted identifier")
        text = self.text[start : self.position]
        self._advance()
        return Token(TokenType.IDENTIFIER, text, line, column)
