"""Render AST nodes back to SQL text.

The inverse of the parser, used by:

* database snapshots — view definitions are persisted as SQL and
  replayed on restore;
* debugging / logging — any planned statement can be shown as SQL.

``parse_statement(render_statement(x))`` produces an AST structurally
equal to ``x`` for every statement the dialect accepts (property-tested
over a corpus in ``tests/test_render.py``).
"""

from __future__ import annotations

from typing import List

from ..errors import PlanningError
from . import ast

# operators whose operands need parentheses to survive re-parsing with
# the right precedence; we parenthesize conservatively instead
_BINARY_TEXT = {
    "AND": "AND",
    "OR": "OR",
    "=": "=",
    "<>": "<>",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "||": "||",
}


def render_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        text = repr(value)
        # ensure it re-parses as a FLOAT token
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    return str(value)


def render_expression(node: ast.Expression) -> str:
    """SQL text for one expression (conservatively parenthesized)."""
    if isinstance(node, ast.Literal):
        return render_literal(node.value)
    if isinstance(node, ast.Parameter):
        return "?"
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, ast.Star):
        return f"{node.qualifier}.*" if node.qualifier else "*"
    if isinstance(node, ast.FieldAccess):
        parts = [node.base]
        for accessor in node.accessors:
            if isinstance(accessor, ast.NameAccessor):
                parts.append(f".{accessor.name}")
            elif isinstance(accessor, ast.IndexAccessor):
                parts.append(f"[{accessor.index}]")
            elif isinstance(accessor, ast.RangeAccessor):
                end = "*" if accessor.end is None else str(accessor.end)
                parts.append(f"[{accessor.start}..{end}]")
        return "".join(parts)
    if isinstance(node, ast.UnaryOp):
        operand = render_expression(node.operand)
        if node.op == "NOT":
            # NOT binds looser than postfix predicates (IS NULL, IN,
            # BETWEEN), so the whole negation needs its own parentheses
            return f"(NOT ({operand}))"
        return f"{node.op}({operand})"
    if isinstance(node, ast.BinaryOp):
        op = _BINARY_TEXT.get(node.op)
        if op is None:
            raise PlanningError(f"cannot render operator {node.op}")
        left = render_expression(node.left)
        right = render_expression(node.right)
        return f"({left} {op} {right})"
    if isinstance(node, ast.InList):
        operand = render_expression(node.operand)
        items = ", ".join(render_expression(i) for i in node.items)
        negation = "NOT " if node.negated else ""
        return f"({operand} {negation}IN ({items}))"
    if isinstance(node, ast.InSubquery):
        operand = render_expression(node.operand)
        negation = "NOT " if node.negated else ""
        return f"({operand} {negation}IN ({render_select(node.subquery)}))"
    if isinstance(node, ast.ScalarSubquery):
        return f"({render_select(node.subquery)})"
    if isinstance(node, ast.ExistsSubquery):
        prefix = "NOT " if node.negated else ""
        return f"{prefix}EXISTS ({render_select(node.subquery)})"
    if isinstance(node, ast.Between):
        operand = render_expression(node.operand)
        negation = "NOT " if node.negated else ""
        low = render_expression(node.low)
        high = render_expression(node.high)
        return f"({operand} {negation}BETWEEN {low} AND {high})"
    if isinstance(node, ast.IsNull):
        operand = render_expression(node.operand)
        middle = "IS NOT NULL" if node.negated else "IS NULL"
        return f"({operand} {middle})"
    if isinstance(node, ast.Like):
        operand = render_expression(node.operand)
        negation = "NOT " if node.negated else ""
        pattern = render_expression(node.pattern)
        return f"({operand} {negation}LIKE {pattern})"
    if isinstance(node, ast.FunctionCall):
        distinct = "DISTINCT " if node.distinct else ""
        args = ", ".join(render_expression(a) for a in node.args)
        return f"{node.name}({distinct}{args})"
    if isinstance(node, ast.CaseWhen):
        parts = ["CASE"]
        for condition, result in node.branches:
            parts.append(
                f"WHEN {render_expression(condition)} "
                f"THEN {render_expression(result)}"
            )
        if node.otherwise is not None:
            parts.append(f"ELSE {render_expression(node.otherwise)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, ast.Cast):
        return f"CAST({render_expression(node.operand)} AS {node.type_name})"
    raise PlanningError(f"cannot render expression {type(node).__name__}")


def _render_from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        if item.alias and item.alias != item.name:
            return f"{item.name} {item.alias}"
        return item.name
    if isinstance(item, ast.GraphRef):
        base = f"{item.graph_name}.{item.element.capitalize()} {item.alias}"
        if item.hint is not None:
            if item.hint.kind == "SHORTESTPATH":
                base += f" HINT(SHORTESTPATH({item.hint.weight_attribute}))"
            else:
                base += f" HINT({item.hint.kind})"
        return base
    if isinstance(item, ast.SubquerySource):
        return f"({render_select(item.query)}) {item.alias}"
    if isinstance(item, ast.Join):
        left = _render_from_item(item.left)
        right = _render_from_item(item.right)
        if item.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if item.kind == "LEFT" else "JOIN"
        condition = render_expression(item.condition)
        return f"{left} {keyword} {right} ON {condition}"
    raise PlanningError(f"cannot render from-item {type(item).__name__}")


def render_select(select: ast.Select) -> str:
    parts: List[str] = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        text = render_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    parts.append("FROM")
    parts.append(", ".join(_render_from_item(i) for i in select.from_items))
    if select.where is not None:
        parts.append(f"WHERE {render_expression(select.where)}")
    if select.group_by:
        parts.append(
            "GROUP BY " + ", ".join(render_expression(g) for g in select.group_by)
        )
    if select.having is not None:
        parts.append(f"HAVING {render_expression(select.having)}")
    if select.order_by:
        orders = []
        for order in select.order_by:
            direction = "ASC" if order.ascending else "DESC"
            orders.append(f"{render_expression(order.expression)} {direction}")
        parts.append("ORDER BY " + ", ".join(orders))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    if select.offset is not None:
        parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)


def render_statement(statement: ast.Statement) -> str:
    """SQL text for any statement the dialect accepts."""
    if isinstance(statement, ast.Select):
        return render_select(statement)
    if isinstance(statement, ast.SetOperation):
        keyword = "UNION ALL" if statement.all_rows else "UNION"
        return (
            f"{render_statement(statement.left)} {keyword} "
            f"{render_statement(statement.right)}"
        )
    if isinstance(statement, ast.CreateTable):
        columns = []
        for column in statement.columns:
            text = f"{column.name} {column.type_name}"
            if column.primary_key:
                text += " PRIMARY KEY"
            elif column.not_null:
                text += " NOT NULL"
            columns.append(text)
        text = f"CREATE TABLE {statement.name} ({', '.join(columns)})"
        if statement.partition_by is not None:
            text += f" PARTITION BY {statement.partition_by}"
        return text
    if isinstance(statement, ast.CreateIndex):
        unique = "UNIQUE " if statement.unique else ""
        return (
            f"CREATE {unique}INDEX {statement.name} ON {statement.table} "
            f"({', '.join(statement.columns)})"
        )
    if isinstance(statement, ast.CreateView):
        return f"CREATE VIEW {statement.name} AS {render_select(statement.query)}"
    if isinstance(statement, ast.CreateGraphView):
        direction = "DIRECTED" if statement.directed else "UNDIRECTED"
        vertexes = ", ".join(f"{a} = {c}" for a, c in statement.vertex_mappings)
        edges = ", ".join(f"{a} = {c}" for a, c in statement.edge_mappings)
        return (
            f"CREATE {direction} GRAPH VIEW {statement.name} "
            f"VERTEXES({vertexes}) FROM {statement.vertex_source} "
            f"EDGES({edges}) FROM {statement.edge_source}"
        )
    if isinstance(statement, ast.AlterGraphViewAddSource):
        mappings = ", ".join(f"{a} = {c}" for a, c in statement.mappings)
        return (
            f"ALTER GRAPH VIEW {statement.name} ADD {statement.element}"
            f"({mappings}) FROM {statement.source}"
        )
    if isinstance(statement, ast.Drop):
        return f"DROP {statement.kind} {statement.name}"
    if isinstance(statement, ast.Insert):
        columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
        if statement.query is not None:
            return (
                f"INSERT INTO {statement.table}{columns} "
                f"{render_select(statement.query)}"
            )
        rows = ", ".join(
            "(" + ", ".join(render_expression(v) for v in row) + ")"
            for row in statement.rows
        )
        return f"INSERT INTO {statement.table}{columns} VALUES {rows}"
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{column} = {render_expression(value)}"
            for column, value in statement.assignments
        )
        sql = f"UPDATE {statement.table} SET {assignments}"
        if statement.where is not None:
            sql += f" WHERE {render_expression(statement.where)}"
        return sql
    if isinstance(statement, ast.Delete):
        sql = f"DELETE FROM {statement.table}"
        if statement.where is not None:
            sql += f" WHERE {render_expression(statement.where)}"
        return sql
    if isinstance(statement, ast.Truncate):
        return f"TRUNCATE TABLE {statement.table}"
    raise PlanningError(f"cannot render statement {type(statement).__name__}")
