"""Abstract syntax tree for the SQL dialect.

Nodes are small immutable-by-convention classes with structural equality,
which keeps parser tests straightforward. Expression resolution against
from-clause aliases happens later, in the planner — the parser produces
*generic* dotted/indexed access chains (:class:`FieldAccess`) that the
planner interprets as column references or the paper's path expressions.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple


class Node:
    """Base AST node with structural equality over ``__dict__``."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:  # pragma: no cover - nodes rarely hashed
        return hash(repr(self))

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.__dict__.items())
        return f"{type(self).__name__}({fields})"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Marker base for expression nodes."""


class Literal(Expression):
    def __init__(self, value: Any):
        self.value = value


class Parameter(Expression):
    """A ``?`` placeholder in a prepared statement.

    The compiled plan reads ``value`` *live*, so a
    :class:`~repro.core.database.PreparedQuery` binds parameters by
    assigning to the node and re-running the plan — the VoltDB
    stored-procedure execution model (plan once, execute many).
    """

    def __init__(self, index: int):
        self.index = index
        self.value: Any = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and self.index == other.index

    def __hash__(self) -> int:  # pragma: no cover
        return hash(("Parameter", self.index))


class Identifier(Expression):
    """A bare name: column in scope, or alias."""

    def __init__(self, name: str):
        self.name = name


class NameAccessor(Node):
    """``.name`` step in a dotted chain."""

    def __init__(self, name: str):
        self.name = name


class IndexAccessor(Node):
    """``[i]`` step — a single element of a path collection."""

    def __init__(self, index: int):
        self.index = index


class RangeAccessor(Node):
    """``[i..j]`` or ``[i..*]`` step; ``end is None`` means ``*``."""

    def __init__(self, start: int, end: Optional[int]):
        self.start = start
        self.end = end


class FieldAccess(Expression):
    """A dotted / indexed chain rooted at a name.

    Examples::

        U.uId                 -> FieldAccess('U', [NameAccessor('uId')])
        PS.Length             -> FieldAccess('PS', [NameAccessor('Length')])
        PS.Edges[0..*].Cost   -> FieldAccess('PS', [NameAccessor('Edges'),
                                  RangeAccessor(0, None), NameAccessor('Cost')])
        PS.StartVertex.Id     -> FieldAccess('PS', [NameAccessor('StartVertex'),
                                  NameAccessor('Id')])
    """

    def __init__(self, base: str, accessors: Sequence[Node]):
        self.base = base
        self.accessors = list(accessors)


class Star(Expression):
    """``*`` or ``alias.*`` in a select list / COUNT(*)."""

    def __init__(self, qualifier: Optional[str] = None):
        self.qualifier = qualifier


class UnaryOp(Expression):
    def __init__(self, op: str, operand: Expression):
        self.op = op  # '-', '+', 'NOT'
        self.operand = operand


class BinaryOp(Expression):
    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op
        self.left = left
        self.right = right


class InList(Expression):
    def __init__(self, operand: Expression, items: Sequence[Expression], negated: bool):
        self.operand = operand
        self.items = list(items)
        self.negated = negated


class InSubquery(Expression):
    def __init__(self, operand: Expression, subquery: "Select", negated: bool):
        self.operand = operand
        self.subquery = subquery
        self.negated = negated

class ScalarSubquery(Expression):
    def __init__(self, subquery: "Select"):
        self.subquery = subquery


class ExistsSubquery(Expression):
    def __init__(self, subquery: "Select", negated: bool = False):
        self.subquery = subquery
        self.negated = negated


class CorrelatedSubquery(Expression):
    """Planner-produced IR node for a correlated subquery.

    The planner rewrites outer-alias references inside the subquery to
    live-value nodes, plans the subquery *once*, and wraps everything
    here; the expression compiler evaluates it per outer row by binding
    the live nodes and re-running the inner plan.

    ``kind`` is ``'scalar'`` / ``'in'`` / ``'exists'``; ``operand`` is
    the left-hand expression for the IN form (else None).
    """

    def __init__(self, kind, plan, bindings, operand=None, negated=False):
        self.kind = kind
        self.plan = plan  # PlannedQuery of the rewritten subquery
        self.bindings = bindings  # list of (outer_expr_ast, live_node)
        self.operand = operand
        self.negated = negated

    def __eq__(self, other: object) -> bool:  # identity: plans differ
        return self is other

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)


class Between(Expression):
    def __init__(
        self,
        operand: Expression,
        low: Expression,
        high: Expression,
        negated: bool,
    ):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class IsNull(Expression):
    def __init__(self, operand: Expression, negated: bool):
        self.operand = operand
        self.negated = negated


class Like(Expression):
    def __init__(self, operand: Expression, pattern: Expression, negated: bool):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated


class FunctionCall(Expression):
    """Scalar or aggregate function call; aggregates resolved in planner."""

    def __init__(
        self,
        name: str,
        args: Sequence[Expression],
        distinct: bool = False,
    ):
        self.name = name.upper()
        self.args = list(args)
        self.distinct = distinct


class CaseWhen(Expression):
    def __init__(
        self,
        branches: Sequence[Tuple[Expression, Expression]],
        otherwise: Optional[Expression],
    ):
        self.branches = list(branches)
        self.otherwise = otherwise


class Cast(Expression):
    def __init__(self, operand: Expression, type_name: str):
        self.operand = operand
        self.type_name = type_name


# ---------------------------------------------------------------------------
# FROM-clause items
# ---------------------------------------------------------------------------


class FromItem(Node):
    """Base for from-clause items; every item carries an alias."""


class TableRef(FromItem):
    def __init__(self, name: str, alias: Optional[str] = None):
        self.name = name
        self.alias = alias or name


class SubquerySource(FromItem):
    """``FROM (SELECT ...) alias`` — a derived table. The subquery is
    planned independently (no correlation with sibling from-items) and
    its rows stream into the outer plan."""

    def __init__(self, query: "Select", alias: str):
        self.query = query
        self.alias = alias


class TraversalHint(Node):
    """``HINT(SHORTESTPATH(attr))`` / ``HINT(DFS)`` / ``HINT(BFS)``."""

    def __init__(self, kind: str, weight_attribute: Optional[str] = None):
        self.kind = kind.upper()  # 'SHORTESTPATH' | 'DFS' | 'BFS'
        self.weight_attribute = weight_attribute


class GraphRef(FromItem):
    """``GV.PATHS PS``, ``GV.VERTEXES VS`` or ``GV.EDGES ES``."""

    PATHS = "PATHS"
    VERTEXES = "VERTEXES"
    EDGES = "EDGES"

    def __init__(
        self,
        graph_name: str,
        element: str,
        alias: Optional[str] = None,
        hint: Optional[TraversalHint] = None,
    ):
        self.graph_name = graph_name
        self.element = element.upper()
        self.alias = alias or f"{graph_name}_{element}"
        self.hint = hint


class Join(FromItem):
    """Explicit ``JOIN ... ON`` between two from-items."""

    def __init__(
        self,
        left: FromItem,
        right: FromItem,
        condition: Optional[Expression],
        kind: str = "INNER",
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind.upper()
        self.alias = None  # joins are transparent for name resolution


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base for all statements."""


class SelectItem(Node):
    def __init__(self, expression: Expression, alias: Optional[str] = None):
        self.expression = expression
        self.alias = alias


class OrderItem(Node):
    def __init__(self, expression: Expression, ascending: bool = True):
        self.expression = expression
        self.ascending = ascending


class Select(Statement):
    def __init__(
        self,
        items: Sequence[SelectItem],
        from_items: Sequence[FromItem],
        where: Optional[Expression] = None,
        group_by: Optional[Sequence[Expression]] = None,
        having: Optional[Expression] = None,
        order_by: Optional[Sequence[OrderItem]] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        distinct: bool = False,
    ):
        self.items = list(items)
        self.from_items = list(from_items)
        self.where = where
        self.group_by = list(group_by) if group_by else []
        self.having = having
        self.order_by = list(order_by) if order_by else []
        self.limit = limit
        self.offset = offset
        self.distinct = distinct


class SetOperation(Statement):
    """``left UNION [ALL] right`` — evaluated as concatenation with
    optional duplicate elimination. Chains left-associatively."""

    def __init__(self, left, right, all_rows: bool = False):
        self.left = left
        self.right = right
        self.all_rows = all_rows


class Explain(Statement):
    """``EXPLAIN [ANALYZE] statement``.

    Plain ``EXPLAIN`` renders the physical plan; ``EXPLAIN ANALYZE``
    additionally executes the statement under a
    :class:`~repro.observability.tracer.QueryTracer` and annotates every
    plan node with its actual row counts, timing and traversal stats.
    Any statement parses here; planning rejects non-SELECTs with an
    error naming the offending statement kind.
    """

    def __init__(self, statement: "Statement", analyze: bool = False):
        self.statement = statement
        self.analyze = analyze


class ColumnDef(Node):
    def __init__(
        self,
        name: str,
        type_name: str,
        primary_key: bool = False,
        not_null: bool = False,
    ):
        self.name = name
        self.type_name = type_name
        self.primary_key = primary_key
        self.not_null = not_null


class CreateTable(Statement):
    """``CREATE TABLE name (cols...) [PARTITION BY column]``.

    ``partition_by`` names the hash-partition column for a sharded
    deployment (:mod:`repro.sharding`); ``None`` declares a broadcast
    (replicated-everywhere) table. A single-node engine records the
    column and otherwise ignores it.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[ColumnDef],
        partition_by: Optional[str] = None,
    ):
        self.name = name
        self.columns = list(columns)
        self.partition_by = partition_by


class CreateIndex(Statement):
    def __init__(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        unique: bool = False,
    ):
        self.name = name
        self.table = table
        self.columns = list(columns)
        self.unique = unique


class CreateView(Statement):
    """``CREATE [MATERIALIZED] VIEW name AS SELECT ...`` (materialized)."""

    def __init__(self, name: str, query: Select):
        self.name = name
        self.query = query


class CreateGraphView(Statement):
    """The paper's Listing-1 DDL.

    ``vertex_mappings`` / ``edge_mappings`` map *graph attribute name* to
    the source column expression name, in declaration order. The reserved
    attributes are ``ID`` for vertexes and ``ID``/``FROM``/``TO`` for edges.
    """

    def __init__(
        self,
        name: str,
        directed: bool,
        vertex_mappings: Sequence[Tuple[str, str]],
        vertex_source: str,
        edge_mappings: Sequence[Tuple[str, str]],
        edge_source: str,
    ):
        self.name = name
        self.directed = directed
        self.vertex_mappings = list(vertex_mappings)
        self.vertex_source = vertex_source
        self.edge_mappings = list(edge_mappings)
        self.edge_source = edge_source


class AlterGraphViewAddSource(Statement):
    """``ALTER GRAPH VIEW name ADD VERTEXES(ID = col, attr = col, ...)
    FROM source`` (or ``ADD EDGES``).

    Attaches an additional *attribute source* to an existing graph view:
    the paper's vertical-partitioning extension (Section 3.2), where a
    vertex/edge may hold multiple tuple pointers so semistructured (RDF)
    attributes live in separate relations.
    """

    def __init__(
        self,
        name: str,
        element: str,  # 'VERTEXES' | 'EDGES'
        mappings: Sequence[Tuple[str, str]],
        source: str,
    ):
        self.name = name
        self.element = element.upper()
        self.mappings = list(mappings)
        self.source = source


class Drop(Statement):
    def __init__(self, kind: str, name: str, if_exists: bool = False):
        self.kind = kind.upper()  # TABLE | VIEW | INDEX | GRAPH VIEW
        self.name = name
        self.if_exists = if_exists


class Insert(Statement):
    """``INSERT INTO t [cols] VALUES ...`` or ``INSERT INTO t [cols]
    SELECT ...`` (``query`` set, ``rows`` empty)."""

    def __init__(
        self,
        table: str,
        columns: Optional[Sequence[str]],
        rows: Sequence[Sequence[Expression]],
        query: Optional["Select"] = None,
    ):
        self.table = table
        self.columns = list(columns) if columns else None
        self.rows = [list(r) for r in rows]
        self.query = query


class Update(Statement):
    def __init__(
        self,
        table: str,
        assignments: Sequence[Tuple[str, Expression]],
        where: Optional[Expression] = None,
    ):
        self.table = table
        self.assignments = list(assignments)
        self.where = where


class Delete(Statement):
    def __init__(self, table: str, where: Optional[Expression] = None):
        self.table = table
        self.where = where


class Truncate(Statement):
    def __init__(self, table: str):
        self.table = table


def walk_expression(expression: Optional[Expression]):
    """Depth-first pre-order generator over an expression tree."""
    if expression is None:
        return
    stack: List[Expression] = [expression]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, InSubquery):
            stack.append(node.operand)
        elif isinstance(node, CorrelatedSubquery):
            if node.operand is not None:
                stack.append(node.operand)
            stack.extend(outer for outer, _live in node.bindings)
        elif isinstance(node, Between):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, IsNull):
            stack.append(node.operand)
        elif isinstance(node, Like):
            stack.extend((node.operand, node.pattern))
        elif isinstance(node, FunctionCall):
            stack.extend(node.args)
        elif isinstance(node, Cast):
            stack.append(node.operand)
        elif isinstance(node, CaseWhen):
            for condition, result in node.branches:
                stack.extend((condition, result))
            if node.otherwise is not None:
                stack.append(node.otherwise)
