"""SQL front end (system S2): lexer, AST, and recursive-descent parser.

The dialect is the VoltDB-flavoured subset the paper relies on, plus the
paper's extensions: ``CREATE GRAPH VIEW`` (Listing 1), the ``PATHS`` /
``VERTEXES`` / ``EDGES`` constructs in ``FROM`` (Section 4), path element
indexing (``PS.Edges[0..*].attr``), and traversal hints
(``HINT(SHORTESTPATH(w))``, Listing 6).
"""

from .lexer import Lexer, Token, TokenType
from .parser import Parser, parse_statement, parse_script
from . import ast

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "Parser",
    "parse_statement",
    "parse_script",
    "ast",
]
