"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The registry is the always-on half of the observability layer (the
per-query half is :mod:`repro.observability.tracer`). It is deliberately
minimal, but it **is** thread-safe: the network server executes
read-only statements concurrently on session threads, so every update
(a read-modify-write on a counter, gauge or histogram bucket) holds the
metric's lock — without it, two sessions incrementing the same counter
lose increments. Updates only happen at the engine's instrumentation
seams (statement boundaries, command-log fsyncs, snapshot I/O,
replication shipping, server session lifecycle), so one uncontended
lock per event is noise next to the statement it measures. Per-row
costs stay out of this module by design; row-level accounting lives in
the tracer, which is off unless a query runs under ``EXPLAIN ANALYZE``.

Two read-side views are provided:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines), which the
  shell's ``\\metrics`` meta-command prints;
* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict for
  programmatic consumers (benchmark artifacts, tests).

``REPRO_METRICS=0`` (or ``off`` / ``false``) disables recording
globally: :func:`recording_registry` then returns ``None`` and every
instrumentation seam skips its updates with a single ``is None`` check.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, in milliseconds — tuned for
#: statement latencies (sub-millisecond point lookups up to multi-second
#: path enumerations).
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus-friendly)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing count (e.g. statements executed).

    ``inc`` is a locked read-modify-write: concurrent sessions
    incrementing the same counter must never lose an update.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (e.g. replication lag)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative buckets, Prometheus-style).

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit ``+Inf`` bucket catches everything else. ``observe`` holds
    the histogram's lock for two attribute updates plus one linear
    bucket probe — bucket counts are stored non-cumulatively and only
    accumulated at render time, keeping the write path cheap while
    concurrent observers never lose a bucket increment.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "_lock")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS_MS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last.

        Taken under the lock so a render that races an ``observe`` sees
        a consistent (count, buckets) pair.
        """
        with self._lock:
            counts = list(self.bucket_counts)
            total = self.count
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), total))
        return out


class _Family:
    """One metric name: kind, help text and per-label-set children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelKey, Any] = {}


class MetricsRegistry:
    """A namespace of named metrics with optional labels.

    Handles are created on first use and cached by ``(name, labels)``::

        registry.counter("repro_statements_total", kind="Select").inc()
        registry.gauge("repro_replication_lag", replica="r1").set(3)
        registry.histogram("repro_statement_duration_ms").observe(1.8)

    Re-registering a name with a different metric kind is an error —
    that is always an instrumentation bug, not a runtime condition.

    Handle acquisition and the read-side views hold the registry lock;
    updates through an acquired handle take only that metric's own
    lock, so hot seams can cache handles and never contend here.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # handle acquisition
    # ------------------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name: {name!r}")
            family = _Family(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a "
                f"{family.kind}, not a {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def _child(
        self, name: str, kind: str, help_text: str, labels: Dict[str, str], make
    ):
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            family = self._family(name, kind, help_text)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = make()
                family.children[key] = child
            return child

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        **labels: Any,
    ) -> Histogram:
        return self._child(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The current value of a counter/gauge (None if never touched)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            child = family.children.get(_label_key(labels))
        if child is None or isinstance(child, Histogram):
            return None
        return child.value

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable dump of every metric in the registry."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = dict(self._families)
        for name in sorted(families):
            family = families[name]
            samples = []
            children = dict(family.children)
            for key in sorted(children):
                child = children[key]
                labels = dict(key)
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                {
                                    "le": ("+Inf" if b == float("inf") else b),
                                    "count": c,
                                }
                                for b, c in child.cumulative_buckets()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render_prometheus(self, filter: Optional[str] = None) -> str:
        """The Prometheus text exposition format.

        ``filter`` keeps only families whose name contains the given
        substring (the shell's ``\\metrics FILTER`` argument).
        """
        lines: List[str] = []
        with self._lock:
            families = dict(self._families)
        for name in sorted(families):
            if filter and filter not in name:
                continue
            family = families[name]
            children = dict(family.children)
            if not children:
                continue
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(children):
                child = children[key]
                if isinstance(child, Histogram):
                    for bound, count in child.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        label_text = _render_labels(key + (("le", le),))
                        lines.append(f"{name}_bucket{label_text} {count}")
                    label_text = _render_labels(key)
                    lines.append(
                        f"{name}_sum{label_text} {_format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{label_text} {child.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._families.clear()


def _render_labels(key: Iterable[Tuple[str, str]]) -> str:
    pairs = list(key)
    if not pairs:
        return ""
    inner = ",".join(f'{label}="{value}"' for label, value in pairs)
    return "{" + inner + "}"


# ---------------------------------------------------------------------------
# the process-wide default registry
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()

_ENABLED = os.environ.get("REPRO_METRICS", "1").strip().lower() not in (
    "0",
    "off",
    "false",
    "no",
)


def get_registry() -> MetricsRegistry:
    """The process-wide registry (always available, even when disabled)."""
    return _REGISTRY


def recording_registry() -> Optional[MetricsRegistry]:
    """The default registry, or ``None`` when recording is disabled.

    Instrumentation seams call this once per event and skip their
    updates on ``None`` — the entire disabled cost is that one check.
    """
    return _REGISTRY if _ENABLED else None


def set_enabled(enabled: bool) -> None:
    """Toggle recording at runtime (used by the overhead benchmark)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def metrics_enabled() -> bool:
    return _ENABLED
