"""Cluster-wide distributed tracing: one trace per statement lifecycle.

Where :mod:`~repro.observability.tracer` meters a single statement's
operator tree *inside* one process (EXPLAIN ANALYZE), this module
follows a statement *across* processes: client → server session →
single-writer queue → execution → command-log fsync → replication ship
→ replica apply. The design is a deliberately small subset of W3C Trace
Context:

* :class:`TraceContext` — an immutable ``(trace_id, span_id, parent_id,
  sampled)`` tuple serialized to/from the ``traceparent`` header format
  (``00-<32 hex>-<16 hex>-<01|00>``). The client mints one root context
  per statement and stamps it on every ``QUERY``/``PREPARE``/``EXECUTE``
  frame; because the stamp happens *before* the retry loop, a write
  bounced off a deposed primary with ``NOT_PRIMARY`` retries under the
  **same** trace_id and the trace shows both nodes.
* an ambient per-thread context stack mirroring the budget/tracer
  plumbing (``current_trace()`` is one thread-local read; ``activate``
  is a context manager with identity-based removal), so deep seams like
  the command log's fsync need no plumbed-through argument.
* :class:`SpanCollector` — a bounded, lock-safe ring of finished
  :class:`Span` objects with head-based sampling and JSON export,
  served by the ``TRACES`` wire message and the per-node HTTP
  endpoint's ``/traces``.

The hot-path contract matches the metrics registry: with tracing
disabled (``REPRO_TRACING=0`` or :func:`set_tracing_enabled(False)`),
:func:`recording_collector` returns ``None`` and every seam skips with
a single ``is None`` check — no context minted, no frame stamped, no
span allocated. ``benchmarks/check_observability_overhead.py`` pins the
enabled-vs-disabled server-path overhead below 10%.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

#: ``traceparent`` version prefix we emit (and the only one we parse).
_WIRE_VERSION = "00"

class _IdSource(threading.local):
    """Per-thread PRNG for span/trace ids.

    Ids are correlation handles, not secrets: a urandom-*seeded* PRNG
    per thread (no lock, no per-id syscall) keeps minting an id to a
    fraction of a microsecond on the per-statement hot path.
    """

    def __init__(self):
        self.rng = random.Random(
            int.from_bytes(os.urandom(8), "big")
            ^ threading.get_ident()
        )


_IDS = _IdSource()


def new_trace_id() -> str:
    """A 128-bit random trace id (32 lowercase hex chars)."""
    return "%032x" % _IDS.rng.getrandbits(128)


def new_span_id() -> str:
    """A 64-bit random span id (16 lowercase hex chars)."""
    return "%016x" % _IDS.rng.getrandbits(64)


class TraceContext:
    """The propagated identity of one trace position (immutable).

    ``span_id`` names the span that owns this context; children record
    it as their ``parent_id``. ``sampled`` is decided once, at the root
    (by the client's collector), and rides along so downstream nodes
    skip span recording for unsampled traces without re-rolling.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "sampled")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        sampled: bool = True,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled

    @classmethod
    def new(cls, sampled: bool = True) -> "TraceContext":
        """Mint a root context (no parent)."""
        return cls(new_trace_id(), new_span_id(), None, sampled)

    def child(self) -> "TraceContext":
        """A child context: same trace, fresh span, parent = this span."""
        return TraceContext(
            self.trace_id, new_span_id(), self.span_id, self.sampled
        )

    # ------------------------------------------------------------------
    # wire format (traceparent-style)
    # ------------------------------------------------------------------

    def to_wire(self) -> str:
        flags = "01" if self.sampled else "00"
        return f"{_WIRE_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_wire(cls, text: Any) -> Optional["TraceContext"]:
        """Parse a stamped frame value; ``None`` on anything malformed.

        Tolerant by design: an unparseable stamp degrades to an
        untraced statement, never an error back to the client.
        """
        if not isinstance(text, str):
            return None
        parts = text.split("-")
        if len(parts) != 4 or parts[0] != _WIRE_VERSION:
            return None
        trace_id, span_id, flags = parts[1], parts[2], parts[3]
        if len(trace_id) != 32 or len(span_id) != 16:
            return None
        try:
            int(trace_id, 16)
            int(span_id, 16)
        except ValueError:
            return None
        return cls(trace_id, span_id, None, flags == "01")

    def __repr__(self) -> str:
        return (
            f"TraceContext({self.trace_id[:8]}.., span={self.span_id}, "
            f"parent={self.parent_id}, sampled={self.sampled})"
        )


class Span:
    """One finished, named stage of a trace (JSON-exportable)."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "node",
        "started_at",
        "duration_ms",
        "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        node: str = "",
        started_at: float = 0.0,
        duration_ms: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        #: Which node recorded this span ("" for plain client/server).
        self.node = node
        #: Wall-clock start (``time.time()``), for cross-node ordering.
        self.started_at = started_at
        self.duration_ms = duration_ms
        self.attrs = attrs or {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_ms, 3),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name}, node={self.node!r}, "
            f"{self.duration_ms:.2f} ms, trace={self.trace_id[:8]}..)"
        )


class SpanCollector:
    """A bounded ring of finished spans with head-based sampling.

    Recording appends under one lock (the ring is shared by session
    threads, the writer thread and replication pumps); the ring evicts
    oldest-first so a long-lived node never grows without bound.
    ``sample()`` is rolled once per root trace by the client — every
    downstream span inherits the decision through the context's
    ``sampled`` flag.
    """

    def __init__(self, capacity: int = 4096, sample_rate: float = 1.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._random = random.Random()
        self.recorded = 0
        self.dropped_unsampled = 0

    def sample(self) -> bool:
        """Roll the head-based sampling decision for a new root trace."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            self.dropped_unsampled += 1
            return False
        if self._random.random() < self.sample_rate:
            return True
        self.dropped_unsampled += 1
        return False

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    def spans(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Span]:
        with self._lock:
            out = list(self._spans)
        if trace_id:
            out = [s for s in out if s.trace_id == trace_id]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def export(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """JSON-ready span dicts (oldest first)."""
        return [s.as_dict() for s in self.spans(trace_id, limit)]

    def export_json(self, trace_id: Optional[str] = None) -> str:
        return json.dumps(self.export(trace_id), indent=2, sort_keys=True)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ---------------------------------------------------------------------------
# ambient context (thread-local — same shape as tracer/budget stacks)
# ---------------------------------------------------------------------------


class _AmbientTrace(threading.local):
    """Per-thread stack of active trace contexts + the node label."""

    def __init__(self):
        self.items: List[TraceContext] = []
        self.node_label: str = ""


_AMBIENT = _AmbientTrace()


def _stack() -> List[TraceContext]:
    """This thread's context stack (tests introspect it)."""
    return _AMBIENT.items


def current_trace() -> Optional[TraceContext]:
    """The context governing this thread's innermost statement (or None)."""
    items = _AMBIENT.items
    return items[-1] if items else None


def deactivate(context: Optional[TraceContext]) -> None:
    """Remove every occurrence of ``context`` from this thread's stack."""
    if context is None:
        return
    items = _AMBIENT.items
    for index in range(len(items) - 1, -1, -1):
        if items[index] is context:
            del items[index]


class activate:
    """Context manager installing a trace context as the ambient one.

    Accepts ``None`` (no-op) so call sites need no conditional around
    the ``with`` — an untraced statement just runs with nothing pushed.
    """

    __slots__ = ("context",)

    def __init__(self, context: Optional[TraceContext]):
        self.context = context

    def __enter__(self) -> Optional[TraceContext]:
        if self.context is not None:
            _AMBIENT.items.append(self.context)
        return self.context

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.context is None:
            return False
        items = _AMBIENT.items
        for index in range(len(items) - 1, -1, -1):
            if items[index] is self.context:
                del items[index]
                break
        return False


def current_node_label() -> str:
    """The node name attributed to spans recorded on this thread."""
    return _AMBIENT.node_label


def set_node_label(label: Optional[str]) -> None:
    """Install this thread's node label (cluster node name, or "")."""
    _AMBIENT.node_label = label or ""


class node_label:
    """Context manager scoping a node label to a block (writer thread)."""

    __slots__ = ("label", "_previous")

    def __init__(self, label: Optional[str]):
        self.label = label or ""
        self._previous = ""

    def __enter__(self) -> "node_label":
        self._previous = _AMBIENT.node_label
        _AMBIENT.node_label = self.label
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _AMBIENT.node_label = self._previous
        return False


# ---------------------------------------------------------------------------
# recording helpers
# ---------------------------------------------------------------------------


def record_span(
    name: str,
    duration_ms: float,
    context: Optional[TraceContext] = None,
    node: Optional[str] = None,
    started_at: Optional[float] = None,
    own: bool = False,
    **attrs: Any,
) -> Optional[Span]:
    """Record one finished span under ``context`` (default: ambient).

    By default the span gets a fresh span_id and is parented to the
    context's span_id — deep seams (queue wait, fsync, replica apply)
    are leaves under whichever stage installed the ambient context.
    With ``own=True`` the span *is* the context's span (span_id =
    ``context.span_id``, parent = ``context.parent_id``) — the server
    statement span uses this so leaves recorded under the same context
    nest beneath it. Returns the recorded span, or ``None`` when
    tracing is off, no context is active, or the trace is unsampled.
    """
    collector = _COLLECTOR if _ENABLED else None
    if collector is None:
        return None
    if context is None:
        context = current_trace()
    if context is None or not context.sampled:
        return None
    if attrs:
        attrs = {k: v for k, v in attrs.items() if v is not None}
    span = Span(
        context.trace_id,
        context.span_id if own else new_span_id(),
        context.parent_id if own else context.span_id,
        name,
        node if node is not None else _AMBIENT.node_label,
        started_at
        if started_at is not None
        else time.time() - duration_ms / 1000.0,
        duration_ms,
        attrs,
    )
    collector.record(span)
    return span


class span:
    """Context manager timing a block into one recorded span.

    Resolves the ambient context at ``__enter__`` and records at
    ``__exit__``; disabled tracing costs one ``is None`` check.
    """

    __slots__ = ("name", "context", "own", "attrs", "_started", "_wall")

    def __init__(
        self,
        name: str,
        context: Optional[TraceContext] = None,
        own: bool = False,
        **attrs: Any,
    ):
        self.name = name
        self.context = context
        self.own = own
        self.attrs = attrs
        self._started = 0.0
        self._wall = 0.0

    def __enter__(self) -> "span":
        if self.context is None:
            self.context = current_trace()
        self._wall = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        context = self.context
        if context is None or not context.sampled or not _ENABLED:
            return False
        # inlined record_span (no kwargs repacking): this runs once per
        # statement on the client and session threads
        elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        attrs = self.attrs
        if exc_type is not None:
            attrs.setdefault("error", exc_type.__name__)
        if attrs:
            attrs = {k: v for k, v in attrs.items() if v is not None}
        _COLLECTOR.record(
            Span(
                context.trace_id,
                context.span_id if self.own else new_span_id(),
                context.parent_id if self.own else context.span_id,
                self.name,
                _AMBIENT.node_label,
                self._wall,
                elapsed_ms,
                attrs,
            )
        )
        return False


# ---------------------------------------------------------------------------
# the process-wide default collector
# ---------------------------------------------------------------------------

_COLLECTOR = SpanCollector()

_ENABLED = os.environ.get("REPRO_TRACING", "1").strip().lower() not in (
    "0",
    "off",
    "false",
    "no",
)


def get_collector() -> SpanCollector:
    """The process-wide collector (always available, even when disabled)."""
    return _COLLECTOR


def recording_collector() -> Optional[SpanCollector]:
    """The default collector, or ``None`` when tracing is disabled."""
    return _COLLECTOR if _ENABLED else None


def set_tracing_enabled(enabled: bool) -> None:
    """Toggle span recording at runtime (used by the overhead benchmark)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def tracing_enabled() -> bool:
    return _ENABLED
