"""Per-query operator tracing: the measured half of EXPLAIN ANALYZE.

A :class:`QueryTracer` hangs :class:`OperatorSpan` objects off the
ambient execution context, exactly like the resource governor's
:class:`~repro.budget.CancellationToken` (thread-local stack,
``current_tracer()`` lookup at iteration start, identity-based removal
so interleaved lazy consumers cannot pop each other's tracer). The
stack is per-thread so concurrent server sessions tracing their own
statements never interleave spans.

The hot-path contract mirrors the budget plumbing: with no tracer
active, :meth:`~repro.executor.operators.Operator.__iter__` performs a
single ``current_tracer() is None`` check and returns the operator's raw
row generator — no wrapper object, no span, no per-row cost. With a
tracer active, every operator's row stream is wrapped by
:meth:`QueryTracer.wrap`, which records ``next()`` calls, rows produced,
restarts (``loops`` — e.g. the inner side of a nested-loop join) and
inclusive elapsed time per operator. Traversal scans additionally report
their :class:`~repro.graph.traversal.TraversalStats` (frontier peak,
vertices/edges visited, paths emitted) through
:meth:`QueryTracer.record_traversal`, and a budget abort records its
cause through :meth:`QueryTracer.record_abort`.

Spans are keyed by object identity — operators for plan nodes, and the
correlated path-probe factory for the traversal that runs inside a
``ProbeJoinOp`` (the Figure-6 plan shape, where the scan itself is not a
plan node).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional


class OperatorSpan:
    """Actual execution statistics for one plan node (or probe scan)."""

    __slots__ = (
        "label",
        "rows_out",
        "next_calls",
        "loops",
        "elapsed_s",
        "traversal",
    )

    def __init__(self, label: str):
        self.label = label
        self.rows_out = 0
        self.next_calls = 0
        self.loops = 0
        self.elapsed_s = 0.0
        #: Aggregated traversal counters (``None`` for relational nodes):
        #: ``{"mode", "paths", "edges", "vertices", "peak_frontier"}``.
        self.traversal: Optional[Dict[str, Any]] = None

    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0

    def actuals(self) -> str:
        """The ``(actual ...)`` annotation EXPLAIN ANALYZE appends."""
        parts = [
            f"rows={self.rows_out}",
            f"nexts={self.next_calls}",
            f"loops={self.loops}",
            f"time={self.elapsed_ms():.2f} ms",
        ]
        return "(actual " + " ".join(parts) + ")"

    def traversal_summary(self) -> Optional[str]:
        if self.traversal is None:
            return None
        t = self.traversal
        parts = [
            f"mode={t['mode']}",
            f"paths={t['paths']}",
            f"vertices={t['vertices']}",
            f"edges={t['edges']}",
            f"peak_frontier={t['peak_frontier']}",
        ]
        if t.get("scans", 1) != 1:
            parts.append(f"scans={t['scans']}")
        return "[traversal " + " ".join(parts) + "]"

    def __repr__(self) -> str:
        return f"OperatorSpan({self.label!r}, {self.actuals()})"


class QueryTracer:
    """Collects spans for one traced statement execution."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: Span per traced object, keyed by identity (operators hash by
        #: identity, and holding the key keeps it alive for rendering).
        self._spans: Dict[Any, OperatorSpan] = {}
        self.abort_cause: Optional[str] = None

    # ------------------------------------------------------------------

    def span_for(self, key: Any, label: str) -> OperatorSpan:
        span = self._spans.get(key)
        if span is None:
            span = OperatorSpan(label)
            self._spans[key] = span
        return span

    def get(self, key: Any) -> Optional[OperatorSpan]:
        return self._spans.get(key)

    @property
    def spans(self) -> List[OperatorSpan]:
        return list(self._spans.values())

    # ------------------------------------------------------------------

    def wrap(self, operator: Any, rows: Iterator[Any]) -> Iterator[Any]:
        """Meter one iteration of ``operator``'s row stream.

        Elapsed time is inclusive (it contains time spent pulling from
        children), matching the usual EXPLAIN ANALYZE convention.
        """
        span = self.span_for(operator, operator.describe())
        span.loops += 1
        clock = self._clock
        iterator = iter(rows)
        while True:
            started = clock()
            try:
                row = next(iterator)
            except StopIteration:
                span.elapsed_s += clock() - started
                span.next_calls += 1
                return
            span.elapsed_s += clock() - started
            span.next_calls += 1
            span.rows_out += 1
            yield row

    def record_traversal(
        self, key: Any, label: str, mode: str, stats: Any
    ) -> None:
        """Fold one :class:`TraversalStats` into ``key``'s span.

        Called once per traversal run — a correlated probe contributes
        one call per outer row, aggregated under the factory's span.
        """
        span = self.span_for(key, label)
        aggregate = span.traversal
        if aggregate is None:
            aggregate = {
                "mode": mode,
                "paths": 0,
                "vertices": 0,
                "edges": 0,
                "peak_frontier": 0,
                "scans": 0,
            }
            span.traversal = aggregate
        aggregate["scans"] += 1
        aggregate["paths"] += stats.paths_emitted
        aggregate["vertices"] += stats.vertices_visited
        aggregate["edges"] += stats.edges_examined
        if stats.peak_frontier > aggregate["peak_frontier"]:
            aggregate["peak_frontier"] = stats.peak_frontier

    def record_abort(self, cause: str) -> None:
        """Note why the traced statement was cut short (budget/cancel)."""
        self.abort_cause = cause

    # ------------------------------------------------------------------

    def annotate(self, root: Any, indent: int = 0) -> str:
        """Render an operator tree with per-node actual statistics.

        Mirrors :meth:`Operator.explain`, appending each node's span (or
        ``(never executed)`` for nodes the execution never reached). For
        probe joins, the correlated traversal's span — keyed by the
        operator's ``inner_factory`` — is folded into the node's line.
        """
        pad = "  " * indent
        span = self.get(root)
        line = f"{pad}{root.describe()} "
        line += span.actuals() if span is not None else "(never executed)"
        extras: List[str] = []
        if span is not None and span.traversal_summary():
            extras.append(span.traversal_summary())
        inner_factory = getattr(root, "inner_factory", None)
        if inner_factory is not None:
            probe_span = self.get(inner_factory)
            if probe_span is not None and probe_span.traversal_summary():
                extras.append(probe_span.traversal_summary())
        for extra in extras:
            line += f" {extra}"
        lines = [line]
        for child in root.children():
            lines.append(self.annotate(child, indent + 1))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# ambient tracer (thread-local — same shape as repro.budget)
# ---------------------------------------------------------------------------


class _AmbientStack(threading.local):
    """Per-thread stack of active tracers (one per executing thread)."""

    def __init__(self):
        self.items: List[QueryTracer] = []


_AMBIENT = _AmbientStack()


def _stack() -> List[QueryTracer]:
    """This thread's tracer stack (tests introspect it)."""
    return _AMBIENT.items


def current_tracer() -> Optional[QueryTracer]:
    """The tracer observing this thread's innermost statement (or None)."""
    items = _AMBIENT.items
    return items[-1] if items else None


def deactivate(tracer: Optional[QueryTracer]) -> None:
    """Remove every occurrence of ``tracer`` from this thread's stack
    (backstop for lazy consumers, mirroring ``budget.deactivate``)."""
    if tracer is None:
        return
    items = _AMBIENT.items
    for index in range(len(items) - 1, -1, -1):
        if items[index] is tracer:
            del items[index]


class activate:
    """Context manager installing ``tracer`` as the ambient tracer.

    Removal is by identity, not strict stack discipline, so interleaved
    lazy consumers cannot pop each other's tracer.
    """

    __slots__ = ("tracer",)

    def __init__(self, tracer: QueryTracer):
        self.tracer = tracer

    def __enter__(self) -> QueryTracer:
        _AMBIENT.items.append(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        items = _AMBIENT.items
        for index in range(len(items) - 1, -1, -1):
            if items[index] is self.tracer:
                del items[index]
                break
        return False
