"""Structured event journal: the cluster's queryable flight recorder.

Metrics say *how much*; traces say *how long*; this journal says *what
happened and in what order*. Control-plane transitions that today only
surface as log lines or in-memory tuples — elections won and lost,
epoch bumps, ``NOT_PRIMARY`` redirects, HEALTHY→DEGRADED→RECOVERING
health transitions, replica quarantine, circuit-breaker opens/closes,
snapshot checkpoints — are emitted here as bounded, structured
:class:`Event` records and served three ways: the ``EVENTS`` wire
message, the shell's ``\\events``, and the per-node HTTP endpoint's
``/events``.

The journal is process-wide (like the metrics registry) and every event
carries a ``node`` field, so the in-process cluster used by the test
suite shares one journal whose events remain attributable, while a real
deployment has one journal per node. Emission is one lock-protected
append on control-plane paths only — never on the per-statement hot
path — so there is no overhead story to tell.

Event taxonomy (``kind`` values; see ``docs/observability.md``):

================== =====================================================
``election_won``    this node won an election (``epoch``)
``election_lost``   an election attempt was abandoned (``reason``)
``epoch_bump``      the node adopted a higher epoch (``epoch``, ``role``)
``fenced``          a primary was deposed by a higher epoch (``winner``)
``leader_adopted``  a replica adopted a (new) primary (``leader``)
``not_primary``     a write was redirected with NOT_PRIMARY (``session``)
``health``          a HealthMonitor transition (``from``, ``to``)
``quarantine``      a replica quarantined itself on digest divergence
``breaker_open``    a circuit breaker tripped open (``failures``)
``breaker_close``   a circuit breaker closed again
``checkpoint``      a supervisor snapshot checkpoint (``ok``)
``heal``            a supervisor self-heal attempt (``ok``)
================== =====================================================
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional


class Event:
    """One journal record: monotonic seq, wall-clock time, kind, detail."""

    __slots__ = ("seq", "timestamp", "kind", "node", "detail")

    def __init__(
        self,
        seq: int,
        timestamp: float,
        kind: str,
        node: str = "",
        detail: Optional[Dict[str, Any]] = None,
    ):
        self.seq = seq
        self.timestamp = timestamp
        self.kind = kind
        self.node = node
        self.detail = detail or {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "node": self.node,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        origin = f" node={self.node}" if self.node else ""
        return f"Event(#{self.seq} {self.kind}{origin} {self.detail!r})"


class EventJournal:
    """A bounded, lock-safe ring of control-plane events.

    ``seq`` is assigned from a process-wide monotonic counter *inside*
    the journal lock, so "election before epoch bump" style ordering
    assertions hold even when emitters race across threads.
    """

    def __init__(self, capacity: int = 512):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self.emitted = 0

    def emit(self, kind: str, node: str = "", **detail: Any) -> Event:
        """Append one event; returns it (tests assert on the record)."""
        with self._lock:
            event = Event(
                next(self._seq),
                time.time(),
                kind,
                node or "",
                {k: v for k, v in detail.items() if v is not None},
            )
            self._events.append(event)
            self.emitted += 1
        return event

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Event]:
        """Journal contents oldest-first, optionally filtered."""
        with self._lock:
            out = list(self._events)
        if kind:
            out = [e for e in out if e.kind == kind]
        if node:
            out = [e for e in out if e.node == node]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def export(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """JSON-ready event dicts (oldest first)."""
        return [e.as_dict() for e in self.events(kind, node, limit)]

    def export_json(self, kind: Optional[str] = None) -> str:
        return json.dumps(self.export(kind), indent=2, sort_keys=True)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ---------------------------------------------------------------------------
# the process-wide default journal
# ---------------------------------------------------------------------------

_JOURNAL = EventJournal()


def get_journal() -> EventJournal:
    """The process-wide journal (control-plane only; always on)."""
    return _JOURNAL


def emit(kind: str, node: str = "", **detail: Any) -> Event:
    """Emit one event into the process-wide journal."""
    return _JOURNAL.emit(kind, node, **detail)
