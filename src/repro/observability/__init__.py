"""Engine-wide observability: metrics registry, tracing, slow-query log.

Three cooperating pieces:

* :mod:`~repro.observability.metrics` — a process-wide
  :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) updated at the engine's instrumentation seams and
  rendered as Prometheus text or a JSON snapshot;
* :mod:`~repro.observability.tracer` — a per-query :class:`QueryTracer`
  hanging :class:`OperatorSpan` objects off the ambient execution
  context (the same plumbing pattern as the query budget), powering
  ``EXPLAIN ANALYZE``;
* :mod:`~repro.observability.slowlog` — a per-database
  :class:`SlowQueryLog` with a configurable latency threshold and
  per-session attribution;
* :mod:`~repro.observability.context` — the ambient (thread-local)
  session label the network server installs so shared seams like the
  slow-query log can attribute work to the client that sent it;
* :mod:`~repro.observability.tracing` — cluster-wide distributed
  tracing: a W3C-traceparent-style :class:`TraceContext` stamped on
  every client frame and shipped with every replicated record, plus a
  bounded :class:`SpanCollector` served by the ``TRACES`` wire message
  and the ``/traces`` HTTP route;
* :mod:`~repro.observability.events` — a bounded structured
  :class:`EventJournal` of control-plane transitions (elections, epoch
  bumps, health changes, quarantine, breaker flips, checkpoints);
* :mod:`~repro.observability.http` — the per-node stdlib HTTP endpoint
  serving ``/metrics``, ``/health``, ``/events`` and ``/traces`` so a
  node can be scraped without a database connection.

See ``docs/observability.md`` for the full tour.
"""

from .context import current_session_label, session_label, set_session_label
from .events import Event, EventJournal, emit, get_journal
from .metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    recording_registry,
    set_enabled,
)
from .http import ObservabilityHttpServer
from .slowlog import SlowQueryEntry, SlowQueryLog
from .tracer import OperatorSpan, QueryTracer, current_tracer
from .tracing import (
    Span,
    SpanCollector,
    TraceContext,
    current_trace,
    get_collector,
    record_span,
    recording_collector,
    set_tracing_enabled,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_MS",
    "get_registry",
    "recording_registry",
    "set_enabled",
    "metrics_enabled",
    "QueryTracer",
    "OperatorSpan",
    "current_tracer",
    "SlowQueryLog",
    "SlowQueryEntry",
    "current_session_label",
    "set_session_label",
    "session_label",
    "TraceContext",
    "Span",
    "SpanCollector",
    "current_trace",
    "get_collector",
    "recording_collector",
    "record_span",
    "set_tracing_enabled",
    "tracing_enabled",
    "Event",
    "EventJournal",
    "emit",
    "get_journal",
    "ObservabilityHttpServer",
]
