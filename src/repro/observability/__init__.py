"""Engine-wide observability: metrics registry, tracing, slow-query log.

Three cooperating pieces:

* :mod:`~repro.observability.metrics` — a process-wide
  :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) updated at the engine's instrumentation seams and
  rendered as Prometheus text or a JSON snapshot;
* :mod:`~repro.observability.tracer` — a per-query :class:`QueryTracer`
  hanging :class:`OperatorSpan` objects off the ambient execution
  context (the same plumbing pattern as the query budget), powering
  ``EXPLAIN ANALYZE``;
* :mod:`~repro.observability.slowlog` — a per-database
  :class:`SlowQueryLog` with a configurable latency threshold and
  per-session attribution;
* :mod:`~repro.observability.context` — the ambient (thread-local)
  session label the network server installs so shared seams like the
  slow-query log can attribute work to the client that sent it.

See ``docs/observability.md`` for the full tour.
"""

from .context import current_session_label, session_label, set_session_label
from .metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    recording_registry,
    set_enabled,
)
from .slowlog import SlowQueryEntry, SlowQueryLog
from .tracer import OperatorSpan, QueryTracer, current_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_MS",
    "get_registry",
    "recording_registry",
    "set_enabled",
    "metrics_enabled",
    "QueryTracer",
    "OperatorSpan",
    "current_tracer",
    "SlowQueryLog",
    "SlowQueryEntry",
    "current_session_label",
    "set_session_label",
    "session_label",
]
