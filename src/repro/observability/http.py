"""Per-node HTTP observability endpoint (stdlib ``http.server``).

Nodes must be scrappable without a database connection: a probe or a
human with ``curl`` should read a node's health during the exact
failures (auth broken, session queue full, primary fenced) that make
the wire protocol unusable. The endpoint therefore runs on its own
daemon threads, shares nothing with the session server but the
process-wide observability singletons, and serves:

=============== ========================================================
``/metrics``     Prometheus text exposition (the existing registry)
``/health``      JSON health document (same payload as the wire
                 ``HEALTH`` message, minus the envelope)
``/events``      JSON event journal (``?kind=`` and ``?limit=`` filters)
``/traces``      JSON span export (``?trace_id=`` and ``?limit=``)
=============== ========================================================

Enabled with ``--http-port`` on both ``--serve`` and ``--cluster``
nodes. GET-only, loopback-oriented, deliberately unauthenticated —
the same read-only trust model as a Prometheus scrape target.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from . import events as observability_events
from . import tracing as observability_tracing
from .metrics import get_registry


class _Handler(BaseHTTPRequestHandler):
    """Routes one GET to the observability singletons (no state)."""

    #: Set by :class:`ObservabilityHttpServer` on the handler subclass.
    health_provider: Optional[Callable[[], Dict[str, Any]]] = None
    node_name: str = ""

    server_version = "repro-observability/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route in ("/", "/metrics"):
                body = get_registry().render_prometheus(
                    _first(query, "filter")
                )
                self._respond(
                    200, body + "\n", "text/plain; version=0.0.4"
                )
            elif route == "/health":
                payload = {"node": self.node_name}
                provider = self.health_provider
                if provider is not None:
                    payload.update(provider())
                self._respond_json(200, payload)
            elif route == "/events":
                journal = observability_events.get_journal()
                self._respond_json(
                    200,
                    {
                        "node": self.node_name,
                        "events": journal.export(
                            kind=_first(query, "kind"),
                            limit=_int(query, "limit"),
                        ),
                    },
                )
            elif route == "/traces":
                collector = observability_tracing.get_collector()
                self._respond_json(
                    200,
                    {
                        "node": self.node_name,
                        "spans": collector.export(
                            trace_id=_first(query, "trace_id"),
                            limit=_int(query, "limit"),
                        ),
                    },
                )
            else:
                self._respond_json(404, {"error": f"no route {route!r}"})
        except Exception as error:  # pragma: no cover - defensive
            self._respond_json(500, {"error": str(error)})

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines (scrapes are frequent)."""

    # ------------------------------------------------------------------

    def _respond(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _respond_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._respond(
            status,
            json.dumps(payload, sort_keys=True, default=str) + "\n",
            "application/json",
        )


def _first(query: Dict[str, Any], key: str) -> Optional[str]:
    values = query.get(key)
    return values[0] if values else None


def _int(query: Dict[str, Any], key: str) -> Optional[int]:
    value = _first(query, key)
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        return None


class ObservabilityHttpServer:
    """A daemon-threaded HTTP server bound to one node's observability.

    ``health_provider`` returns the node's health document (typically
    the wire ``HEALTH`` payload); it is called per request so the
    served state is always current.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        health_provider: Optional[Callable[[], Dict[str, Any]]] = None,
        node_name: str = "",
    ):
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"health_provider": staticmethod(health_provider)
             if health_provider is not None else None,
             "node_name": node_name},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ObservabilityHttpServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"obs-http:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def url(self, route: str = "/") -> str:
        return f"http://{self.host}:{self.port}{route}"

    def __repr__(self) -> str:
        return f"ObservabilityHttpServer({self.host}:{self.port})"
