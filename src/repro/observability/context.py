"""Ambient per-thread execution context: who is running this statement?

The network server executes every session on its own thread (and routes
writes through the single-writer executor thread), while the engine's
instrumentation seams — the slow-query log above all — live deep inside
:class:`~repro.core.database.Database` where no session object is in
scope. This module carries the attribution across that gap the same way
the resource governor carries its token: a ``threading.local`` slot the
server sets around statement execution and the seams read for free.

The label is a short human-readable string (``"s3 [127.0.0.1:52144]"``)
— never interpreted, only recorded.
"""

from __future__ import annotations

import threading
from typing import Optional


class _Context(threading.local):
    def __init__(self):
        self.session_label: str = ""


_CONTEXT = _Context()


def current_session_label() -> str:
    """The session label attributed to this thread's statements."""
    return _CONTEXT.session_label


def set_session_label(label: Optional[str]) -> None:
    """Install ``label`` (or clear with ``None``/``""``) on this thread."""
    _CONTEXT.session_label = label or ""


class session_label:
    """Context manager scoping a session label to a block.

    The single-writer executor uses this so each queued write is
    attributed to the session that submitted it, not to the executor
    thread.
    """

    __slots__ = ("label", "_previous")

    def __init__(self, label: Optional[str]):
        self.label = label or ""
        self._previous = ""

    def __enter__(self) -> "session_label":
        self._previous = _CONTEXT.session_label
        _CONTEXT.session_label = self.label
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CONTEXT.session_label = self._previous
        return False
