"""Slow-query log: a bounded ring of statements over a latency threshold.

Attached per :class:`~repro.core.database.Database`; disabled until a
threshold is configured (``db.set_slow_query_threshold(ms)``), so the
per-statement cost of the disabled path is one ``None`` comparison.
Recorded entries also increment the ``repro_slow_queries_total`` counter
in the process-wide metrics registry.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class SlowQueryEntry:
    """One recorded slow statement."""

    __slots__ = ("sql", "elapsed_ms", "rows", "kind")

    def __init__(self, sql: str, elapsed_ms: float, rows: int, kind: str):
        self.sql = sql
        self.elapsed_ms = elapsed_ms
        self.rows = rows
        self.kind = kind

    def __repr__(self) -> str:
        head = self.sql if len(self.sql) <= 60 else self.sql[:57] + "..."
        return (
            f"SlowQueryEntry({self.elapsed_ms:.1f} ms, {self.kind}, "
            f"rows={self.rows}, {head!r})"
        )


class SlowQueryLog:
    """Keeps the most recent ``capacity`` statements over the threshold."""

    def __init__(
        self,
        threshold_ms: Optional[float] = None,
        capacity: int = 64,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.threshold_ms = threshold_ms
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=capacity)

    def set_threshold(self, threshold_ms: Optional[float]) -> None:
        """Set (or clear, with ``None``) the recording threshold."""
        if threshold_ms is not None and threshold_ms < 0:
            raise ValueError("threshold_ms must be non-negative")
        self.threshold_ms = threshold_ms

    def observe(
        self, sql: str, elapsed_ms: float, rows: int, kind: str
    ) -> bool:
        """Record the statement if it crossed the threshold."""
        if self.threshold_ms is None or elapsed_ms < self.threshold_ms:
            return False
        self._entries.append(SlowQueryEntry(sql, elapsed_ms, rows, kind))
        return True

    def entries(self) -> List[SlowQueryEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
