"""Slow-query log: a bounded ring of statements over a latency threshold.

Attached per :class:`~repro.core.database.Database`; disabled until a
threshold is configured (``db.set_slow_query_threshold(ms)``), so the
per-statement cost of the disabled path is one ``None`` comparison.
Recorded entries also increment the ``repro_slow_queries_total`` counter
in the process-wide metrics registry.

The log is shared by every session of a network server, so recording
and reading hold a lock (``deque.append`` alone is atomic, but the
threshold check + append + counter bump must observe one consistent
configuration), and each entry carries the **session label** of the
connection that ran the statement (empty for in-process callers) so a
slow ``PATHS`` enumeration can be attributed to the client that sent it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional


class SlowQueryEntry:
    """One recorded slow statement."""

    __slots__ = ("sql", "elapsed_ms", "rows", "kind", "session", "trace_id", "node")

    def __init__(
        self,
        sql: str,
        elapsed_ms: float,
        rows: int,
        kind: str,
        session: str = "",
        trace_id: str = "",
        node: str = "",
    ):
        self.sql = sql
        self.elapsed_ms = elapsed_ms
        self.rows = rows
        self.kind = kind
        #: Server session label ("" when the statement ran in-process).
        self.session = session
        #: Distributed trace id ("" when the statement was untraced) —
        #: join key into the span collector / ``TRACES`` wire message.
        self.trace_id = trace_id
        #: Cluster node name ("" for a standalone server / in-process).
        self.node = node

    def as_dict(self) -> dict:
        """JSON-ready form (the ``SLOWLOG`` wire message payload)."""
        return {
            "sql": self.sql,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "rows": self.rows,
            "kind": self.kind,
            "session": self.session,
            "trace_id": self.trace_id,
            "node": self.node,
        }

    def __repr__(self) -> str:
        head = self.sql if len(self.sql) <= 60 else self.sql[:57] + "..."
        origin = f", session={self.session!r}" if self.session else ""
        if self.node:
            origin += f", node={self.node!r}"
        if self.trace_id:
            origin += f", trace={self.trace_id[:8]}.."
        return (
            f"SlowQueryEntry({self.elapsed_ms:.1f} ms, {self.kind}, "
            f"rows={self.rows}{origin}, {head!r})"
        )


class SlowQueryLog:
    """Keeps the most recent ``capacity`` statements over the threshold."""

    def __init__(
        self,
        threshold_ms: Optional[float] = None,
        capacity: int = 64,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.threshold_ms = threshold_ms
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def set_threshold(self, threshold_ms: Optional[float]) -> None:
        """Set (or clear, with ``None``) the recording threshold."""
        if threshold_ms is not None and threshold_ms < 0:
            raise ValueError("threshold_ms must be non-negative")
        with self._lock:
            self.threshold_ms = threshold_ms

    def observe(
        self,
        sql: str,
        elapsed_ms: float,
        rows: int,
        kind: str,
        session: str = "",
        trace_id: str = "",
        node: str = "",
    ) -> bool:
        """Record the statement if it crossed the threshold."""
        with self._lock:
            if self.threshold_ms is None or elapsed_ms < self.threshold_ms:
                return False
            self._entries.append(
                SlowQueryEntry(
                    sql, elapsed_ms, rows, kind, session, trace_id, node
                )
            )
            return True

    def entries(self) -> List[SlowQueryEntry]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
