"""Conjunct analysis: splitting WHERE clauses and classifying predicates.

The planner reasons about the query one *conjunct* (top-level AND term)
at a time: which aliases it touches, whether it is an equi-join between
two alias sets, whether it binds a path's start/end vertex, and so on.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import PlanningError
from ..expr.compile import ExpressionCompiler
from ..expr.scope import Scope
from ..sql import ast


def split_conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    """Flatten a WHERE tree into its top-level AND terms."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: List[ast.Expression]) -> Optional[ast.Expression]:
    """Rebuild an AND tree (inverse of :func:`split_conjuncts`)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for term in conjuncts[1:]:
        result = ast.BinaryOp("AND", result, term)
    return result


def referenced_aliases(expression: ast.Expression, scope: Scope) -> Set[str]:
    """Lower-cased aliases an expression touches.

    Resolution errors are deliberately *not* swallowed: an unresolvable
    name in a WHERE clause is a user error and should surface.
    """
    compiler = ExpressionCompiler(scope)
    compiled = compiler.compile(expression)
    return compiled.aliases


def equi_join_sides(
    conjunct: ast.Expression,
    scope: Scope,
    left_aliases: Set[str],
    right_aliases: Set[str],
) -> Optional[Tuple[ast.Expression, ast.Expression]]:
    """If ``conjunct`` is ``expr_L = expr_R`` with each side confined to
    one of the two alias sets, return the (left-side, right-side) pair,
    swapping as needed. Otherwise ``None``."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    try:
        a_aliases = referenced_aliases(conjunct.left, scope)
        b_aliases = referenced_aliases(conjunct.right, scope)
    except PlanningError:
        return None
    if not a_aliases or not b_aliases:
        return None  # one side constant: a filter, not a join
    if a_aliases <= left_aliases and b_aliases <= right_aliases:
        return conjunct.left, conjunct.right
    if a_aliases <= right_aliases and b_aliases <= left_aliases:
        return conjunct.right, conjunct.left
    return None


def extract_column_equality(
    conjunct: ast.Expression, alias: str
) -> Optional[Tuple[str, ast.Expression]]:
    """Match ``alias.column = <expr>`` (either orientation).

    Returns ``(column_name, other_side)`` — used for index selection.
    """
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None

    def column_of(node: ast.Expression) -> Optional[str]:
        if (
            isinstance(node, ast.FieldAccess)
            and node.base.lower() == alias.lower()
            and len(node.accessors) == 1
            and isinstance(node.accessors[0], ast.NameAccessor)
        ):
            return node.accessors[0].name
        return None

    left_column = column_of(conjunct.left)
    if left_column is not None:
        return left_column, conjunct.right
    right_column = column_of(conjunct.right)
    if right_column is not None:
        return right_column, conjunct.left
    return None


def is_constant(expression: ast.Expression, scope: Scope) -> bool:
    """True when the expression references no alias at all."""
    try:
        return not referenced_aliases(expression, scope)
    except PlanningError:
        return False


_RANGE_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def extract_column_comparison(
    conjunct: ast.Expression, alias: str
) -> Optional[Tuple[str, str, ast.Expression]]:
    """Match ``alias.column OP <expr>`` for OP in < <= > >= (either
    orientation; the operator is normalized to the column-on-the-left
    form). Returns ``(column, op, other_side)``."""
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    if conjunct.op not in _RANGE_FLIP:
        return None

    def column_of(node: ast.Expression) -> Optional[str]:
        if (
            isinstance(node, ast.FieldAccess)
            and node.base.lower() == alias.lower()
            and len(node.accessors) == 1
            and isinstance(node.accessors[0], ast.NameAccessor)
        ):
            return node.accessors[0].name
        return None

    left_column = column_of(conjunct.left)
    if left_column is not None:
        return left_column, conjunct.op, conjunct.right
    right_column = column_of(conjunct.right)
    if right_column is not None:
        return right_column, _RANGE_FLIP[conjunct.op], conjunct.left
    return None
