"""AST rewriting utilities used by the planner.

The main customer is aggregation planning: relational aggregate calls
and GROUP BY expressions inside the select list are substituted with
references to the synthetic output row of the Aggregate operator.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..expr.functions import is_aggregate_name
from ..expr.scope import PathCollectionRef, Scope
from ..errors import PlanningError
from ..sql import ast

Replacer = Callable[[ast.Expression], Optional[ast.Expression]]


def replace_nodes(node: ast.Expression, replacer: Replacer) -> ast.Expression:
    """Rebuild an expression tree, substituting wherever ``replacer``
    returns a non-None replacement (checked top-down, pre-order)."""
    replacement = replacer(node)
    if replacement is not None:
        return replacement
    if isinstance(node, ast.UnaryOp):
        return ast.UnaryOp(node.op, replace_nodes(node.operand, replacer))
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(
            node.op,
            replace_nodes(node.left, replacer),
            replace_nodes(node.right, replacer),
        )
    if isinstance(node, ast.InList):
        return ast.InList(
            replace_nodes(node.operand, replacer),
            [replace_nodes(item, replacer) for item in node.items],
            node.negated,
        )
    if isinstance(node, ast.Between):
        return ast.Between(
            replace_nodes(node.operand, replacer),
            replace_nodes(node.low, replacer),
            replace_nodes(node.high, replacer),
            node.negated,
        )
    if isinstance(node, ast.IsNull):
        return ast.IsNull(replace_nodes(node.operand, replacer), node.negated)
    if isinstance(node, ast.Like):
        return ast.Like(
            replace_nodes(node.operand, replacer),
            replace_nodes(node.pattern, replacer),
            node.negated,
        )
    if isinstance(node, ast.FunctionCall):
        return ast.FunctionCall(
            node.name,
            [replace_nodes(arg, replacer) for arg in node.args],
            node.distinct,
        )
    if isinstance(node, ast.Cast):
        return ast.Cast(replace_nodes(node.operand, replacer), node.type_name)
    if isinstance(node, ast.CaseWhen):
        return ast.CaseWhen(
            [
                (replace_nodes(c, replacer), replace_nodes(r, replacer))
                for c, r in node.branches
            ],
            replace_nodes(node.otherwise, replacer)
            if node.otherwise is not None
            else None,
        )
    return node  # literals, identifiers, field accesses, stars


def is_path_aggregate(node: ast.FunctionCall, scope: Scope) -> bool:
    """True for ``SUM(PS.Edges.w)``-style calls, which are scalar
    per-row expressions rather than relational aggregates."""
    if len(node.args) != 1 or not isinstance(node.args[0], ast.FieldAccess):
        return False
    try:
        reference = scope.resolve_field_access(node.args[0])
    except PlanningError:
        return False
    return isinstance(reference, PathCollectionRef)


def find_relational_aggregates(
    node: Optional[ast.Expression], scope: Scope
) -> List[ast.FunctionCall]:
    """Collect relational aggregate calls (COUNT/SUM/... over rows).

    Nested aggregates are rejected, matching SQL.
    """
    if node is None:
        return []
    found: List[ast.FunctionCall] = []

    def visit(current: ast.Expression, inside_aggregate: bool) -> None:
        if isinstance(current, ast.FunctionCall) and is_aggregate_name(current.name):
            if not is_path_aggregate(current, scope):
                if inside_aggregate:
                    raise PlanningError("aggregate calls cannot be nested")
                found.append(current)
                for arg in current.args:
                    visit(arg, True)
                return
        for child in _children_of(current):
            visit(child, inside_aggregate)

    visit(node, False)
    return found


def _children_of(node: ast.Expression) -> List[ast.Expression]:
    if isinstance(node, ast.UnaryOp):
        return [node.operand]
    if isinstance(node, ast.BinaryOp):
        return [node.left, node.right]
    if isinstance(node, ast.InList):
        return [node.operand] + node.items
    if isinstance(node, ast.Between):
        return [node.operand, node.low, node.high]
    if isinstance(node, ast.IsNull):
        return [node.operand]
    if isinstance(node, ast.Like):
        return [node.operand, node.pattern]
    if isinstance(node, ast.FunctionCall):
        return list(node.args)
    if isinstance(node, ast.Cast):
        return [node.operand]
    if isinstance(node, ast.CaseWhen):
        children: List[ast.Expression] = []
        for condition, result in node.branches:
            children.extend((condition, result))
        if node.otherwise is not None:
            children.append(node.otherwise)
        return children
    return []


def contains_identifier(node: ast.Expression) -> bool:
    """Whether any column/alias reference survives in the expression —
    used to validate select items against the GROUP BY clause."""
    for sub in ast.walk_expression(node):
        if isinstance(sub, (ast.Identifier, ast.FieldAccess, ast.Star)):
            return True
    return False


def rewrite_select(select: ast.Select, replacer: Replacer) -> ast.Select:
    """Rebuild a SELECT applying ``replacer`` to every *top-level*
    expression position (select items, WHERE, GROUP BY, HAVING, ORDER
    BY, join conditions, and recursively inside derived tables).

    Subqueries nested inside expressions are not entered — callers that
    need deeper rewriting must handle them explicitly.
    """

    def rewrite_from(item: ast.FromItem) -> ast.FromItem:
        if isinstance(item, ast.Join):
            return ast.Join(
                rewrite_from(item.left),
                rewrite_from(item.right),
                replace_nodes(item.condition, replacer)
                if item.condition is not None
                else None,
                item.kind,
            )
        if isinstance(item, ast.SubquerySource):
            return ast.SubquerySource(
                rewrite_select(item.query, replacer), item.alias
            )
        return item

    return ast.Select(
        [
            ast.SelectItem(replace_nodes(i.expression, replacer), i.alias)
            for i in select.items
        ],
        [rewrite_from(i) for i in select.from_items],
        where=replace_nodes(select.where, replacer)
        if select.where is not None
        else None,
        group_by=[replace_nodes(g, replacer) for g in select.group_by],
        having=replace_nodes(select.having, replacer)
        if select.having is not None
        else None,
        order_by=[
            ast.OrderItem(replace_nodes(o.expression, replacer), o.ascending)
            for o in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def local_aliases_of(select: ast.Select) -> set:
    """Every alias defined anywhere inside a SELECT (all nesting levels)."""
    aliases = set()

    def visit_from(item: ast.FromItem) -> None:
        if isinstance(item, ast.Join):
            visit_from(item.left)
            visit_from(item.right)
            return
        if isinstance(item, ast.SubquerySource):
            aliases.add(item.alias.lower())
            aliases.update(local_aliases_of(item.query))
            return
        alias = getattr(item, "alias", None)
        if alias:
            aliases.add(alias.lower())

    def visit_expression(expression) -> None:
        if expression is None:
            return
        for node in ast.walk_expression(expression):
            if isinstance(node, (ast.InSubquery,)):
                aliases.update(local_aliases_of(node.subquery))
            elif isinstance(node, ast.ScalarSubquery):
                aliases.update(local_aliases_of(node.subquery))
            elif isinstance(node, ast.ExistsSubquery):
                aliases.update(local_aliases_of(node.subquery))

    for item in select.from_items:
        visit_from(item)
    for select_item in select.items:
        visit_expression(select_item.expression)
    visit_expression(select.where)
    for group in select.group_by:
        visit_expression(group)
    visit_expression(select.having)
    for order in select.order_by:
        visit_expression(order.expression)
    return aliases


def find_outer_references(select: ast.Select, outer_scope: Scope) -> list:
    """FieldAccess nodes inside ``select`` whose base alias is not
    defined anywhere in the subquery but *is* an alias of the outer
    scope — i.e. the correlation points."""
    locals_ = local_aliases_of(select)
    found = []

    def scan_expression(expression) -> None:
        if expression is None:
            return
        for node in ast.walk_expression(expression):
            if isinstance(node, ast.FieldAccess):
                base = node.base.lower()
                if base not in locals_ and outer_scope.binding(base) is not None:
                    found.append(node)
            elif isinstance(node, ast.InSubquery):
                scan_select(node.subquery)
            elif isinstance(node, ast.ScalarSubquery):
                scan_select(node.subquery)
            elif isinstance(node, ast.ExistsSubquery):
                scan_select(node.subquery)

    def scan_from(item: ast.FromItem) -> None:
        if isinstance(item, ast.Join):
            scan_from(item.left)
            scan_from(item.right)
            if item.condition is not None:
                scan_expression(item.condition)
            return
        if isinstance(item, ast.SubquerySource):
            scan_select(item.query)

    def scan_select(sub: ast.Select) -> None:
        for item in sub.from_items:
            scan_from(item)
        for select_item in sub.items:
            scan_expression(select_item.expression)
        scan_expression(sub.where)
        for group in sub.group_by:
            scan_expression(group)
        scan_expression(sub.having)
        for order in sub.order_by:
            scan_expression(order.expression)

    scan_select(select)
    return found
