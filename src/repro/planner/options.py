"""Planner configuration knobs (also used by the ablation benchmarks)."""

from __future__ import annotations

from typing import Optional

from ..budget import QueryBudget


class PlannerOptions:
    """Tunables for query optimization.

    Attributes:
        push_path_filters: apply Section 6.2 (filters evaluated inside
            the traversal). Off, every path predicate is evaluated by a
            Filter operator above the PathScan.
        infer_path_length: apply Section 6.1 (derive min/max path length
            from predicates and positional references).
        default_traversal: physical operator used when no hint is given
            and no length can be inferred ('DFS' or 'BFS').
        reachability_shortcut: allow the global visited-once BFS
            discipline for existence-style queries (bound end vertex +
            ``LIMIT 1`` + position-independent filters).
        default_max_path_length: safety cap applied when a PATHS query
            has no inferable maximum length (``None`` = unbounded, as in
            the paper).
        reorder_joins: greedily reorder the relational from-items by
            estimated cardinality (smallest filtered input first,
            connected equi-joins before cross products). Off, joins run
            in FROM order.
        budget: a :class:`~repro.budget.QueryBudget` applied to every
            statement planned with these options. Combined (tightest
            knob wins) with the per-``Database`` budget and any
            per-statement budget passed to ``db.execute(sql, budget=...)``.
    """

    def __init__(
        self,
        push_path_filters: bool = True,
        infer_path_length: bool = True,
        default_traversal: str = "DFS",
        reachability_shortcut: bool = True,
        default_max_path_length: Optional[int] = None,
        reorder_joins: bool = True,
        budget: Optional[QueryBudget] = None,
    ):
        self.push_path_filters = push_path_filters
        self.infer_path_length = infer_path_length
        self.default_traversal = default_traversal.upper()
        self.reachability_shortcut = reachability_shortcut
        self.default_max_path_length = default_max_path_length
        self.reorder_joins = reorder_joins
        self.budget = budget

    def copy(self, **overrides) -> "PlannerOptions":
        values = {
            "push_path_filters": self.push_path_filters,
            "infer_path_length": self.infer_path_length,
            "default_traversal": self.default_traversal,
            "reachability_shortcut": self.reachability_shortcut,
            "default_max_path_length": self.default_max_path_length,
            "reorder_joins": self.reorder_joins,
            "budget": self.budget,
        }
        values.update(overrides)
        return PlannerOptions(**values)

    def __repr__(self) -> str:
        return (
            f"PlannerOptions(push={self.push_path_filters}, "
            f"infer={self.infer_path_length}, "
            f"default={self.default_traversal!r}, "
            f"shortcut={self.reachability_shortcut}, "
            f"max_len={self.default_max_path_length}, "
            f"budget={self.budget!r})"
        )
