"""Path-length inference (Section 6.1 of the paper).

From the top-level conjuncts of a query, derive the allowed ``[min,
max]`` length interval of a path alias:

* explicit predicates — ``PS.Length = 2``, ``PS.Length <= 5``,
  ``PS.Length BETWEEN 2 AND 4``;
* implicit positional references — ``PS.Edges[5..*].a = v`` implies a
  minimum length of 6 (the range must be non-empty), ``PS.Edges[7..9].b``
  implies a minimum of 10, ``PS.Vertexes[3].c`` a minimum of 3.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sql import ast


class LengthBounds:
    """A closed interval of allowed path lengths (max may be open)."""

    def __init__(self, minimum: int = 1, maximum: Optional[int] = None):
        self.minimum = minimum
        self.maximum = maximum

    def require_min(self, value: int) -> None:
        if value > self.minimum:
            self.minimum = value

    def require_max(self, value: int) -> None:
        if self.maximum is None or value < self.maximum:
            self.maximum = value

    @property
    def is_empty(self) -> bool:
        return self.maximum is not None and self.maximum < self.minimum

    def __repr__(self) -> str:
        return f"LengthBounds([{self.minimum}, {self.maximum}])"


def _is_length_ref(node: ast.Expression, alias: str) -> bool:
    return (
        isinstance(node, ast.FieldAccess)
        and node.base.lower() == alias.lower()
        and len(node.accessors) == 1
        and isinstance(node.accessors[0], ast.NameAccessor)
        and node.accessors[0].name.lower() == "length"
    )


def _literal_int(node: ast.Expression) -> Optional[int]:
    if isinstance(node, ast.Literal) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and node.op == "-"
        and isinstance(node.operand, ast.Literal)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def apply_explicit_length_predicate(
    conjunct: ast.Expression, alias: str, bounds: LengthBounds
) -> bool:
    """If ``conjunct`` constrains ``alias.Length`` against an integer
    literal, fold it into ``bounds`` and return True."""
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        if _is_length_ref(conjunct.operand, alias):
            low = _literal_int(conjunct.low)
            high = _literal_int(conjunct.high)
            if low is not None and high is not None:
                bounds.require_min(low)
                bounds.require_max(high)
                return True
        return False
    if not isinstance(conjunct, ast.BinaryOp):
        return False
    op = conjunct.op
    if op not in _FLIP:
        return False
    if _is_length_ref(conjunct.left, alias):
        value = _literal_int(conjunct.right)
    elif _is_length_ref(conjunct.right, alias):
        value = _literal_int(conjunct.left)
        op = _FLIP[op]
    else:
        return False
    if value is None:
        return False
    if op == "=":
        bounds.require_min(value)
        bounds.require_max(value)
    elif op == "<":
        bounds.require_max(value - 1)
    elif op == "<=":
        bounds.require_max(value)
    elif op == ">":
        bounds.require_min(value + 1)
    elif op == ">=":
        bounds.require_min(value)
    else:
        return False  # '<>' gives no usable interval
    return True


def apply_positional_inference(
    conjunct: ast.Expression, alias: str, bounds: LengthBounds
) -> None:
    """Derive minimum lengths from positional element references."""
    lowered = alias.lower()
    for node in ast.walk_expression(conjunct):
        if not isinstance(node, ast.FieldAccess) or node.base.lower() != lowered:
            continue
        if len(node.accessors) < 2 or not isinstance(
            node.accessors[0], ast.NameAccessor
        ):
            continue
        collection = node.accessors[0].name.lower()
        if collection not in ("edges", "vertexes", "vertices"):
            continue
        selector = node.accessors[1]
        if isinstance(selector, ast.IndexAccessor):
            position = selector.index
        elif isinstance(selector, ast.RangeAccessor):
            position = selector.start if selector.end is None else selector.end
        else:
            continue
        if collection == "edges":
            bounds.require_min(position + 1)
        else:
            bounds.require_min(position)


def infer_length_bounds(
    conjuncts: List[ast.Expression], alias: str
) -> Tuple[LengthBounds, List[ast.Expression]]:
    """Fold all length information for ``alias`` out of ``conjuncts``.

    Returns the bounds and the conjuncts that were *fully consumed* by
    explicit length predicates (they need no further evaluation).
    """
    bounds = LengthBounds()
    consumed: List[ast.Expression] = []
    for conjunct in conjuncts:
        if apply_explicit_length_predicate(conjunct, alias, bounds):
            consumed.append(conjunct)
        else:
            apply_positional_inference(conjunct, alias, bounds)
    return bounds, consumed
