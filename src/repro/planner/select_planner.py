"""The SELECT planner: from an AST to an executable operator tree.

Follows the paper's conceptual evaluation (Section 5.3):

1. relational tables / graph element scans are joined first, with
   single-alias predicates pushed to the scans (index lookups where an
   index matches) and equi-joins executed as hash joins;
2. each ``GV.PATHS`` item becomes a PathScan — correlated (probed by the
   relational result, Figure 6) when its start/end vertexes are bound to
   other aliases, standalone otherwise;
3. remaining predicates, aggregation, HAVING, ORDER BY, DISTINCT and
   LIMIT are applied on top.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ExecutionError, PlanningError
from ..executor.aggregates import AggregateOp, AggregateSpec, SortOp
from ..executor.joins import HashJoinOp, NestedLoopJoinOp, ProbeJoinOp
from ..executor.operators import (
    DerivedTableOp,
    DistinctOp,
    FilterOp,
    IndexLookupOp,
    IndexRangeScanOp,
    LimitOp,
    Operator,
    ProjectOp,
    SeqScanOp,
    SingleRowOp,
)
from ..expr.compile import CompiledExpression, ExpressionCompiler
from ..expr.scope import (
    EdgeBinding,
    PathBinding,
    RelationBinding,
    Scope,
    VertexBinding,
)
from ..graph.graph_view import GraphView
from ..graph.operators import (
    EdgeLookupOp,
    EdgeScanOp,
    PathScanSourceOp,
    VertexLookupOp,
    VertexScanOp,
    make_path_probe_factory,
)
from ..graph.traversal import TraversalSpec, choose_traversal
from ..sql import ast
from ..storage.catalog import Catalog
from ..storage.schema import Column, TableSchema
from ..storage.table import Table
from ..types import SqlType
from .conjuncts import (
    conjoin,
    equi_join_sides,
    extract_column_comparison,
    extract_column_equality,
    referenced_aliases,
    split_conjuncts,
)
from .length_inference import LengthBounds, infer_length_bounds
from .options import PlannerOptions
from .path_planning import (
    PathPredicatePlan,
    classify_path_conjuncts,
    compile_path_predicate,
)
from .rewrite import (
    find_outer_references,
    find_relational_aggregates,
    replace_nodes,
    rewrite_select,
)

SubqueryExecutor = Callable[[ast.Select], List[Tuple[Any, ...]]]


class PlannedQuery:
    """An executable plan plus its output column names."""

    def __init__(self, operator: Operator, column_names: List[str]):
        self.operator = operator
        self.column_names = column_names

    def explain(self) -> str:
        return self.operator.explain()


class _FromEntry:
    """One flattened from-clause item with its join kind / condition."""

    __slots__ = ("item", "kind", "on_condition", "binding")

    def __init__(self, item: ast.FromItem, kind: str, on_condition):
        self.item = item
        self.kind = kind  # 'INNER' | 'CROSS' | 'LEFT'
        self.on_condition = on_condition
        self.binding = None


class SelectPlanner:
    def __init__(
        self,
        catalog: Catalog,
        options: Optional[PlannerOptions] = None,
        subquery_executor: Optional[SubqueryExecutor] = None,
    ):
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self.subquery_executor = subquery_executor

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan(self, select: ast.Select) -> PlannedQuery:
        entries = self._flatten_from(select.from_items)
        scope = self._build_scope(entries)
        width = scope.width

        where = self._materialize_subqueries(select.where, scope)
        conjuncts = split_conjuncts(where)
        for entry in entries:
            if entry.kind == "INNER" and entry.on_condition is not None:
                conjuncts.extend(
                    self._materialize_subqueries_list(
                        split_conjuncts(entry.on_condition), scope
                    )
                )
                entry.on_condition = None

        path_entries = [e for e in entries if self._is_path_entry(e)]
        other_entries = [e for e in entries if not self._is_path_entry(e)]

        path_conjuncts, pool = self._assign_path_conjuncts(
            conjuncts, path_entries, scope
        )

        current, pool = self._plan_relational(other_entries, pool, scope, width)

        for entry in path_entries:
            current = self._plan_path_entry(
                entry, path_conjuncts[entry.binding.alias.lower()], current,
                scope, width, select,
            )

        if pool:
            current = FilterOp(
                current, ExpressionCompiler(scope).compile(conjoin(pool))
            )
        if current is None:
            current = SingleRowOp(width)

        return self._plan_projection(select, current, scope)

    # ------------------------------------------------------------------
    # FROM handling
    # ------------------------------------------------------------------

    def _flatten_from(self, items: Sequence[ast.FromItem]) -> List[_FromEntry]:
        entries: List[_FromEntry] = []

        def flatten(item: ast.FromItem, kind: str, condition) -> None:
            if isinstance(item, ast.Join):
                flatten(item.left, kind, condition)
                if item.kind == "LEFT":
                    flatten(item.right, "LEFT", item.condition)
                elif item.kind == "CROSS":
                    flatten(item.right, "CROSS", None)
                else:
                    flatten(item.right, "INNER", item.condition)
            else:
                entries.append(_FromEntry(item, kind, condition))

        for item in items:
            flatten(item, "INNER", None)
        if not entries:
            raise PlanningError("FROM clause is empty")
        return entries

    def _build_scope(self, entries: List[_FromEntry]) -> Scope:
        bindings = []
        for slot, entry in enumerate(entries):
            item = entry.item
            if isinstance(item, ast.TableRef):
                table = self._resolve_table(item.name)
                binding = RelationBinding(item.alias, slot, table.schema)
                binding.table = table  # stored for scan construction
                binding.derived_plan = None
            elif isinstance(item, ast.SubquerySource):
                subplan = SelectPlanner(
                    self.catalog, self.options, self.subquery_executor
                ).plan(item.query)
                schema = TableSchema(
                    [
                        Column(name, SqlType.ANY)
                        for name in self._dedupe_column_names(
                            subplan.column_names
                        )
                    ]
                )
                binding = RelationBinding(item.alias, slot, schema)
                binding.table = None
                binding.derived_plan = subplan
            elif isinstance(item, ast.GraphRef):
                view = self.catalog.graph_view(item.graph_name)
                if item.element == ast.GraphRef.VERTEXES:
                    binding = VertexBinding(item.alias, slot, view)
                elif item.element == ast.GraphRef.EDGES:
                    binding = EdgeBinding(item.alias, slot, view)
                else:
                    binding = PathBinding(item.alias, slot, view)
                    if entry.kind == "LEFT":
                        raise PlanningError(
                            "LEFT JOIN onto GV.PATHS is not supported"
                        )
            else:
                raise PlanningError(
                    f"unsupported FROM item {type(item).__name__}"
                )
            entry.binding = binding
            bindings.append(binding)
        return Scope(bindings)

    @staticmethod
    def _dedupe_column_names(names: List[str]) -> List[str]:
        seen: Dict[str, int] = {}
        out: List[str] = []
        for name in names:
            key = name.lower()
            if key in seen:
                seen[key] += 1
                out.append(f"{name}_{seen[key]}")
            else:
                seen[key] = 1
                out.append(name)
        return out

    def _resolve_table(self, name: str) -> Table:
        if self.catalog.has_table(name):
            return self.catalog.table(name)
        if self.catalog.has_view(name):
            return self.catalog.view(name).table
        raise PlanningError(f"unknown table or view: {name}")

    @staticmethod
    def _is_path_entry(entry: _FromEntry) -> bool:
        return isinstance(entry.binding, PathBinding)

    # ------------------------------------------------------------------
    # subqueries (uncorrelated only)
    # ------------------------------------------------------------------

    def _materialize_subqueries(
        self,
        expression: Optional[ast.Expression],
        outer_scope: Optional[Scope] = None,
    ) -> Optional[ast.Expression]:
        """Evaluate uncorrelated subqueries now; rewrite correlated ones
        (when an ``outer_scope`` is supplied) into
        :class:`~repro.sql.ast.CorrelatedSubquery` IR nodes, planned once
        and re-executed per outer row."""
        if expression is None:
            return None

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.InSubquery):
                correlated = self._maybe_correlate(
                    node.subquery, outer_scope, "in", node.operand, node.negated
                )
                if correlated is not None:
                    return correlated
                rows = self._run_subquery(node.subquery)
                return ast.InList(
                    node.operand,
                    [ast.Literal(row[0]) for row in rows],
                    node.negated,
                )
            if isinstance(node, ast.ScalarSubquery):
                correlated = self._maybe_correlate(
                    node.subquery, outer_scope, "scalar", None, False
                )
                if correlated is not None:
                    return correlated
                rows = self._run_subquery(node.subquery)
                if len(rows) > 1:
                    raise ExecutionError(
                        "scalar subquery returned more than one row"
                    )
                value = rows[0][0] if rows else None
                return ast.Literal(value)
            if isinstance(node, ast.ExistsSubquery):
                correlated = self._maybe_correlate(
                    node.subquery, outer_scope, "exists", None, node.negated
                )
                if correlated is not None:
                    return correlated
                rows = self._run_subquery(node.subquery)
                return ast.Literal(bool(rows) != node.negated)
            return None

        return replace_nodes(expression, replacer)

    def _maybe_correlate(
        self,
        subquery: ast.Select,
        outer_scope: Optional[Scope],
        kind: str,
        operand: Optional[ast.Expression],
        negated: bool,
    ) -> Optional[ast.CorrelatedSubquery]:
        """If the subquery references outer aliases, rewrite those
        references to live-value nodes and plan it once."""
        if outer_scope is None:
            return None
        outer_nodes = find_outer_references(subquery, outer_scope)
        if not outer_nodes:
            return None
        outer_ids = {id(n) for n in outer_nodes}
        bindings: List[Tuple[ast.Expression, ast.Parameter]] = []
        replaced = [0]

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.FieldAccess) and id(node) in outer_ids:
                live = ast.Parameter(-(len(bindings) + 1))
                bindings.append((node, live))
                replaced[0] += 1
                return live
            return None

        rewritten = rewrite_select(subquery, replacer)
        if replaced[0] != len(outer_nodes):
            raise PlanningError(
                "correlated references are only supported one subquery "
                "level deep"
            )
        inner_plan = SelectPlanner(
            self.catalog, self.options, self.subquery_executor
        ).plan(rewritten)
        return ast.CorrelatedSubquery(
            kind, inner_plan, bindings, operand=operand, negated=negated
        )

    def _materialize_subqueries_list(
        self,
        conjuncts: List[ast.Expression],
        outer_scope: Optional[Scope] = None,
    ) -> List[ast.Expression]:
        return [
            self._materialize_subqueries(c, outer_scope) for c in conjuncts
        ]

    def _run_subquery(self, subquery: ast.Select) -> List[Tuple[Any, ...]]:
        if self.subquery_executor is None:
            raise PlanningError("subqueries are not enabled in this context")
        try:
            return self.subquery_executor(subquery)
        except PlanningError as error:
            raise PlanningError(
                f"failed to evaluate subquery (note: correlated subqueries "
                f"are not supported): {error}"
            ) from error

    # ------------------------------------------------------------------
    # conjunct assignment
    # ------------------------------------------------------------------

    def _assign_path_conjuncts(
        self,
        conjuncts: List[ast.Expression],
        path_entries: List[_FromEntry],
        scope: Scope,
    ) -> Tuple[Dict[str, List[ast.Expression]], List[ast.Expression]]:
        """Give every conjunct mentioning a path alias to the *last*
        (in from-order) mentioned path — by then all other inputs it
        needs are available in the pipeline."""
        path_order = [e.binding.alias.lower() for e in path_entries]
        assigned: Dict[str, List[ast.Expression]] = {a: [] for a in path_order}
        pool: List[ast.Expression] = []
        for conjunct in conjuncts:
            aliases = referenced_aliases(conjunct, scope)
            mentioned = [a for a in path_order if a in aliases]
            if mentioned:
                assigned[mentioned[-1]].append(conjunct)
            else:
                pool.append(conjunct)
        return assigned, pool

    # ------------------------------------------------------------------
    # relational planning
    # ------------------------------------------------------------------

    def _plan_relational(
        self,
        entries: List[_FromEntry],
        pool: List[ast.Expression],
        scope: Scope,
        width: int,
    ) -> Tuple[Optional[Operator], List[ast.Expression]]:
        current: Optional[Operator] = None
        planned: Set[str] = set()
        remaining = list(pool)
        entries = self._order_entries(entries, pool, scope)
        for entry in entries:
            alias = entry.binding.alias.lower()
            singles = [
                c
                for c in remaining
                if referenced_aliases(c, scope) == {alias}
            ]
            remaining = [c for c in remaining if c not in singles]
            scan = self._plan_source(entry, singles, scope, width)
            if current is None:
                current = scan
                planned.add(alias)
                continue
            if entry.kind == "LEFT":
                predicate = (
                    ExpressionCompiler(scope).compile(entry.on_condition)
                    if entry.on_condition is not None
                    else None
                )
                current = NestedLoopJoinOp(
                    current, scan, predicate, left_outer=True
                )
                planned.add(alias)
                continue
            applicable = []
            for conjunct in remaining:
                aliases = referenced_aliases(conjunct, scope)
                if aliases and aliases <= planned | {alias} and not (
                    aliases <= planned
                ):
                    applicable.append(conjunct)
            remaining = [c for c in remaining if c not in applicable]
            equi_pairs = []
            residual = []
            for conjunct in applicable:
                pair = equi_join_sides(conjunct, scope, planned, {alias})
                if pair is not None:
                    equi_pairs.append(pair)
                else:
                    residual.append(conjunct)
            if equi_pairs:
                compiler = ExpressionCompiler(scope)
                left_keys = [compiler.compile(p[0]) for p in equi_pairs]
                right_keys = [compiler.compile(p[1]) for p in equi_pairs]
                residual_expr = (
                    ExpressionCompiler(scope).compile(conjoin(residual))
                    if residual
                    else None
                )
                current = HashJoinOp(
                    current, scan, left_keys, right_keys, residual_expr
                )
            elif residual:
                current = NestedLoopJoinOp(
                    current,
                    scan,
                    ExpressionCompiler(scope).compile(conjoin(residual)),
                )
            else:
                current = NestedLoopJoinOp(current, scan, None)
            planned.add(alias)
        return current, remaining

    def _order_entries(
        self,
        entries: List[_FromEntry],
        pool: List[ast.Expression],
        scope: Scope,
    ) -> List[_FromEntry]:
        """Greedy cardinality-based join ordering.

        Starts from the smallest estimated (filtered) input, then
        repeatedly appends the cheapest entry that an equi-join predicate
        connects to the already-planned set — cross products are deferred
        to the end. Disabled (FROM order kept) when the query has LEFT
        joins (whose semantics depend on order) or by planner options.
        """
        if not self.options.reorder_joins or len(entries) < 2:
            return list(entries)
        if any(e.kind == "LEFT" for e in entries):
            return list(entries)

        estimates: Dict[int, float] = {}
        for entry in entries:
            alias = entry.binding.alias.lower()
            singles = 0
            equalities = 0
            for conjunct in pool:
                try:
                    aliases = referenced_aliases(conjunct, scope)
                except PlanningError:
                    continue
                if aliases == {alias}:
                    singles += 1
                    if extract_column_equality(conjunct, alias) is not None:
                        equalities += 1
            base = self._base_cardinality(entry)
            estimate = float(max(base, 1))
            estimate *= 0.1 ** equalities
            estimate *= 0.5 ** max(singles - equalities, 0)
            estimates[id(entry)] = max(estimate, 0.001)

        def connected(candidate: _FromEntry, chosen_aliases: Set[str]) -> bool:
            candidate_alias = candidate.binding.alias.lower()
            for conjunct in pool:
                try:
                    aliases = referenced_aliases(conjunct, scope)
                except PlanningError:
                    continue
                if candidate_alias in aliases and aliases - {candidate_alias} and (
                    aliases - {candidate_alias} <= chosen_aliases
                ):
                    return True
            return False

        def has_join_edge(candidate: _FromEntry) -> bool:
            candidate_alias = candidate.binding.alias.lower()
            for conjunct in pool:
                try:
                    aliases = referenced_aliases(conjunct, scope)
                except PlanningError:
                    continue
                if candidate_alias in aliases and len(aliases) > 1:
                    return True
            return False

        ordered: List[_FromEntry] = []
        pending = list(entries)
        pending.sort(key=lambda e: estimates[id(e)])
        # start from the cheapest *joinable* entry so an unconnected
        # table does not force an up-front cross product
        joinable = [e for e in pending if has_join_edge(e)]
        start = joinable[0] if joinable else pending[0]
        pending.remove(start)
        ordered.append(start)
        chosen_aliases = {start.binding.alias.lower()}
        while pending:
            linked = [e for e in pending if connected(e, chosen_aliases)]
            pick_from = linked if linked else pending
            best = min(pick_from, key=lambda e: estimates[id(e)])
            pending.remove(best)
            ordered.append(best)
            chosen_aliases.add(best.binding.alias.lower())
        return ordered

    @staticmethod
    def _base_cardinality(entry: _FromEntry) -> int:
        binding = entry.binding
        if isinstance(binding, RelationBinding):
            if getattr(binding, "derived_plan", None) is not None:
                return 100  # unknown; assume moderate
            return binding.table.row_count
        if isinstance(binding, VertexBinding):
            return binding.view.topology.vertex_count
        if isinstance(binding, EdgeBinding):
            return binding.view.topology.edge_count
        return 1_000_000  # paths are never reordered through here

    def _plan_source(
        self,
        entry: _FromEntry,
        singles: List[ast.Expression],
        scope: Scope,
        width: int,
    ) -> Operator:
        binding = entry.binding
        slot = binding.slot
        if isinstance(binding, RelationBinding):
            if getattr(binding, "derived_plan", None) is not None:
                scan = DerivedTableOp(
                    binding.derived_plan.operator, slot, width, binding.alias
                )
                if singles:
                    scan = FilterOp(
                        scan,
                        ExpressionCompiler(scope).compile(conjoin(singles)),
                    )
                return scan
            table: Table = binding.table
            scan, leftover = self._pick_index_access(
                table, binding.alias, singles, scope, slot, width
            )
            if scan is None:
                scan = SeqScanOp(table, slot, width)
            if leftover:
                scan = FilterOp(
                    scan, ExpressionCompiler(scope).compile(conjoin(leftover))
                )
            return scan
        if isinstance(binding, (VertexBinding, EdgeBinding)):
            # O(1) identifier lookup through the topology hash maps
            # (Section 3.2) instead of scanning all elements
            scan = None
            leftover = list(singles)
            for conjunct in singles:
                match = extract_column_equality(conjunct, binding.alias)
                if match is None or match[0].lower() != "id":
                    continue
                compiled = ExpressionCompiler(scope).compile(match[1])
                if compiled.aliases:
                    continue
                empty_row = [None] * width

                def key_fn(_c=compiled, _row=empty_row):
                    return _c.fn(_row)

                if isinstance(binding, VertexBinding):
                    scan = VertexLookupOp(binding.view, key_fn, slot, width)
                else:
                    scan = EdgeLookupOp(binding.view, key_fn, slot, width)
                leftover = [c for c in singles if c is not conjunct]
                break
            if scan is None:
                if isinstance(binding, VertexBinding):
                    scan = VertexScanOp(binding.view, slot, width)
                else:
                    scan = EdgeScanOp(binding.view, slot, width)
            if leftover:
                scan = FilterOp(
                    scan, ExpressionCompiler(scope).compile(conjoin(leftover))
                )
            return scan
        raise PlanningError("internal: path entries use _plan_path_entry")

    def _pick_index_access(
        self,
        table: Table,
        alias: str,
        singles: List[ast.Expression],
        scope: Scope,
        slot: int,
        width: int,
    ) -> Tuple[Optional[Operator], List[ast.Expression]]:
        """Choose an index access path for a base-table scan.

        Preference order: the index covering the most equality-bound key
        columns (multi-column lookups), then a range scan over an
        ordered index's leading column. Bound expressions must be
        constant or parameterized (no alias references); bounds evaluate
        lazily so prepared statements re-bind correctly.
        """
        empty_row = [None] * width
        # column -> (conjunct, compiled other side), equalities only
        equalities: Dict[str, Tuple[ast.Expression, CompiledExpression]] = {}
        for conjunct in singles:
            match = extract_column_equality(conjunct, alias)
            if match is None:
                continue
            column, other = match
            compiled = ExpressionCompiler(scope).compile(other)
            if compiled.aliases:
                continue
            equalities.setdefault(column.lower(), (conjunct, compiled))

        best_index = None
        for index in table.indexes.values():
            if all(c.lower() in equalities for c in index.key_columns):
                if best_index is None or len(index.key_columns) > len(
                    best_index.key_columns
                ):
                    best_index = index
        if best_index is not None:
            parts = [
                equalities[c.lower()][1] for c in best_index.key_columns
            ]
            consumed = {
                id(equalities[c.lower()][0]) for c in best_index.key_columns
            }
            scan = IndexLookupOp(
                table,
                best_index,
                lambda _parts=parts: tuple(p.fn(empty_row) for p in _parts),
                slot,
                width,
            )
            leftover = [c for c in singles if id(c) not in consumed]
            return scan, leftover

        # range scan: ordered index whose leading column has bounds
        from ..storage.index import OrderedIndex

        for index in table.indexes.values():
            if not isinstance(index, OrderedIndex):
                continue
            leading = index.key_columns[0].lower()
            low = high = None
            low_inclusive = high_inclusive = True
            consumed_range: List[ast.Expression] = []
            for conjunct in singles:
                match = extract_column_comparison(conjunct, alias)
                if match is None or match[0].lower() != leading:
                    continue
                column, op, other = match
                compiled = ExpressionCompiler(scope).compile(other)
                if compiled.aliases:
                    continue
                if op in (">", ">=") and low is None:
                    low = compiled
                    low_inclusive = op == ">="
                    consumed_range.append(conjunct)
                elif op in ("<", "<=") and high is None:
                    high = compiled
                    high_inclusive = op == "<="
                    consumed_range.append(conjunct)
            if low is None and high is None:
                continue
            scan = IndexRangeScanOp(
                table,
                index,
                (lambda _c=low: _c.fn(empty_row)) if low is not None else None,
                (lambda _c=high: _c.fn(empty_row)) if high is not None else None,
                low_inclusive,
                high_inclusive,
                slot,
                width,
            )
            consumed_ids = {id(c) for c in consumed_range}
            leftover = [c for c in singles if id(c) not in consumed_ids]
            return scan, leftover
        return None, list(singles)

    # ------------------------------------------------------------------
    # path planning
    # ------------------------------------------------------------------

    def _plan_path_entry(
        self,
        entry: _FromEntry,
        conjuncts: List[ast.Expression],
        current: Optional[Operator],
        scope: Scope,
        width: int,
        select: ast.Select,
    ) -> Operator:
        binding: PathBinding = entry.binding
        view: GraphView = binding.view
        alias = binding.alias
        hint = entry.item.hint if isinstance(entry.item, ast.GraphRef) else None

        # ---- length inference (Section 6.1) ---------------------------
        if self.options.infer_path_length:
            bounds, consumed = infer_length_bounds(conjuncts, alias)
            conjuncts = [c for c in conjuncts if c not in consumed]
        else:
            bounds = LengthBounds()
        if bounds.maximum is None:
            bounds.maximum = self.options.default_max_path_length
        if bounds.is_empty:
            # contradictory length predicates: the scan yields nothing
            return _EmptyPathOp(current, width)

        # ---- predicate classification (Section 6.2) -------------------
        plan = classify_path_conjuncts(
            conjuncts, alias, view, scope,
            push_filters=self.options.push_path_filters,
        )
        residual_predicate = compile_path_predicate(
            plan.residual_path_conjuncts, alias, view
        )

        # ---- bindings --------------------------------------------------
        # An endpoint binding is "correlated" when it must be evaluated
        # per execution: it references other aliases, or contains ``?``
        # parameters of a prepared statement (re-bound between runs).
        start_compiled = (
            ExpressionCompiler(scope).compile(plan.start_expr)
            if plan.start_expr is not None
            else None
        )
        target_compiled = (
            ExpressionCompiler(scope).compile(plan.target_expr)
            if plan.target_expr is not None
            else None
        )
        start_correlated = start_compiled is not None and (
            bool(start_compiled.aliases) or start_compiled.has_parameters
        )
        target_correlated = target_compiled is not None and (
            bool(target_compiled.aliases) or target_compiled.has_parameters
        )
        constant_row = [None] * width
        constant_start = (
            [start_compiled.fn(constant_row)]
            if start_compiled is not None and not start_correlated
            else None
        )
        constant_target = (
            target_compiled.fn(constant_row)
            if target_compiled is not None and not target_correlated
            else None
        )

        # ---- physical operator selection (Section 6.3) ----------------
        mode, unique, weight_of, per_vertex = self._choose_physical(
            hint, view, bounds, plan, residual_predicate, select,
            has_target=plan.target_expr is not None,
        )

        def build_spec(target_value) -> TraversalSpec:
            return TraversalSpec(
                min_length=bounds.minimum,
                max_length=bounds.maximum,
                edge_filters=plan.edge_filters,
                vertex_filters=plan.vertex_filters,
                sum_bounds=plan.sum_bounds,
                path_predicate=residual_predicate,
                target_vertex_id=target_value,
                unique_vertices=unique,
                target_is_start=plan.cycle_constraint,
            )

        correlated = start_correlated or target_correlated
        if correlated and current is None:
            # parameterized paths-only query: probe off a single empty row
            current = SingleRowOp(width)

        if correlated:
            def start_ids_of(outer_row):
                if start_compiled is None:
                    return constant_start  # may be None (all vertices)
                if start_correlated:
                    return [start_compiled.fn(outer_row)]
                return constant_start

            def spec_factory(outer_row):
                if target_compiled is None:
                    return build_spec(None)
                if target_correlated:
                    return build_spec(target_compiled.fn(outer_row))
                return build_spec(constant_target)

            factory = make_path_probe_factory(
                view,
                binding.slot,
                width,
                mode,
                spec_factory,
                start_ids_of,
                weight_of=weight_of,
                max_paths_per_vertex=per_vertex,
            )
            current = ProbeJoinOp(
                current, factory, label=f"PathScanProbe({view.name}, {mode})"
            )
        else:
            source = PathScanSourceOp(
                view,
                binding.slot,
                width,
                mode,
                lambda: build_spec(constant_target),
                start_ids=constant_start,
                weight_of=weight_of,
                max_paths_per_vertex=per_vertex,
            )
            if current is None:
                current = source
            else:
                current = NestedLoopJoinOp(current, source, None)

        if plan.join_residual_conjuncts:
            current = FilterOp(
                current,
                ExpressionCompiler(scope).compile(
                    conjoin(plan.join_residual_conjuncts)
                ),
            )
        return current

    def _choose_physical(
        self,
        hint: Optional[ast.TraversalHint],
        view: GraphView,
        bounds: LengthBounds,
        plan: PathPredicatePlan,
        residual_predicate,
        select: ast.Select,
        has_target: bool,
    ) -> Tuple[str, bool, Optional[Callable], int]:
        """Returns (mode, unique_vertices, weight_of, max_paths_per_vertex)."""
        if hint is not None and hint.kind == "SHORTESTPATH":
            attribute = hint.weight_attribute
            if not view.has_edge_attribute(attribute):
                raise PlanningError(
                    f"graph view {view.name} has no edge attribute "
                    f"{attribute!r} for SHORTESTPATH"
                )
            weight_of = view.edge_attribute_reader(attribute)
            if select.limit is not None:
                per_vertex = select.limit
                if plan.join_residual_conjuncts or residual_predicate:
                    per_vertex = min(select.limit * 4, 256)
            else:
                per_vertex = 64 if has_target else 1
            return "SP", False, weight_of, per_vertex

        # reachability shortcut: existence query over a filtered subgraph
        shortcut_allowed = (
            self.options.reachability_shortcut
            and select.limit == 1
            and has_target
            and plan.filters_position_independent
            and not plan.sum_bounds
            and residual_predicate is None
            and not plan.join_residual_conjuncts
            and bounds.minimum <= 1
            and (hint is None or hint.kind == "BFS")
        )
        if shortcut_allowed:
            return "BFS", True, None, 1

        if hint is not None:
            return hint.kind, False, None, 1

        mode = choose_traversal(
            view.average_fan_out(), bounds.maximum, self.options.default_traversal
        )
        return mode, False, None, 1

    # ------------------------------------------------------------------
    # projection / aggregation / ordering
    # ------------------------------------------------------------------

    def _plan_projection(
        self, select: ast.Select, current: Operator, scope: Scope
    ) -> PlannedQuery:
        items = self._expand_stars(select.items, scope)
        alias_map = {
            item.alias.lower(): item.expression
            for item in items
            if item.alias is not None
        }

        def resolve_output_alias(expression: ast.Expression) -> ast.Expression:
            # ORDER BY <select alias>
            if (
                isinstance(expression, ast.Identifier)
                and expression.name.lower() in alias_map
            ):
                return alias_map[expression.name.lower()]
            # ORDER BY <ordinal>, 1-based (SQL-92)
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ):
                ordinal = expression.value
                if not 1 <= ordinal <= len(items):
                    raise PlanningError(
                        f"ORDER BY position {ordinal} is out of range "
                        f"(select list has {len(items)} item(s))"
                    )
                return items[ordinal - 1].expression
            return expression

        order_items = [
            ast.OrderItem(resolve_output_alias(o.expression), o.ascending)
            for o in select.order_by
        ]
        having = self._materialize_subqueries(select.having, scope)

        select_expressions = [
            self._materialize_subqueries(item.expression, scope)
            for item in items
        ]
        aggregates: List[ast.FunctionCall] = []
        for expression in select_expressions:
            aggregates.extend(find_relational_aggregates(expression, scope))
        if having is not None:
            aggregates.extend(find_relational_aggregates(having, scope))
        for order_item in order_items:
            aggregates.extend(
                find_relational_aggregates(order_item.expression, scope)
            )
        unique_aggregates: List[ast.FunctionCall] = []
        for aggregate in aggregates:
            if not any(aggregate == seen for seen in unique_aggregates):
                unique_aggregates.append(aggregate)

        if select.group_by or unique_aggregates:
            current, scope = self._plan_aggregation(
                current, scope, select.group_by, unique_aggregates
            )
            rewriter = self._aggregate_rewriter(
                select.group_by, unique_aggregates
            )
            select_expressions = [rewriter(e) for e in select_expressions]
            if having is not None:
                having = rewriter(having)
            order_items = [
                ast.OrderItem(rewriter(o.expression), o.ascending)
                for o in order_items
            ]
        elif having is not None:
            raise PlanningError("HAVING requires GROUP BY or aggregates")

        if having is not None:
            current = FilterOp(
                current, ExpressionCompiler(scope).compile(having)
            )
        if order_items:
            keys = [
                (ExpressionCompiler(scope).compile(o.expression), o.ascending)
                for o in order_items
            ]
            current = SortOp(current, keys)

        compiled_items = [
            ExpressionCompiler(scope).compile(e) for e in select_expressions
        ]
        current = ProjectOp(current, compiled_items)
        if select.distinct:
            current = DistinctOp(current)
        if select.limit is not None or select.offset is not None:
            current = LimitOp(current, select.limit, select.offset)

        names = [
            self._column_name(item, expression)
            for item, expression in zip(items, select_expressions)
        ]
        return PlannedQuery(current, names)

    def _plan_aggregation(
        self,
        current: Operator,
        scope: Scope,
        group_by: List[ast.Expression],
        aggregates: List[ast.FunctionCall],
    ) -> Tuple[Operator, Scope]:
        compiler = ExpressionCompiler(scope)
        group_compiled = [compiler.compile(g) for g in group_by]
        specs = []
        for aggregate in aggregates:
            if len(aggregate.args) == 1 and isinstance(aggregate.args[0], ast.Star):
                specs.append(AggregateSpec(aggregate.name, None, False))
            elif len(aggregate.args) == 1:
                specs.append(
                    AggregateSpec(
                        aggregate.name,
                        ExpressionCompiler(scope).compile(aggregate.args[0]),
                        aggregate.distinct,
                    )
                )
            else:
                raise PlanningError(
                    f"aggregate {aggregate.name} takes exactly one argument"
                )
        current = AggregateOp(current, group_compiled, specs)
        columns = [
            Column(f"__g{i}", SqlType.VARCHAR) for i in range(len(group_by))
        ] + [Column(f"__a{j}", SqlType.VARCHAR) for j in range(len(aggregates))]
        synthetic = Scope(
            [RelationBinding("#aggregated", 0, TableSchema(columns))]
        )
        return current, synthetic

    def _aggregate_rewriter(
        self,
        group_by: List[ast.Expression],
        aggregates: List[ast.FunctionCall],
    ) -> Callable[[ast.Expression], ast.Expression]:
        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            for i, group_expression in enumerate(group_by):
                if node == group_expression:
                    return ast.FieldAccess(
                        "#aggregated", [ast.NameAccessor(f"__g{i}")]
                    )
            for j, aggregate in enumerate(aggregates):
                if node == aggregate:
                    return ast.FieldAccess(
                        "#aggregated", [ast.NameAccessor(f"__a{j}")]
                    )
            return None

        def rewrite(expression: ast.Expression) -> ast.Expression:
            rewritten = replace_nodes(expression, replacer)
            for sub in ast.walk_expression(rewritten):
                if isinstance(sub, ast.Identifier):
                    raise PlanningError(
                        f"column {sub.name!r} must appear in GROUP BY or "
                        "inside an aggregate"
                    )
                if (
                    isinstance(sub, ast.FieldAccess)
                    and sub.base != "#aggregated"
                ):
                    raise PlanningError(
                        f"reference to {sub.base!r} must appear in GROUP BY "
                        "or inside an aggregate"
                    )
            return rewritten

        return rewrite

    # ------------------------------------------------------------------

    def _expand_stars(
        self, items: List[ast.SelectItem], scope: Scope
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expression, ast.Star):
                expanded.append(item)
                continue
            qualifier = item.expression.qualifier
            bindings = (
                [b for b in scope.bindings]
                if qualifier is None
                else [scope.binding(qualifier)]
            )
            if any(b is None for b in bindings):
                raise PlanningError(f"unknown alias in {qualifier}.*")
            for binding in bindings:
                expanded.extend(self._star_items_for(binding))
        return expanded

    @staticmethod
    def _star_items_for(binding) -> List[ast.SelectItem]:
        alias = binding.alias
        if isinstance(binding, RelationBinding):
            return [
                ast.SelectItem(
                    ast.FieldAccess(alias, [ast.NameAccessor(column.name)]),
                    column.name,
                )
                for column in binding.schema.columns
            ]
        if isinstance(binding, VertexBinding):
            names = (
                ["Id"]
                + binding.view.all_vertex_attribute_names()
                + ["FanOut", "FanIn"]
            )
        elif isinstance(binding, EdgeBinding):
            names = ["Id", "From", "To"] + binding.view.all_edge_attribute_names()
        else:  # PathBinding
            names = [
                "PathString",
                "Length",
                "StartVertexId",
                "EndVertexId",
                "Cost",
            ]
        return [
            ast.SelectItem(
                ast.FieldAccess(alias, [ast.NameAccessor(name)]), name
            )
            for name in names
        ]

    @staticmethod
    def _column_name(item: ast.SelectItem, expression: ast.Expression) -> str:
        if item.alias:
            return item.alias
        source = item.expression
        if isinstance(source, ast.FieldAccess):
            last = source.accessors[-1]
            if isinstance(last, ast.NameAccessor):
                return last.name
        if isinstance(source, ast.Identifier):
            return source.name
        if isinstance(source, ast.FunctionCall):
            return source.name
        return "expr"


class _EmptyPathOp(Operator):
    """Produced when length predicates are contradictory: no rows."""

    def __init__(self, child: Optional[Operator], width: int):
        self.child = child
        self.width = width

    def _rows(self):
        return iter(())

    def describe(self) -> str:
        return "EmptyPathScan"
