"""Query planning and optimization (system S4).

Implements the paper's optimizations:

* single-alias predicate pushdown to scans, with index selection;
* equi-join detection (hash join) over the relational part of the query;
* **path-length inference** from explicit (``PS.Length = 2``) and
  implicit (``PS.Edges[5..*].a = v``) predicates (Section 6.1);
* **pushing filters ahead of PathScan** — positional element predicates,
  aggregate bounds, and residual path predicates evaluated inside the
  traversal (Section 6.2);
* **logical → physical PathScan mapping** — DFScan / BFScan by the
  ``F^L`` vs ``F·L`` memory heuristic, SPScan on hint (Section 6.3).
"""

from .options import PlannerOptions
from .select_planner import SelectPlanner, PlannedQuery

__all__ = ["PlannerOptions", "SelectPlanner", "PlannedQuery"]
