"""Planning the PATHS construct: classifying predicates and building
traversal specifications (Sections 5.1.2, 6.2 and 6.3 of the paper).

For one path alias, the planner sorts the conjuncts that mention it into:

* a **start binding** — ``PS.StartVertex.Id = <expr>`` becomes the
  traversal's start-vertex set (probed per outer row when the expression
  references other aliases, Figure 6);
* a **target binding** — ``PS.EndVertex.Id = <expr>`` becomes the
  traversal target (enables early termination);
* **positional filters** — predicates over ``PS.Edges[i..j].attr`` /
  ``PS.Vertexes[i].attr`` / ``PS.StartVertex.attr`` are evaluated while
  extending partial paths;
* **aggregate bounds** — ``SUM(PS.Edges.w) < c`` pruned monotonically;
* **residual path predicates** — anything touching only this path,
  evaluated per candidate path inside the scan;
* **join residuals** — predicates touching the path and other aliases,
  left for the join/filter operators above the scan.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..expr.compile import ExpressionCompiler, compare
from ..expr.scope import (
    PathBinding,
    PathCollectionRef,
    PathElementRef,
    PathEndpointRef,
    PathRangeRef,
    PathScalarRef,
    Scope,
)
from ..errors import PlanningError
from ..graph.graph_view import GraphView
from ..graph.traversal import PositionalFilter, SumBound
from ..sql import ast


class PathPredicatePlan:
    """The outcome of classifying one path alias's conjuncts."""

    def __init__(self):
        self.start_expr: Optional[ast.Expression] = None
        self.target_expr: Optional[ast.Expression] = None
        self.edge_filters: List[PositionalFilter] = []
        self.vertex_filters: List[PositionalFilter] = []
        self.sum_bounds: List[SumBound] = []
        self.residual_path_conjuncts: List[ast.Expression] = []
        self.join_residual_conjuncts: List[ast.Expression] = []
        # ``PS.StartVertexId = PS.EndVertexId`` — only cycles qualify;
        # pushed into the scan so non-closing paths are never built.
        self.cycle_constraint = False
        # True when every pushed edge/vertex filter covers all positions
        # (needed for the reachability global-visited shortcut).
        self.filters_position_independent = True


_ATOMIC_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


def _is_atomic_predicate(node: ast.Expression) -> bool:
    if isinstance(node, ast.BinaryOp):
        return node.op in _ATOMIC_COMPARISONS
    return isinstance(node, (ast.InList, ast.Between, ast.IsNull, ast.Like))


def _classify_path_refs(
    conjunct: ast.Expression, alias: str, scope: Scope
) -> Optional[List[Tuple[ast.FieldAccess, Any]]]:
    """Resolve every reference to ``alias`` inside ``conjunct``.

    Returns ``None`` when some reference fails to resolve (the caller
    treats the conjunct as a residual so the error surfaces at compile
    time with full context).
    """
    lowered = alias.lower()
    refs: List[Tuple[ast.FieldAccess, Any]] = []
    for node in ast.walk_expression(conjunct):
        if isinstance(node, ast.FieldAccess) and node.base.lower() == lowered:
            try:
                refs.append((node, scope.resolve_field_access(node)))
            except PlanningError:
                return None
        elif isinstance(node, ast.Identifier) and node.name.lower() == lowered:
            return None  # whole-path reference: not pushable
    return refs


def _is_endpoint_id_ref(
    node: ast.Expression, alias: str, scope: Scope, which: str
) -> bool:
    if not isinstance(node, ast.FieldAccess):
        return False
    if node.base.lower() != alias.lower():
        return False
    try:
        reference = scope.resolve_field_access(node)
    except PlanningError:
        return False
    if isinstance(reference, PathEndpointRef):
        return reference.which == which and reference.attribute.lower() == "id"
    if isinstance(reference, PathScalarRef):
        return reference.property_name == f"{which}vertexid"
    return False


def _is_cycle_constraint(
    conjunct: ast.Expression, alias: str, scope: Scope
) -> bool:
    """Match ``alias.StartVertexId = alias.EndVertexId`` (either order,
    either spelling)."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return False
    left, right = conjunct.left, conjunct.right
    return (
        _is_endpoint_id_ref(left, alias, scope, "start")
        and _is_endpoint_id_ref(right, alias, scope, "end")
    ) or (
        _is_endpoint_id_ref(left, alias, scope, "end")
        and _is_endpoint_id_ref(right, alias, scope, "start")
    )


def _endpoint_id_binding(
    conjunct: ast.Expression, alias: str, scope: Scope, which: str
) -> Optional[ast.Expression]:
    """Match ``alias.StartVertex.Id = <expr>`` (or EndVertex / the
    StartVertexId shorthand) and return the other side."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None

    lowered = alias.lower()
    for side, other in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if _is_endpoint_id_ref(side, alias, scope, which):
            other_refs = [
                n
                for n in ast.walk_expression(other)
                if (isinstance(n, ast.FieldAccess) and n.base.lower() == lowered)
                or (isinstance(n, ast.Identifier) and n.name.lower() == lowered)
            ]
            if not other_refs:
                return other
    return None


def _try_sum_bound(
    conjunct: ast.Expression, alias: str, scope: Scope, view: GraphView
) -> Optional[SumBound]:
    """Match ``SUM(alias.Edges.attr) OP numeric-literal`` either way."""
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = conjunct.op
    if op not in ("<", "<=", ">", ">=", "=", "<>"):
        return None

    def match_sum(node: ast.Expression) -> Optional[str]:
        if not (
            isinstance(node, ast.FunctionCall)
            and node.name == "SUM"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.FieldAccess)
            and node.args[0].base.lower() == alias.lower()
        ):
            return None
        try:
            reference = scope.resolve_field_access(node.args[0])
        except PlanningError:
            return None
        if isinstance(reference, PathCollectionRef) and reference.collection == "edges":
            return reference.attribute
        return None

    def literal_number(node: ast.Expression) -> Optional[float]:
        if isinstance(node, ast.Literal) and isinstance(node.value, (int, float)):
            return float(node.value)
        if (
            isinstance(node, ast.UnaryOp)
            and node.op == "-"
            and isinstance(node.operand, ast.Literal)
            and isinstance(node.operand.value, (int, float))
        ):
            return -float(node.operand.value)
        return None

    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    attribute = match_sum(conjunct.left)
    bound = literal_number(conjunct.right)
    if attribute is None:
        attribute = match_sum(conjunct.right)
        bound = literal_number(conjunct.left)
        op = flip[op]
    if attribute is None or bound is None:
        return None
    return SumBound(view.edge_attribute_reader(attribute), op, bound)


def _compile_positional_filter(
    conjunct: ast.Expression,
    alias: str,
    view: GraphView,
    element_node: ast.FieldAccess,
    reference,
) -> Tuple[str, PositionalFilter]:
    """Lower a single-element-reference conjunct into a per-element
    predicate evaluated during traversal."""
    if isinstance(reference, PathElementRef):
        collection = reference.collection
        start, end = reference.index, reference.index
        attribute = reference.attribute
    else:  # PathRangeRef
        collection = reference.collection
        start, end = reference.start, reference.end
        attribute = reference.attribute
    use_edges = collection == "edges"
    read = (
        view.edge_attribute_reader(attribute)
        if use_edges
        else view.vertex_attribute_reader(attribute)
    )
    fast = _specialize_element_predicate(conjunct, element_node, read)
    if fast is not None:
        return collection, PositionalFilter(start, end, fast)
    cell: List[Any] = [None]
    overrides = {id(element_node): (lambda row: cell[0])}
    mini_scope = Scope([PathBinding(alias, 0, view)])
    compiled = ExpressionCompiler(mini_scope, overrides).compile(conjunct)
    empty_row = [None]
    fn = compiled.fn

    def predicate(element) -> bool:
        cell[0] = read(element)
        return fn(empty_row) is True

    return collection, PositionalFilter(start, end, predicate)


_FAST_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _specialize_element_predicate(
    conjunct: ast.Expression,
    element_node: ast.FieldAccess,
    read: Callable,
) -> Optional[Callable]:
    """Fast path for ``element.attr OP literal`` filters.

    These dominate the paper's workloads (selectivity predicates, label
    filters), so per-edge cost matters: the specialized closure is one
    attribute read plus one comparison, with SQL NULL semantics (NULL
    never qualifies).
    """
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _FAST_COMPARATORS:
        op_name = conjunct.op
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
        if conjunct.left is element_node:
            other = conjunct.right
        elif conjunct.right is element_node:
            other = conjunct.left
            op_name = flipped[conjunct.op]
        else:
            return None
        compare_fn = _FAST_COMPARATORS[op_name]
        if isinstance(other, ast.Literal):
            bound = other.value
            if bound is None:
                return lambda element: False

            def fast_literal(element) -> bool:
                value = read(element)
                if value is None:
                    return False
                try:
                    return compare_fn(value, bound)
                except TypeError:
                    # mixed types (e.g. timestamp int vs. date string):
                    # fall back to the engine's affinity comparison
                    return compare(op_name, value, bound) is True

            return fast_literal
        if isinstance(other, ast.Parameter):
            parameter = other

            def fast_parameter(element) -> bool:
                bound = parameter.value
                value = read(element)
                if value is None or bound is None:
                    return False
                try:
                    return compare_fn(value, bound)
                except TypeError:
                    return compare(op_name, value, bound) is True

            return fast_parameter
    if isinstance(conjunct, ast.InList) and conjunct.operand is element_node:
        if all(isinstance(item, ast.Literal) for item in conjunct.items):
            values = {
                item.value for item in conjunct.items if item.value is not None
            }
            negated = conjunct.negated

            def fast_in(element) -> bool:
                value = read(element)
                if value is None:
                    return False
                return (value not in values) if negated else (value in values)

            return fast_in
    return None


def _compile_start_vertex_filter(
    conjunct: ast.Expression,
    alias: str,
    view: GraphView,
    endpoint_nodes: List[Tuple[ast.FieldAccess, PathEndpointRef]],
) -> PositionalFilter:
    """Lower a conjunct over ``PS.StartVertex.attr`` references into a
    position-0 vertex filter."""
    cell: List[Any] = [None]
    overrides: Dict[int, Callable] = {}
    for node, reference in endpoint_nodes:
        reader = view.vertex_attribute_reader(reference.attribute)
        overrides[id(node)] = (
            lambda row, _read=reader: _read(cell[0])
        )
    mini_scope = Scope([PathBinding(alias, 0, view)])
    compiled = ExpressionCompiler(mini_scope, overrides).compile(conjunct)
    empty_row = [None]

    def predicate(vertex) -> bool:
        cell[0] = vertex
        return compiled.fn(empty_row) is True

    return PositionalFilter(0, 0, predicate)


def classify_path_conjuncts(
    conjuncts: List[ast.Expression],
    alias: str,
    view: GraphView,
    scope: Scope,
    push_filters: bool = True,
) -> PathPredicatePlan:
    """Sort a path alias's conjuncts into the traversal-spec buckets.

    ``conjuncts`` must each reference the alias; conjuncts referencing
    additional aliases (beyond the start/target bindings) become join
    residuals.
    """
    plan = PathPredicatePlan()
    lowered = alias.lower()
    for conjunct in conjuncts:
        try:
            aliases = ExpressionCompiler(scope).compile(conjunct).aliases
        except PlanningError:
            aliases = None
        if not plan.cycle_constraint and _is_cycle_constraint(
            conjunct, alias, scope
        ):
            plan.cycle_constraint = True
            continue
        # ---- endpoint bindings are recognized in any alias mix --------
        if plan.start_expr is None:
            other = _endpoint_id_binding(conjunct, alias, scope, "start")
            if other is not None:
                plan.start_expr = other
                continue
        if plan.target_expr is None:
            other = _endpoint_id_binding(conjunct, alias, scope, "end")
            if other is not None:
                plan.target_expr = other
                continue
        if aliases is None or aliases != {lowered}:
            plan.join_residual_conjuncts.append(conjunct)
            continue
        if not push_filters:
            plan.residual_path_conjuncts.append(conjunct)
            continue
        # ---- aggregate bound ------------------------------------------
        sum_bound = _try_sum_bound(conjunct, alias, scope, view)
        if sum_bound is not None:
            plan.sum_bounds.append(sum_bound)
            continue
        # ---- positional / start-vertex filters -------------------------
        refs = _classify_path_refs(conjunct, alias, scope)
        if refs is None:
            plan.residual_path_conjuncts.append(conjunct)
            continue
        element_refs = [
            (node, ref)
            for node, ref in refs
            if isinstance(ref, (PathElementRef, PathRangeRef))
        ]
        # Per-element pushdown is only sound for a *top-level atomic*
        # predicate: wrapping (NOT ...) or disjunction would change the
        # quantifier scope — e.g. NOT (Edges[0..*].t = 'a') means "some
        # edge differs", not "every edge differs". Non-atomic conjuncts
        # stay residual, where the compiler's quantified expansion
        # applies the correct semantics.
        if element_refs and not _is_atomic_predicate(conjunct):
            plan.residual_path_conjuncts.append(conjunct)
            continue
        endpoint_refs = [
            (node, ref)
            for node, ref in refs
            if isinstance(ref, PathEndpointRef)
        ]
        other_refs = [
            ref
            for _node, ref in refs
            if not isinstance(ref, (PathElementRef, PathRangeRef, PathEndpointRef))
        ]
        if len(element_refs) == 1 and not endpoint_refs and not other_refs:
            node, reference = element_refs[0]
            collection, filt = _compile_positional_filter(
                conjunct, alias, view, node, reference
            )
            if collection == "edges":
                plan.edge_filters.append(filt)
            else:
                plan.vertex_filters.append(filt)
            if not (filt.start == 0 and filt.end is None):
                plan.filters_position_independent = False
            continue
        if (
            endpoint_refs
            and not element_refs
            and not other_refs
            and all(ref.which == "start" for _n, ref in endpoint_refs)
        ):
            plan.vertex_filters.append(
                _compile_start_vertex_filter(conjunct, alias, view, endpoint_refs)
            )
            continue
        plan.residual_path_conjuncts.append(conjunct)
    return plan


def compile_path_predicate(
    conjuncts: List[ast.Expression], alias: str, view: GraphView
) -> Optional[Callable]:
    """Compile residual path-only conjuncts into one ``Path -> bool``."""
    if not conjuncts:
        return None
    mini_scope = Scope([PathBinding(alias, 0, view)])
    compiled = [ExpressionCompiler(mini_scope).compile(c) for c in conjuncts]

    def predicate(path) -> bool:
        row = [path]
        return all(c.fn(row) is True for c in compiled)

    return predicate
