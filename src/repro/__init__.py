"""repro — a reproduction of GRFusion (EDBT 2018).

*Extending In-Memory Relational Database Engines with Native Graph
Support*, Hassan, Kuznetsova, Jeong, Aref, Sadoghi.

The package is a self-contained in-memory relational database engine
(a VoltDB-like substrate built from scratch) whose SQL dialect and query
engine are extended with the paper's contribution: **graph views** as
first-class database objects, the **PATHS** query construct, and graph
traversal operators that compose with relational operators in a single
cross-data-model query execution pipeline.

Quick start::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE V (id INTEGER PRIMARY KEY, name VARCHAR)")
    db.execute("CREATE TABLE E (id INTEGER PRIMARY KEY, "
               "src INTEGER, dst INTEGER, w FLOAT)")
    ...
    db.execute("CREATE DIRECTED GRAPH VIEW G "
               "VERTEXES(ID = id, name = name) FROM V "
               "EDGES(ID = id, FROM = src, TO = dst, w = w) FROM E")
    result = db.execute(
        "SELECT PS.PathString FROM G.Paths PS "
        "WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 9 LIMIT 1")

Sub-packages: :mod:`repro.core` (façade), :mod:`repro.storage`,
:mod:`repro.sql`, :mod:`repro.expr`, :mod:`repro.planner`,
:mod:`repro.executor`, :mod:`repro.txn`, :mod:`repro.graph` (the
contribution), :mod:`repro.baselines` (SQLGraph / Grail / graph-DB
comparators), :mod:`repro.datasets`, :mod:`repro.bench`.
"""

from .budget import CancellationToken, QueryBudget
from .core.database import Database, PreparedQuery
from .core.result import ResultSet
from .errors import (
    CatalogError,
    ConstraintViolation,
    DatabaseError,
    DivergenceError,
    ExecutionError,
    FencedError,
    GraphViewError,
    IntegrityError,
    PlanningError,
    QueryCancelledError,
    QueryTimeoutError,
    ReadOnlyError,
    RecoveryError,
    ReplicationError,
    ResourceExhaustedError,
    SqlSyntaxError,
    TransactionError,
    TypeMismatchError,
)
from .observability import (
    MetricsRegistry,
    QueryTracer,
    SlowQueryLog,
    get_registry,
)
from .planner.options import PlannerOptions
from .types import SqlType

__version__ = "1.0.0"

__all__ = [
    "Database",
    "PreparedQuery",
    "ResultSet",
    "PlannerOptions",
    "QueryBudget",
    "CancellationToken",
    "MetricsRegistry",
    "QueryTracer",
    "SlowQueryLog",
    "get_registry",
    "SqlType",
    "DatabaseError",
    "SqlSyntaxError",
    "CatalogError",
    "PlanningError",
    "ExecutionError",
    "ResourceExhaustedError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "RecoveryError",
    "ReadOnlyError",
    "ReplicationError",
    "FencedError",
    "DivergenceError",
    "TypeMismatchError",
    "ConstraintViolation",
    "IntegrityError",
    "TransactionError",
    "GraphViewError",
    "__version__",
]
