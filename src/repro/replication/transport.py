"""In-memory transport between replication peers.

A :class:`Channel` is one direction of a link (primary → replica or
replica → primary): an ordered queue with an optional
:class:`~repro.replication.fault_injection.FaultInjector` deciding, per
message, whether to drop, corrupt, duplicate, delay or reorder it. The
cluster is pumped cooperatively (single process, deterministic), which
is what lets the chaos suite replay a failure from a seed; the protocol
on top is written exactly as if the channel were a real, unreliable
datagram link — nothing assumes reliable or ordered delivery.

Every message carries the sender's ``epoch``; receivers discard
messages from a staler epoch than they have seen. That is the
split-brain fence: a deposed primary's traffic is ignored no matter
when it arrives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .fault_injection import FaultInjector

#: Message kinds (documentation; the protocol dispatches on the string).
KINDS = (
    "ship",  # one framed log record: primary -> replica
    "heartbeat",  # primary liveness + its log head position
    "digest",  # primary's state digest at a log position
    "ack",  # replica's applied position (doubles as its heartbeat)
    "bootstrap_request",  # replica asks for a fresh snapshot
    "bootstrap",  # primary's snapshot document + position
)


class Message:
    """One protocol message: ``kind``, sender ``epoch``, payload dict."""

    __slots__ = ("kind", "epoch", "data")

    def __init__(self, kind: str, epoch: int, data: Optional[Dict[str, Any]] = None):
        self.kind = kind
        self.epoch = epoch
        self.data = data if data is not None else {}

    def copy(self) -> "Message":
        return Message(self.kind, self.epoch, dict(self.data))

    def __repr__(self) -> str:
        return f"Message({self.kind}, e{self.epoch}, {self.data!r})"


class Channel:
    """One direction of a replication link, with injectable faults."""

    def __init__(self, injector: Optional[FaultInjector] = None):
        self.injector = injector
        self._queue: List[Message] = []
        #: ``[remaining_deliveries, message]`` pairs held back by delay.
        self._delayed: List[List[Any]] = []
        self.sent = 0
        self.delivered = 0

    def send(self, message: Message) -> None:
        self.sent += 1
        injector = self.injector
        if injector is None:
            self._queue.append(message)
            return
        if injector.roll("drop"):
            return
        if injector.roll("corrupt"):
            message = _corrupted(message, injector)
        copies = 2 if injector.roll("duplicate") else 1
        for _ in range(copies):
            if injector.roll("delay"):
                self._delayed.append([injector.delay_ticks(), message])
            elif injector.roll("reorder") and self._queue:
                position = injector.random.randrange(len(self._queue))
                self._queue.insert(position, message)
            else:
                self._queue.append(message)

    def receive_all(self) -> List[Message]:
        """Drain deliverable messages (advances delay timers)."""
        still_delayed: List[List[Any]] = []
        for entry in self._delayed:
            entry[0] -= 1
            if entry[0] <= 0:
                self._queue.append(entry[1])
            else:
                still_delayed.append(entry)
        self._delayed = still_delayed
        batch, self._queue = self._queue, []
        self.delivered += len(batch)
        return batch

    @property
    def pending(self) -> int:
        return len(self._queue) + len(self._delayed)

    def __repr__(self) -> str:
        return f"Channel(pending={self.pending}, sent={self.sent})"


def _corrupted(message: Message, injector: FaultInjector) -> Message:
    """A bit-flipped copy. Only a ship's statement text is mutated (its
    checksum is left stale so the receiver's verification must catch
    it); other kinds are sacrificed whole — a mangled heartbeat is just
    a missed heartbeat."""
    if message.kind == "ship":
        copy = message.copy()
        copy.data["sql"] = injector.corrupt_text(copy.data["sql"])
        return copy
    copy = message.copy()
    copy.data["_corrupted"] = True
    return copy
