"""One fault-tolerant cluster process: server + replication + failover.

A :class:`ClusterNode` is the runtime that makes failover real between
networked processes. It glues together the pieces the earlier layers
built — the client-facing :class:`~repro.server.server.Server`, the
:class:`~repro.replication.primary.Primary` /
:class:`~repro.replication.replica.Replica` roles, and the TCP
replication transport (:mod:`repro.replication.tcp`) — into a single
process that:

* **pumps** the replication protocol on a wall-clock loop (heartbeats,
  ships, acks, digests, bootstraps all flow over one socket per peer);
* **detects primary failure** by heartbeat silence and runs a quorum
  election: the node polls its peers' ``CLUSTER_STATE`` over the client
  port; the most-caught-up reachable replica (highest
  ``(applied_sequence, name)``) promotes itself into a new epoch, and
  only with answers from a majority of the configured cluster — two
  replicas that cannot see each other can never both promote;
* **fences deposed primaries**: a primary that discovers a peer at a
  higher epoch fences itself, discards its (by definition never
  acknowledged) unreplicated tail, and rejoins as a replica of the new
  primary — its server answers writes with ``NOT_PRIMARY`` plus a
  ``leader_hint`` the whole time;
* **withholds write acknowledgements** until the semi-sync barrier is
  met: a write returns to the client only once ``ack_replicas``
  replicas have *applied* it, so an acknowledged write survives losing
  the primary to ``kill -9``.

Durable role marker: when a node becomes primary it records the epoch
in ``<name>.primary-epoch``. A restarted ex-primary finds the marker,
and if the cluster has moved to a newer primary it wipes its local
state (which may contain an unreplicated — hence unacknowledged — tail)
and re-bootstraps, exactly like the in-process manager's deposed-rejoin
path. Divergence that slips past this (or corruption) is still caught
by the shipped digests, which quarantine and re-bootstrap the replica.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError, ReplicationError
from ..observability import events as events_module
from ..observability.http import ObservabilityHttpServer
from ..observability.metrics import recording_registry
from ..server import protocol
from ..server.server import Server
from .primary import Primary
from .replica import Replica
from .tcp import ReplicationListener, TcpLink, connect_replica


class PeerSpec:
    """One cluster member's addresses: client port + replication port."""

    __slots__ = ("name", "host", "client_port", "repl_port")

    def __init__(self, name: str, host: str, client_port: int, repl_port: int):
        self.name = name
        self.host = host
        self.client_port = client_port
        self.repl_port = repl_port

    def hint(self) -> Dict[str, Any]:
        return {"node": self.name, "host": self.host, "port": self.client_port}

    def __repr__(self) -> str:
        return (
            f"PeerSpec({self.name}, {self.host}:"
            f"{self.client_port}/{self.repl_port})"
        )


def parse_peers(spec: str) -> Dict[str, PeerSpec]:
    """Parse ``n1=host:cport:rport,n2=...`` into peer specs (the
    ``--peers`` command-line syntax)."""
    peers: Dict[str, PeerSpec] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            name, address = part.split("=", 1)
            host, client_port, repl_port = address.rsplit(":", 2)
            peers[name.strip()] = PeerSpec(
                name.strip(), host or "127.0.0.1",
                int(client_port), int(repl_port),
            )
        except ValueError:
            raise ReplicationError(
                f"bad peer spec {part!r}: expected NAME=HOST:CPORT:RPORT"
            )
    return peers


def probe_state(
    host: str,
    port: int,
    auth: Optional[str] = None,
    timeout: float = 0.5,
) -> Optional[Dict[str, Any]]:
    """One-shot CLUSTER_STATE poll of a peer's client port.

    Returns the state dict, or None when the peer is unreachable (dead,
    partitioned, or not answering within the timeout) — elections treat
    the two identically, which is the only honest option over a network.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError:
        return None
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(timeout)
        hello: Dict[str, Any] = {
            "type": "HELLO", "protocol": protocol.PROTOCOL_VERSION,
        }
        if auth is not None:
            hello["auth"] = auth
        protocol.send_frame(sock, hello)
        reply = protocol.read_frame(sock)
        if reply is None or reply.get("type") != "HELLO_OK":
            return None
        protocol.send_frame(sock, {"type": "CLUSTER_STATE", "id": 1})
        state = protocol.read_frame(sock)
        if state is None or state.get("type") != "CLUSTER_STATE":
            return None
        return state
    except (OSError, ProtocolError):
        return None
    finally:
        try:
            sock.close()
        except OSError:
            pass


class ClusterNode:
    """One process of an N-node cluster: server, role, and failover.

    ::

        peers = parse_peers("n1=127.0.0.1:7070:7170,"
                            "n2=127.0.0.1:7071:7171,"
                            "n3=127.0.0.1:7072:7172")
        node = ClusterNode("n1", peers, data_dir="/var/lib/repro/n1",
                           initial_primary="n1").start()

    Every node starts by *recovering as a replica* from its data
    directory (the standalone recovery path), then the designated
    ``initial_primary`` promotes itself if no live primary exists.
    Restarted nodes always come back as replicas and find the current
    primary by polling peers — whoever the configuration once named is
    irrelevant after the first failover.
    """

    def __init__(
        self,
        name: str,
        peers: Dict[str, PeerSpec],
        data_dir: str,
        initial_primary: Optional[str] = None,
        heartbeat_timeout: float = 2.0,
        pump_interval: float = 0.05,
        ack_replicas: int = 1,
        ack_timeout: float = 5.0,
        auth_token: Optional[str] = None,
        sync: str = "commit",
        probe_timeout: float = 0.5,
        max_queue: int = 64,
        http_port: Optional[int] = None,
    ):
        if name not in peers:
            raise ReplicationError(f"node {name!r} is not in the peer map")
        self.name = name
        self.peers = peers
        self.spec = peers[name]
        self.data_dir = str(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.initial_primary = initial_primary
        self.heartbeat_timeout = heartbeat_timeout
        self.pump_interval = pump_interval
        self.ack_replicas = ack_replicas
        self.ack_timeout = ack_timeout
        self.auth_token = auth_token
        self.sync = sync
        self.probe_timeout = probe_timeout
        #: Role state — guarded by ``_lock``.
        self.role = "replica"
        self.replica: Optional[Replica] = None
        self.primary: Optional[Primary] = None
        self._primary_name: Optional[str] = None  # believed current leader
        self._lock = threading.RLock()
        self._ack_cond = threading.Condition()
        self._stop = threading.Event()
        self._partitioned = False
        self._tick = 0
        self._listener: Optional[ReplicationListener] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._pump_thread: Optional[threading.Thread] = None
        self._links: Dict[str, TcpLink] = {}  # primary side, by replica name
        self._replica_link: Optional[TcpLink] = None  # replica side
        self._last_primary_contact = time.monotonic()
        self._last_primary_tick_seen = -1
        self._next_election = 0.0
        self._next_dial = 0.0
        self._next_peer_poll = 0.0
        #: Latest CLUSTER_STATE seen per peer (for ``\\cluster status``).
        self.peer_states: Dict[str, Dict[str, Any]] = {}
        #: ``(wall_time, old_epoch, new_epoch, kind)`` per role change.
        self.transitions: List[tuple] = []
        # recover local state (standalone recovery path)
        self.replica = Replica(self.name, self.data_dir, sync=self.sync)
        self.server = Server(
            self.replica.db,
            host=self.spec.host,
            port=self.spec.client_port,
            auth_token=auth_token,
            max_queue=max_queue,
            cluster=self,
        )
        self._marker_path = os.path.join(
            self.data_dir, f"{self.name}.primary-epoch"
        )
        #: Optional per-node HTTP observability endpoint (``--http-port``):
        #: /metrics, /health, /events, /traces without a db connection.
        self.http_port = http_port
        self.http: Optional[ObservabilityHttpServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        with self._lock:
            if self.primary is not None:
                return self.primary.epoch
            if self.replica is not None:
                return max(self.replica.epoch, self.replica.applied_epoch)
            return 0

    @property
    def db(self):
        with self._lock:
            if self.primary is not None:
                return self.primary.db
            return self.replica.db if self.replica is not None else None

    def start(self) -> "ClusterNode":
        self.server.start()
        if self.http_port is not None:
            self.http = ObservabilityHttpServer(
                host=self.spec.host,
                port=self.http_port,
                health_provider=self._http_health,
                node_name=self.name,
            ).start()
        winner = self._find_live_primary(self._poll_peers())
        if winner is not None:
            # the cluster already has a leader (we are a restarted or
            # late-joining node): follow it, whatever the config says
            self._adopt_primary(winner["node"])
        elif self.initial_primary == self.name and self._read_marker() is None:
            # first boot of the designated primary. A *restarted*
            # ex-primary (marker present) must never shortcut back to
            # the throne — the cluster may be mid-election at a higher
            # epoch; it joins the election like any other replica.
            with self._lock:
                self._promote_locked(max(1, self.epoch + 1))
        elif self.initial_primary is not None:
            self._primary_name = self.initial_primary
        self._pump_thread = threading.Thread(
            target=self._pump_loop, name=f"repro-node-{self.name}", daemon=True
        )
        self._pump_thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Graceful stop: drain the server, close replication, fsync."""
        self._shutdown(drain=drain, timeout=timeout, final_sync=True)

    def kill(self) -> None:
        """Simulate ``kill -9``: no drain, no goodbye, no final sync —
        in-flight clients see their sockets die mid-request."""
        self._shutdown(drain=False, timeout=2.0, final_sync=False)

    def _http_health(self) -> Dict[str, Any]:
        message = self.server._health_message()
        message.pop("type", None)
        message.pop("id", None)
        return message

    def _shutdown(self, drain: bool, timeout: float, final_sync: bool) -> None:
        self._stop.set()
        if self.http is not None:
            self.http.stop()
            self.http = None
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=timeout)
            self._pump_thread = None
        self._close_replication()
        with self._ack_cond:
            self._ack_cond.notify_all()
        self.server.shutdown(drain=drain, timeout=timeout)
        with self._lock:
            if self.replica is not None:
                try:
                    self.replica._writer.close()
                except OSError:
                    pass
            if final_sync and self.primary is not None:
                try:
                    self.primary.log.sync_now()
                except OSError:
                    pass

    def _close_replication(self) -> None:
        with self._lock:
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            for link in self._links.values():
                link.close()
            self._links.clear()
            if self._replica_link is not None:
                self._replica_link.close()
                self._replica_link = None

    # ------------------------------------------------------------------
    # partition injection (for the cluster chaos matrix)
    # ------------------------------------------------------------------

    def set_partitioned(self, flag: bool) -> None:
        """Drop this node's replication links and peer visibility (both
        directions), leaving its client port up — the shape of a real
        network partition, where clients on the node's side still reach
        it but the cluster does not."""
        self._partitioned = flag
        if flag:
            with self._lock:
                for link in self._links.values():
                    link.close()
                self._links.clear()
                if self._replica_link is not None:
                    self._replica_link.close()
                    self._replica_link = None
                if self.replica is not None:
                    self.replica.inbound = None
                    self.replica.outbound = None

    # ------------------------------------------------------------------
    # the cluster hook the Server calls
    # ------------------------------------------------------------------

    def is_primary(self) -> bool:
        with self._lock:
            return (
                self.role == "primary"
                and self.primary is not None
                and not self.primary.fenced
            )

    def leader_hint(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            leader = self.name if self.is_primary() else self._primary_name
        spec = self.peers.get(leader) if leader else None
        return spec.hint() if spec is not None else None

    def required_acks(self) -> int:
        return min(self.ack_replicas, max(0, len(self.peers) - 1))

    def after_write(self) -> None:
        """The semi-sync barrier: block until ``ack_replicas`` replicas
        have applied up to the primary's current log head.

        Every failure raised here is a :class:`ReplicationError`, never
        ``NOT_PRIMARY``: the statement already executed locally, so its
        outcome across a concurrent failover is genuinely unknown (the
        record may or may not have reached the next primary) and the
        client must not auto-retry. ``NOT_PRIMARY`` stays reserved for
        the pre-execution gate, where retrying is provably safe."""
        needed = self.required_acks()
        if needed == 0:
            return
        with self._lock:
            primary = self.primary if self.role == "primary" else None
            if primary is None or primary.fenced:
                raise ReplicationError(
                    f"{self.name} was deposed while the write was in "
                    "flight; its outcome is unknown (it was never "
                    "acknowledged)"
                )
            target = primary.log.last_sequence
        deadline = time.monotonic() + self.ack_timeout
        with self._ack_cond:
            while True:
                acked = sum(
                    1
                    for link in list(primary.links.values())
                    if link.acked_sequence >= target
                )
                if acked >= needed:
                    return
                if self._stop.is_set():
                    raise ReplicationError(
                        f"{self.name} is shutting down before the write "
                        "replicated; its outcome is unknown"
                    )
                if primary.fenced or self.primary is not primary:
                    raise ReplicationError(
                        f"{self.name} was deposed while the write was in "
                        "flight; its outcome is unknown (it was never "
                        "acknowledged)"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ReplicationError(
                        f"write (sequence {target}) not acknowledged by "
                        f"{needed} replica(s) within {self.ack_timeout}s; "
                        "its outcome is unknown (it was never acknowledged)"
                    )
                self._ack_cond.wait(min(remaining, 0.1))

    def replication_status(self) -> Dict[str, Any]:
        """The HEALTH message's replication section: role, epoch, and
        apply lag, so replica staleness is operator-visible."""
        with self._lock:
            if self.primary is not None:
                head = self.primary.log.last_sequence
                return {
                    "role": "primary",
                    "node": self.name,
                    "epoch": self.primary.epoch,
                    "sequence": head,
                    "lag": 0,
                    "fenced": self.primary.fenced,
                    "leader": self.name,
                    "replicas": {
                        name: max(0, head - link.acked_sequence)
                        for name, link in self.primary.links.items()
                    },
                }
            replica = self.replica
            return {
                "role": "replica",
                "node": self.name,
                "epoch": self.epoch,
                "sequence": replica.applied_sequence if replica else 0,
                "lag": replica.lag if replica else None,
                "quarantined": bool(replica and replica.quarantined),
                "leader": self._primary_name,
                "connected": bool(
                    self._replica_link is not None
                    and not self._replica_link.closed
                ),
            }

    def state_message(self) -> Dict[str, Any]:
        """The CLUSTER_STATE payload: this node plus its last known
        view of its peers (which may be stale — every row carries the
        poll age so operators can tell)."""
        status = self.replication_status()
        db = self.db
        message: Dict[str, Any] = {
            "node": self.name,
            "role": status["role"],
            "epoch": status["epoch"],
            "sequence": status["sequence"],
            "lag": status.get("lag"),
            "fenced": status.get("fenced", False),
            "quarantined": status.get("quarantined", False),
            "health": db.health.state if db is not None else "unknown",
            "leader": self.leader_hint(),
            "peers": [
                dict(state, node=name)
                for name, state in sorted(self.peer_states.items())
            ],
        }
        return message

    # ------------------------------------------------------------------
    # the pump loop: replication, failure detection, elections
    # ------------------------------------------------------------------

    def _pump_loop(self) -> None:
        while not self._stop.wait(self.pump_interval):
            try:
                self._tick += 1
                with self._lock:
                    primary = self.primary
                    replica = self.replica if self.role == "replica" else None
                if primary is not None and self.role == "primary":
                    primary.pump(self._tick)
                    with self._ack_cond:
                        self._ack_cond.notify_all()
                    self._primary_duties()
                elif replica is not None:
                    replica.pump(self._tick)
                    if replica.last_primary_tick != self._last_primary_tick_seen:
                        self._last_primary_tick_seen = replica.last_primary_tick
                        self._last_primary_contact = time.monotonic()
                    self._replica_duties(replica)
                # gauges refresh every tick, not only when a write moves
                # the stream, so scraped lag stays live while idle
                self._refresh_replication_gauges(primary, replica)
            except Exception:
                # the pump must never die silently mid-cluster; one bad
                # iteration (a racing teardown, a closing socket) is
                # dropped and the next tick starts clean
                if self._stop.is_set():
                    return

    def _refresh_replication_gauges(self, primary, replica) -> None:
        """Mirror replication progress into the metrics registry from
        the pump loop (same names :class:`ReplicationManager` sets), so
        ``/metrics`` shows live lag even between writes."""
        registry = recording_registry()
        if registry is None:
            return
        if primary is not None and self.role == "primary":
            head = primary.log.last_sequence
            registry.gauge(
                "repro_replication_shipped_sequence",
                help="The primary's command-log head (last shipped sequence).",
            ).set(head)
            for name, link in list(primary.links.items()):
                registry.gauge(
                    "repro_replication_acked_sequence",
                    help="Highest acknowledged sequence, per replica.",
                    replica=name,
                ).set(link.acked_sequence)
                registry.gauge(
                    "repro_replication_lag",
                    help="Statements shipped but not yet acknowledged, "
                    "per replica.",
                    replica=name,
                ).set(max(0, head - link.acked_sequence))
        elif replica is not None:
            registry.gauge(
                "repro_replication_acked_sequence",
                help="Highest acknowledged sequence, per replica.",
                replica=self.name,
            ).set(replica.applied_sequence)
            registry.gauge(
                "repro_replication_lag",
                help="Statements shipped but not yet acknowledged, "
                "per replica.",
                replica=self.name,
            ).set(replica.lag)

    # -- primary-side duties -------------------------------------------

    def _primary_duties(self) -> None:
        now = time.monotonic()
        if now < self._next_peer_poll or self._partitioned:
            return
        self._next_peer_poll = now + self.heartbeat_timeout
        states = self._poll_peers()
        winner = self._find_live_primary(states)
        if winner is not None and winner["epoch"] > self.epoch:
            # a newer epoch exists: we were deposed while partitioned
            # or frozen — fence and rejoin as a replica
            self._demote(winner)

    # -- replica-side duties -------------------------------------------

    def _replica_duties(self, replica: Replica) -> None:
        now = time.monotonic()
        if self._partitioned:
            return
        link = self._replica_link
        if (link is None or link.closed) and self._primary_name is not None:
            if now >= self._next_dial:
                self._next_dial = now + max(0.2, self.pump_interval * 4)
                self._dial_primary(self._primary_name)
        silent = now - self._last_primary_contact
        if silent <= self.heartbeat_timeout or now < self._next_election:
            return
        self._next_election = now + max(0.25, self.heartbeat_timeout / 2)
        self._run_election(replica)

    def _run_election(self, replica: Replica) -> None:
        states = self._poll_peers()
        winner = self._find_live_primary(states)
        if winner is not None:
            self._adopt_primary(winner["node"])
            return
        if replica.quarantined:
            return  # suspect state can never promote; wait for a leader
        # quorum: this node plus its reachable peers must be a majority
        # of the configured cluster, or two halves of a partition could
        # each elect a primary
        if len(states) + 1 < len(self.peers) // 2 + 1:
            events_module.emit(
                "election_lost",
                node=self.name,
                reason="no quorum",
                reachable=len(states) + 1,
                needed=len(self.peers) // 2 + 1,
            )
            return
        mine = (replica.applied_sequence, self.name)
        for state in states.values():
            if state.get("quarantined"):
                continue
            theirs = (state.get("sequence") or 0, state["node"])
            if theirs > mine:
                events_module.emit(
                    "election_lost",
                    node=self.name,
                    reason="better candidate",
                    candidate=state["node"],
                )
                return  # a better candidate exists; give it time
        top_epoch = max(
            [self.epoch] + [int(s.get("epoch") or 0) for s in states.values()]
        )
        with self._lock:
            # re-check under the lock: a heartbeat may have landed (or a
            # concurrent demote/promote changed the world) mid-poll
            if self.role != "replica" or self.replica is not replica:
                return
            if (
                time.monotonic() - self._last_primary_contact
                <= self.heartbeat_timeout
            ):
                return
            self._promote_locked(top_epoch + 1)

    # -- promotion ------------------------------------------------------

    def _promote_locked(self, new_epoch: int) -> None:
        """Become the primary at ``new_epoch`` (``_lock`` held)."""
        replica = self.replica
        if replica is None:
            raise ReplicationError(f"{self.name} has no replica state")
        if self._replica_link is not None:
            self._replica_link.close()
            self._replica_link = None
        primary = replica.become_primary(new_epoch)
        self.primary = primary
        self.replica = None
        self.role = "primary"
        self._primary_name = self.name
        self.server.db = primary.db
        self._write_marker(new_epoch)
        self._listener = ReplicationListener(
            self.spec.host, self.spec.repl_port
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            args=(self._listener,),
            name=f"repro-node-accept-{self.name}",
            daemon=True,
        )
        self._accept_thread.start()
        self.transitions.append(
            (time.time(), "promote", new_epoch, self.name)
        )
        # election won, *then* the epoch bump it causes — ordered
        # within the journal's lock-assigned sequence numbers
        events_module.emit(
            "election_won", node=self.name, epoch=new_epoch
        )
        events_module.emit(
            "epoch_bump", node=self.name, epoch=new_epoch, role="primary"
        )

    def _accept_loop(self, listener: ReplicationListener) -> None:
        while not self._stop.is_set():
            try:
                link, hello = listener.accept()
            except ReplicationError:
                continue
            except OSError:
                return
            name = hello.get("name")
            if (
                self._partitioned
                or name not in self.peers
                or name == self.name
            ):
                link.close()
                continue
            with self._lock:
                primary = self.primary
                if primary is None or self.role != "primary":
                    link.close()
                    continue
                old = self._links.pop(name, None)
                if old is not None:
                    old.close()
                self._links[name] = link
                primary.attach_replica(
                    name,
                    outbound=link.outbound,
                    inbound=link.inbound,
                    acked_sequence=int(hello.get("acked_sequence", 0) or 0),
                )

    # -- adoption / demotion -------------------------------------------

    def _adopt_primary(self, leader: str) -> None:
        """Follow ``leader`` as this node's primary, wiping local state
        first when our durable marker says we were once a primary (our
        tail may contain never-replicated, never-acknowledged commits)."""
        if leader == self.name:
            return
        marker = self._read_marker()
        if marker is not None:
            self._wipe_local_state()
        with self._lock:
            self._primary_name = leader
            self._last_primary_contact = time.monotonic()
        events_module.emit("leader_adopted", node=self.name, leader=leader)
        self._dial_primary(leader)

    def _demote(self, winner: Dict[str, Any]) -> None:
        """Fence this deposed primary and rejoin as a replica of the
        newer-epoch winner. The unreplicated tail is discarded — it was
        never acknowledged (the semi-sync barrier saw to that)."""
        leader = winner["node"]
        with self._lock:
            primary = self.primary
            if primary is None or self.role != "primary":
                return
            primary.fenced = True
            primary.links.clear()
            if self._listener is not None:
                self._listener.close()
                self._listener = None
            for link in self._links.values():
                link.close()
            self._links.clear()
            try:
                primary.log.detach()
            except OSError:
                pass
            self.transitions.append(
                (time.time(), "demote", winner.get("epoch"), leader)
            )
            events_module.emit(
                "fenced",
                node=self.name,
                winner=leader,
                epoch=winner.get("epoch"),
            )
            events_module.emit(
                "epoch_bump",
                node=self.name,
                epoch=winner.get("epoch"),
                role="replica",
            )
        with self._ack_cond:
            self._ack_cond.notify_all()  # fail in-flight write barriers
        self._wipe_local_state()
        with self._lock:
            self._primary_name = leader
            self._last_primary_contact = time.monotonic()
        self._dial_primary(leader)

    def _wipe_local_state(self) -> None:
        """Discard durable + in-memory state and restart as an empty
        replica (it will bootstrap from the current primary)."""
        with self._lock:
            if self.replica is not None:
                try:
                    self.replica._writer.close()
                except OSError:
                    pass
            for stale in (
                f"{self.name}.snapshot.json",
                f"{self.name}.applied.log",
            ):
                path = os.path.join(self.data_dir, stale)
                if os.path.exists(path):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            self._clear_marker()
            self.primary = None
            self.role = "replica"
            self.replica = Replica(self.name, self.data_dir, sync=self.sync)
            self.server.db = self.replica.db
            self._last_primary_tick_seen = -1

    def _dial_primary(self, leader: str) -> None:
        spec = self.peers.get(leader)
        with self._lock:
            replica = self.replica
        if spec is None or replica is None or self._partitioned:
            return
        try:
            link = connect_replica(
                spec.host,
                spec.repl_port,
                name=self.name,
                acked_sequence=replica.applied_sequence,
                timeout=self.probe_timeout,
            )
        except ReplicationError:
            return  # backoff via _next_dial; election covers a dead leader
        with self._lock:
            if self.replica is not replica or self.role != "replica":
                link.close()
                return
            if self._replica_link is not None:
                self._replica_link.close()
            self._replica_link = link
            replica.connect(inbound=link.inbound, outbound=link.outbound)

    # ------------------------------------------------------------------
    # peer polling
    # ------------------------------------------------------------------

    def _poll_peers(self) -> Dict[str, Dict[str, Any]]:
        """CLUSTER_STATE of every reachable peer (never self)."""
        if self._partitioned:
            return {}
        states: Dict[str, Dict[str, Any]] = {}
        for name, spec in self.peers.items():
            if name == self.name:
                continue
            state = probe_state(
                spec.host, spec.client_port, self.auth_token,
                timeout=self.probe_timeout,
            )
            if state is not None:
                state["node"] = state.get("node") or name
                state["polled_at"] = time.time()
                states[name] = state
                self.peer_states[name] = state
        return states

    @staticmethod
    def _find_live_primary(
        states: Dict[str, Dict[str, Any]],
    ) -> Optional[Dict[str, Any]]:
        primaries = [
            state
            for state in states.values()
            if state.get("role") == "primary" and not state.get("fenced")
        ]
        if not primaries:
            return None
        return max(primaries, key=lambda s: int(s.get("epoch") or 0))

    # ------------------------------------------------------------------
    # durable role marker
    # ------------------------------------------------------------------

    def _write_marker(self, epoch: int) -> None:
        try:
            with open(self._marker_path, "w") as handle:
                handle.write(str(epoch))
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass  # best effort; digests remain the safety net

    def _read_marker(self) -> Optional[int]:
        try:
            with open(self._marker_path) as handle:
                return int(handle.read().strip() or 0)
        except (OSError, ValueError):
            return None

    def _clear_marker(self) -> None:
        try:
            os.unlink(self._marker_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # test / operator helpers
    # ------------------------------------------------------------------

    @property
    def client_address(self) -> Tuple[str, int]:
        return self.server.address

    def wait_for_role(self, role: str, timeout: float = 10.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.role == role:
                return True
            time.sleep(0.02)
        return self.role == role

    def wait_caught_up(self, timeout: float = 10.0) -> bool:
        """Block until this replica's applied position reaches the
        primary's advertised head (always True for a primary)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self.role == "primary":
                    return True
                replica = self.replica
                link = self._replica_link
            if (
                replica is not None
                and link is not None
                and not link.closed
                and not replica.quarantined
                and replica.lag == 0
                and replica.last_primary_tick > 0
            ):
                return True
            time.sleep(0.02)
        return False

    def __repr__(self) -> str:
        return (
            f"ClusterNode({self.name}, {self.role}, e{self.epoch}, "
            f"{self.spec.host}:{self.spec.client_port})"
        )
