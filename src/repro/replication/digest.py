"""State digests: the divergence detector's unit of comparison.

Replication's correctness rests on one invariant: applying the same
command-log prefix to the same starting snapshot yields the same
database — including the *derived* graph-view topologies the paper
materializes natively (Section 3). Digests make the invariant checkable
at runtime: the primary periodically ships the digest of its own state
at a known log position, and a replica that reaches the same position
with a different digest has diverged (a lost update, a non-deterministic
statement, local corruption) and must stop serving reads.

A digest is deliberately *logical*: per-table digests hash the row
*set* (sorted canonical JSON), and topology digests hash the
vertex/edge sets (see :meth:`GraphTopology.digest`), so physical
artifacts — slot numbers, insertion order, adjacency-list order — never
cause false alarms between nodes that took different maintenance paths
to the same state.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict

from ..core.database import Database
from ..storage.table import Table


def table_digest(table: Table) -> str:
    """CRC32 (hex) over the table's sorted canonical row set."""
    crc = 0
    for key in sorted(
        json.dumps(list(row), sort_keys=True, default=repr)
        for row in table.rows()
    ):
        crc = zlib.crc32(key.encode("utf-8"), crc)
    return format(crc, "08x")


def database_digest(database: Database) -> Dict[str, Any]:
    """Digest every table, materialized view, and graph-view topology.

    Returns ``{"tables": {...}, "views": {...}, "graph_views": {...},
    "combined": hex}`` — ``combined`` is what replication ships; the
    per-object digests let an operator pinpoint *which* object diverged.
    """
    catalog = database.catalog
    tables = {table.name: table_digest(table) for table in catalog.tables()}
    views = {
        name: table_digest(catalog.view(name).table)
        for name in list(catalog._views)
    }
    graph_views = {
        view.name: view.topology_digest() for view in catalog.graph_views()
    }
    crc = 0
    for section in (tables, views, graph_views):
        for name in sorted(section):
            crc = zlib.crc32(f"{name}={section[name]}".encode("utf-8"), crc)
    return {
        "tables": tables,
        "views": views,
        "graph_views": graph_views,
        "combined": format(crc, "08x"),
    }


def combined_digest(database: Database) -> str:
    """Shorthand for ``database_digest(database)["combined"]``."""
    return database_digest(database)["combined"]
