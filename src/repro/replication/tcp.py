"""Replication over real TCP sockets.

The in-memory :class:`~repro.replication.transport.Channel` is what the
chaos suite drives deterministically; this module provides the same
*interface* over a socket so a primary and its replicas can live in
different processes::

    # replica process
    link = connect_replica("primary-host", 7171, name="r1",
                           acked_sequence=replica.applied_sequence)
    replica.connect(inbound=link.inbound, outbound=link.outbound)

    # primary process
    listener = ReplicationListener("0.0.0.0", 7171)
    link, hello = listener.accept()
    primary.attach_replica(hello["name"],
                           outbound=link.outbound, inbound=link.inbound,
                           acked_sequence=hello.get("acked_sequence", 0))

Both directions share one socket. Frames reuse the server's wire format
(4-byte length prefix + JSON object) with the message flattened to
``{"kind", "epoch", "data"}``. A background reader thread parses
inbound frames into a thread-safe buffer that ``receive_all()`` drains
— exactly the Channel contract the pump loops already code against.

Failure semantics match the in-memory channel's: the replication
protocol assumes an *unreliable* link, so a send on a dead socket is a
dropped message (the link marks itself ``closed``), never an exception
into the pump loop. Heartbeat timeouts, not transport errors, are how
peers learn the other side is gone.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError, ReplicationError
from ..server.protocol import read_frame, send_frame
from .transport import Message


class _Outbound:
    """Channel-compatible send side: one frame per message."""

    def __init__(self, link: "TcpLink"):
        self._link = link
        self.sent = 0

    def send(self, message: Message) -> None:
        self.sent += 1
        self._link._send(message)

    @property
    def pending(self) -> int:
        return 0  # handed to the kernel; nothing queued in-process

    def __repr__(self) -> str:
        return f"TcpOutbound(sent={self.sent})"


class _Inbound:
    """Channel-compatible receive side, filled by the reader thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue: List[Message] = []
        self.delivered = 0

    def _push(self, message: Message) -> None:
        with self._lock:
            self._queue.append(message)

    def receive_all(self) -> List[Message]:
        with self._lock:
            batch, self._queue = self._queue, []
        self.delivered += len(batch)
        return batch

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def __repr__(self) -> str:
        return f"TcpInbound(pending={self.pending})"


class TcpLink:
    """A bidirectional replication link over one connected socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.closed = False
        self.outbound = _Outbound(self)
        self.inbound = _Inbound()
        self._reader = threading.Thread(
            target=self._reader_loop, name="repro-repl-read", daemon=True
        )
        self._reader.start()

    # -- wire ----------------------------------------------------------

    def _send(self, message: Message) -> None:
        if self.closed:
            return  # dropped, like a partitioned channel
        frame = {
            "type": "REPL",  # read_frame requires a type field
            "kind": message.kind,
            "epoch": message.epoch,
            "data": message.data,
        }
        try:
            with self._send_lock:
                send_frame(self._sock, frame)
        except (OSError, ProtocolError):
            self.closed = True

    def _reader_loop(self) -> None:
        while True:
            try:
                frame = read_frame(self._sock)
            except (OSError, ProtocolError):
                break
            if frame is None:
                break
            if "kind" not in frame or "epoch" not in frame:
                continue  # not a replication message; drop it
            self.inbound._push(
                Message(frame["kind"], frame["epoch"], frame.get("data") or {})
            )
        self.closed = True

    def close(self) -> None:
        self.closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"TcpLink({state}, in={self.inbound.pending})"


def connect_replica(
    host: str,
    port: int,
    name: str,
    acked_sequence: int = 0,
    timeout: float = 5.0,
) -> TcpLink:
    """Dial the primary's replication listener and introduce ourselves.

    The hello frame tells the primary who is connecting and from which
    log position to resume shipping, so a reconnecting replica does not
    re-receive (or miss) statements.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        raise ReplicationError(
            f"cannot reach replication listener {host}:{port}: {error}"
        )
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(None)
    try:
        send_frame(sock, {
            "type": "REPL_HELLO",
            "kind": "__hello__",
            "epoch": 0,
            "data": {"name": name, "acked_sequence": acked_sequence},
        })
    except OSError as error:
        sock.close()
        raise ReplicationError(f"replication handshake failed: {error}")
    return TcpLink(sock)


class ReplicationListener:
    """The primary's accept side for replica links."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 8):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)

    @property
    def address(self) -> Tuple[str, int]:
        return self._sock.getsockname()[:2]

    def accept(self, timeout: Optional[float] = None) -> Tuple[TcpLink, Dict[str, Any]]:
        """One replica connection: ``(link, hello_data)``.

        The hello is read synchronously *before* the link's reader
        thread starts, so it can never race into the inbound buffer.
        """
        self._sock.settimeout(timeout)
        try:
            sock, _address = self._sock.accept()
        except socket.timeout:
            raise ReplicationError("no replica connected before the timeout")
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(timeout)
        try:
            hello = read_frame(sock)
        except (OSError, ProtocolError) as error:
            sock.close()
            raise ReplicationError(f"bad replication handshake: {error}")
        if hello is None or hello.get("kind") != "__hello__":
            sock.close()
            raise ReplicationError(
                "replication handshake must start with a REPL_HELLO frame"
            )
        sock.settimeout(None)
        return TcpLink(sock), hello.get("data") or {}

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
