"""Deterministic fault injection for replication chaos testing.

Two families of fault, one seeded random source:

* **Message faults** — the :class:`FaultInjector` sits inside every
  :class:`~repro.replication.transport.Channel` and may drop, delay,
  duplicate, reorder, or corrupt each message sent through it. All
  decisions come from one ``random.Random(seed)``, so a failing chaos
  run replays bit-for-bit from its seed.

* **Crash points** — named sites compiled into the primary and replica
  code paths (``primary.after_commit_before_log``, ...). A test arms a
  site; the next time execution reaches it, :class:`SimulatedCrash` is
  raised, modelling the process dying at exactly that instruction. The
  registry :data:`CRASH_SITES` is importable so a chaos suite can
  enumerate *every* site and prove the acknowledged-commit guarantee
  holds at each one.

:class:`SimulatedCrash` deliberately does **not** derive from
:class:`~repro.errors.DatabaseError`: no engine-level handler may
swallow a simulated process death — only the replication layer's
explicit crash guards (which mark the node down) and the test harness
see it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


class SimulatedCrash(RuntimeError):
    """The process died at a named crash point (simulation)."""

    def __init__(self, site: str):
        super().__init__(f"simulated crash at {site}")
        self.site = site


#: Every crash point compiled into the replication code paths,
#: ``name -> description``. Tests iterate this to cover all of them.
CRASH_SITES: Dict[str, str] = {}


def register_crash_site(name: str, description: str = "") -> str:
    """Declare a crash point; returns ``name`` for use as a constant."""
    CRASH_SITES[name] = description
    return name


class FaultInjector:
    """Seeded source of message faults and armed crash points.

    ``drop``/``duplicate``/``reorder``/``corrupt``/``delay`` are
    independent per-message probabilities in ``[0, 1]``; a delayed
    message is held back for 1..``max_delay_ticks`` deliveries. The
    ``counts`` dict records every fault actually injected, so a test
    can assert its chaos really happened.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        max_delay_ticks: int = 3,
    ):
        for name, value in (
            ("drop", drop),
            ("duplicate", duplicate),
            ("reorder", reorder),
            ("corrupt", corrupt),
            ("delay", delay),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        self.random = random.Random(seed)
        self.seed = seed
        self.probabilities = {
            "drop": drop,
            "duplicate": duplicate,
            "reorder": reorder,
            "corrupt": corrupt,
            "delay": delay,
        }
        self.max_delay_ticks = max(1, max_delay_ticks)
        self.counts: Dict[str, int] = {
            kind: 0 for kind in self.probabilities
        }
        self.counts["crash"] = 0
        self._armed: Dict[str, int] = {}
        #: Sites that actually fired, in order.
        self.crashes: List[str] = []

    # ------------------------------------------------------------------
    # message faults (used by transport.Channel)
    # ------------------------------------------------------------------

    def roll(self, kind: str) -> bool:
        probability = self.probabilities[kind]
        if probability <= 0.0:
            return False
        hit = self.random.random() < probability
        if hit:
            self.counts[kind] += 1
        return hit

    def delay_ticks(self) -> int:
        return self.random.randint(1, self.max_delay_ticks)

    def corrupt_text(self, text: str) -> str:
        """Flip one character of ``text`` (guaranteed different)."""
        if not text:
            return "\x00"
        index = self.random.randrange(len(text))
        original = text[index]
        replacement = "#" if original != "#" else "@"
        return text[:index] + replacement + text[index + 1:]

    # ------------------------------------------------------------------
    # crash points
    # ------------------------------------------------------------------

    def arm_crash(self, site: str, after: int = 1) -> None:
        """Arm ``site`` to fire on its ``after``-th hit (default: next)."""
        if site not in CRASH_SITES:
            raise ValueError(
                f"unknown crash site {site!r}; registered: "
                f"{sorted(CRASH_SITES)}"
            )
        if after < 1:
            raise ValueError("after must be >= 1")
        self._armed[site] = after
    def armed(self, site: Optional[str] = None) -> bool:
        if site is None:
            return bool(self._armed)
        return site in self._armed

    def disarm(self, site: str) -> None:
        self._armed.pop(site, None)

    def crash_if_armed(self, site: str) -> None:
        """Called by the instrumented code at crash point ``site``."""
        remaining = self._armed.get(site)
        if remaining is None:
            return
        if remaining > 1:
            self._armed[site] = remaining - 1
            return
        del self._armed[site]
        self.counts["crash"] += 1
        self.crashes.append(site)
        raise SimulatedCrash(site)

    def __repr__(self) -> str:
        active = {
            kind: probability
            for kind, probability in self.probabilities.items()
            if probability > 0
        }
        return (
            f"FaultInjector(seed={self.seed}, faults={active or 'none'}, "
            f"armed={sorted(self._armed) or 'none'})"
        )
