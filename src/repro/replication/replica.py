"""The replica: applies the shipped log, answers reads, detects divergence.

A replica owns a read-only :class:`~repro.core.database.Database` plus
two durable files in its data directory:

* ``<name>.snapshot.json`` — the bootstrap snapshot it started from,
  stamped with the log position it corresponds to;
* ``<name>.applied.log`` — every shipped record it has applied since,
  written with the primary's ``(epoch, sequence)`` framing *after* the
  apply succeeds.

Restarting a crashed replica replays snapshot + applied log, which is
exactly the engine's standalone recovery path — replication adds no
second recovery mechanism. Anything applied in memory but not yet in
the applied log is simply re-shipped by the primary (delivery is
at-least-once; the sequence number dedupes).

Divergence: the primary periodically ships the digest of its state at a
log position. When the replica's applied position reaches that exact
position with a different digest, the replica has diverged — it
**quarantines** itself (refuses reads with
:class:`~repro.errors.DivergenceError`, ignores further ships) and asks
for a fresh bootstrap, rejoining only once its digest matches again.

Epoch fencing: every message carries the sender's epoch. The replica
tracks the highest epoch it has seen and discards anything older — a
deposed primary's stragglers (or a partitioned primary that never heard
of the failover) cannot touch a replica that has moved on.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Optional

from ..observability import events as events_module
from ..observability import tracing as tracing_module

from ..core.command_log import (
    FramedLogWriter,
    _checksum,
    frame_body,
    read_records,
)
from ..core.database import Database
from ..core.snapshot import restore_into, verify_snapshot_document
from ..errors import DivergenceError, RecoveryError, ReplicationError
from .digest import database_digest
from .fault_injection import (
    FaultInjector,
    SimulatedCrash,
    register_crash_site,
)
from .transport import Channel, Message

SITE_BEFORE_APPLY = register_crash_site(
    "replica.before_apply",
    "dies before applying a shipped record: pure retransmission case",
)
SITE_AFTER_APPLY_BEFORE_LOG = register_crash_site(
    "replica.after_apply_before_log",
    "dies after applying in memory but before the applied-log write: "
    "restart recovers to the pre-apply state and the primary re-ships",
)


class Replica:
    """A read-only follower of a :class:`~repro.replication.primary.Primary`."""

    def __init__(
        self,
        name: str,
        data_dir: str,
        injector: Optional[FaultInjector] = None,
        sync: str = "commit",
    ):
        self.name = name
        self.data_dir = pathlib.Path(data_dir)
        self.injector = injector
        self.sync = sync
        self.snapshot_path = self.data_dir / f"{name}.snapshot.json"
        self.log_path = self.data_dir / f"{name}.applied.log"
        self.inbound: Optional[Channel] = None
        self.outbound: Optional[Channel] = None
        self.crashed = False
        self.quarantined = False
        #: The :class:`DivergenceError` that triggered quarantine.
        self.divergence: Optional[DivergenceError] = None
        #: Highest epoch seen on any message (the fencing watermark).
        self.epoch = 0
        self.applied_sequence = 0
        self.applied_epoch = 0
        #: Log position of the snapshot this replica bootstrapped from.
        self.bootstrap_sequence = 0
        self.last_primary_tick = 0
        #: The primary's log head, from its most recent heartbeat.
        self.primary_head = 0
        self.applied_count = 0
        self.bootstraps = 0
        #: Times this replica has quarantined itself (never reset —
        #: lets a test assert detection even after a re-bootstrap heals).
        self.quarantines = 0
        self.rejected_corrupt = 0
        self.rejected_stale_epoch = 0
        #: Out-of-order ships parked until the gap before them fills.
        self._held: Dict[int, Dict[str, Any]] = {}
        #: Primary digests not yet comparable, keyed by log position.
        self._expected_digests: Dict[int, str] = {}
        self.db = self._fresh_db()
        self._writer = FramedLogWriter(str(self.log_path), sync=sync)
        self._recover_from_disk()

    # ------------------------------------------------------------------

    @staticmethod
    def _fresh_db() -> Database:
        db = Database()
        db.set_role("replica")
        return db

    def connect(self, inbound: Channel, outbound: Channel) -> None:
        """Wire the two directions of the link to the primary."""
        self.inbound = inbound
        self.outbound = outbound

    @property
    def lag(self) -> int:
        """Records behind the primary's last advertised head (>= 0)."""
        return max(0, self.primary_head - self.applied_sequence)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def query(self, sql: str, budget=None):
        """Serve a client read. Writes are rejected by the database's
        replica role; quarantined and down replicas refuse entirely."""
        if self.crashed:
            raise ReplicationError(f"{self.name} is down")
        if self.quarantined:
            raise DivergenceError(
                f"{self.name} refuses reads: {self.divergence} "
                "(re-bootstrap in progress)"
            )
        return self.db.execute(sql, budget=budget)

    # ------------------------------------------------------------------
    # the pump: consume the stream, apply, acknowledge
    # ------------------------------------------------------------------

    def pump(self, tick: int) -> None:
        """One scheduling quantum: drain inbound, apply, acknowledge."""
        if self.crashed or self.inbound is None or self.outbound is None:
            return
        try:
            for message in self.inbound.receive_all():
                self._handle(message, tick)
            self._drain_held()
            self._check_digests()
            if self.quarantined:
                # keep asking until a bootstrap makes it through the
                # (lossy) channel — requests are idempotent
                self.outbound.send(
                    Message("bootstrap_request", self.epoch, {"name": self.name})
                )
            else:
                self.outbound.send(
                    Message(
                        "ack",
                        self.epoch,
                        {"name": self.name, "sequence": self.applied_sequence},
                    )
                )
        except SimulatedCrash:
            self.crashed = True

    def _handle(self, message: Message, tick: int) -> None:
        if message.epoch < self.epoch:
            self.rejected_stale_epoch += 1
            return  # fenced: a deposed primary's straggler
        if message.epoch > self.epoch:
            self.epoch = message.epoch
        if message.data.get("_corrupted"):
            self.rejected_corrupt += 1
            return
        if message.kind == "heartbeat":
            self.last_primary_tick = tick
            self.primary_head = max(
                self.primary_head, message.data.get("sequence", 0)
            )
        elif message.kind == "ship":
            self.last_primary_tick = tick
            self._receive_ship(message.data)
        elif message.kind == "digest":
            self.last_primary_tick = tick
            sequence = message.data["sequence"]
            if sequence >= self.applied_sequence:
                self._expected_digests[sequence] = message.data["digest"]
        elif message.kind == "bootstrap":
            self.last_primary_tick = tick
            self._receive_bootstrap(message.data["document"])

    def _receive_ship(self, data: Dict[str, Any]) -> None:
        if self.quarantined:
            return  # state is suspect; only a bootstrap helps
        sequence = data["sequence"]
        if sequence <= self.applied_sequence or sequence in self._held:
            return  # duplicate delivery
        body = frame_body(data["record_epoch"], sequence, data["sql"])
        if _checksum(body) != data.get("crc"):
            self.rejected_corrupt += 1
            return  # mangled in flight; retransmission will cover it
        self._held[sequence] = data

    def _drain_held(self) -> None:
        while not self.quarantined and self.applied_sequence + 1 in self._held:
            data = self._held.pop(self.applied_sequence + 1)
            self._apply(data)

    def _apply(self, data: Dict[str, Any]) -> None:
        started = time.perf_counter()
        self._crash(SITE_BEFORE_APPLY)
        self.db.apply_replicated(data["sql"])
        self._crash(SITE_AFTER_APPLY_BEFORE_LOG)
        self._writer.append(data["record_epoch"], data["sequence"], data["sql"])
        self.applied_sequence = data["sequence"]
        self.applied_epoch = data["record_epoch"]
        self.applied_count += 1
        # A trace stamped on the ship joins the originating statement's
        # trace here — the cross-process tail of the write's lifecycle.
        # Retransmitted / recovered records carry no stamp and skip.
        context = tracing_module.TraceContext.from_wire(data.get("trace"))
        if context is not None:
            tracing_module.record_span(
                "repl.apply",
                (time.perf_counter() - started) * 1000.0,
                context=context,
                node=self.name,
                sequence=data["sequence"],
                epoch=data["record_epoch"],
            )

    def _check_digests(self) -> None:
        """Compare the primary's digests against our state — only at the
        exact log position each digest was taken at."""
        for sequence in sorted(self._expected_digests):
            if sequence < self.applied_sequence:
                del self._expected_digests[sequence]  # stale: we moved past
            elif sequence == self.applied_sequence:
                expected = self._expected_digests.pop(sequence)
                actual = database_digest(self.db)["combined"]
                if actual != expected and not self.quarantined:
                    self.divergence = DivergenceError(
                        f"{self.name} diverged at e{self.epoch}.{sequence}: "
                        f"digest {actual} != primary's {expected}"
                    )
                    self.quarantined = True
                    self.quarantines += 1
                    self._held.clear()
                    self._expected_digests.clear()
                    events_module.emit(
                        "quarantine",
                        node=self.name,
                        epoch=self.epoch,
                        sequence=sequence,
                        reason=str(self.divergence),
                    )
                    return

    def _receive_bootstrap(self, document: Dict[str, Any]) -> None:
        position = document.get("replication", {})
        sequence = position.get("sequence", 0)
        if not self.quarantined and sequence <= self.applied_sequence:
            return  # stale bootstrap; we are already past it
        try:
            verify_snapshot_document(document)
            db = self._fresh_db()
            restore_into(document, db)
        except RecoveryError:
            self.rejected_corrupt += 1
            return  # keep requesting; the next copy may arrive intact
        expected = position.get("digest")
        if expected is not None:
            actual = database_digest(db)["combined"]
            if actual != expected:
                self.rejected_corrupt += 1
                return  # snapshot did not restore faithfully
        self.db = db
        self.applied_sequence = sequence
        self.applied_epoch = position.get("epoch", self.epoch)
        self.bootstrap_sequence = sequence
        self.quarantined = False
        self.divergence = None
        self._held.clear()
        self._expected_digests.clear()
        self._writer.truncate()
        self.snapshot_path.write_text(json.dumps(document))
        self.bootstraps += 1

    def _crash(self, site: str) -> None:
        if self.injector is not None:
            self.injector.crash_if_armed(site)

    # ------------------------------------------------------------------
    # crash / restart / promotion
    # ------------------------------------------------------------------

    def restart(self) -> None:
        """Come back from a crash: rebuild from the durable snapshot +
        applied log (the standalone recovery path), then let the primary
        re-ship whatever was in memory only."""
        self._writer.close()
        self.crashed = False
        self.quarantined = False
        self.divergence = None
        self._held.clear()
        self._expected_digests.clear()
        self.db = self._fresh_db()
        self.applied_sequence = 0
        self.applied_epoch = 0
        self.bootstrap_sequence = 0
        self._recover_from_disk()
        self._writer = FramedLogWriter(str(self.log_path), sync=self.sync)

    def _recover_from_disk(self) -> None:
        """Standalone-style recovery: bootstrap snapshot (if any), then
        replay the applied log past the snapshot's position."""
        if self.snapshot_path.exists():
            document = json.loads(self.snapshot_path.read_text())
            verify_snapshot_document(document, source=str(self.snapshot_path))
            restore_into(document, self.db)
            position = document.get("replication", {})
            self.applied_sequence = position.get("sequence", 0)
            self.applied_epoch = position.get("epoch", 0)
            self.bootstrap_sequence = self.applied_sequence
        for record in read_records(
            str(self.log_path), from_sequence=self.applied_sequence
        ):
            self.db.apply_replicated(record.sql)
            self.applied_sequence = record.sequence
            self.applied_epoch = record.epoch

    def become_primary(self, epoch: int, **primary_kwargs):
        """Promote: re-open this replica's database and applied log as a
        :class:`~repro.replication.primary.Primary` at ``epoch``.

        The applied log continues as the new primary's command log, so
        sequence numbers keep counting from the global position; records
        older than our bootstrap snapshot are not in the file, so the
        new log's ``base_sequence`` is pinned there (further-behind
        replicas get a fresh bootstrap instead of retransmission).
        """
        from .primary import Primary  # circular at module load time

        if self.crashed:
            raise ReplicationError(f"cannot promote {self.name}: it is down")
        if self.quarantined:
            raise ReplicationError(
                f"cannot promote {self.name}: it is quarantined "
                f"({self.divergence})"
            )
        self._writer.close()
        primary = Primary(
            str(self.log_path),
            database=self.db,
            epoch=epoch,
            injector=self.injector,
            sync=self.sync,
            name=self.name,
            **primary_kwargs,
        )
        primary.log.last_sequence = max(
            primary.log.last_sequence, self.applied_sequence
        )
        primary.log.base_sequence = self.bootstrap_sequence
        return primary

    def __repr__(self) -> str:
        state = (
            "down"
            if self.crashed
            else "quarantined" if self.quarantined else "up"
        )
        return (
            f"Replica({self.name}, e{self.epoch}, "
            f"applied={self.applied_sequence}, {state})"
        )
