"""Cluster coordination: wiring, semi-sync acks, failover, reconnects.

The :class:`ReplicationManager` is the (simulated) control plane of one
primary plus N replicas:

* **Wiring** — each replica gets a pair of in-memory channels to the
  primary, both threaded through the manager's fault injector.
* **Semi-synchronous writes** — :meth:`execute` routes a statement to
  the primary, then pumps the cluster until ``ack_replicas`` replicas
  have *applied* it (not merely received it). Only then does the client
  get its acknowledgement — that is the contract the chaos suite
  verifies: an acknowledged write survives losing the primary.
* **Failure detection** — replicas record the tick of the last message
  from the primary; when every eligible replica has heard nothing for
  ``heartbeat_timeout`` ticks, the primary is declared dead and the
  most-caught-up healthy replica is promoted into a new epoch. The old
  primary is **fenced** the instant the decision is made: its epoch is
  obsolete, replicas discard its stragglers, and any write attempt on
  it raises :class:`~repro.errors.FencedError`.
* **Reconnection** — crashed replicas (and the deposed primary, which
  rejoins as a replica after discarding its now-divergent local state)
  are retried with exponential backoff, never in a tight loop.

Everything is driven by :meth:`step` — one logical tick per call, no
threads, no wall clock — so every failure scenario is deterministic and
replayable from the fault injector's seed.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..core.database import sql_is_write as _is_write
from ..errors import ReplicationError
from ..observability.metrics import recording_registry
from ..resilience.retry import RetryPolicy
from .fault_injection import FaultInjector
from .primary import Primary
from .replica import Replica
from .transport import Channel


class ReplicationManager:
    """Control plane for a primary and its replicas."""

    def __init__(
        self,
        primary: Primary,
        data_dir: str,
        ack_replicas: int = 1,
        heartbeat_timeout: int = 5,
        backoff_base: int = 2,
        backoff_cap: int = 16,
        max_await_steps: int = 200,
        injector: Optional[FaultInjector] = None,
    ):
        self.primary = primary
        self.data_dir = str(data_dir)
        self.ack_replicas = ack_replicas
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: The shared retry machinery, in logical ticks: jitter stays 0
        #: so chaos runs remain bit-for-bit replayable from their seed.
        self.reconnect_policy = RetryPolicy(
            base_delay=backoff_base,
            max_delay=backoff_cap,
            multiplier=2.0,
            jitter=0.0,
        )
        self.max_await_steps = max_await_steps
        self.injector = injector
        self.replicas: Dict[str, Replica] = {}
        self.tick = 0
        self.epoch = primary.epoch
        #: ``(tick, old_primary, new_primary, epoch)`` per failover.
        self.failovers: List[tuple] = []
        #: Every scheduled reconnect attempt, for observability/tests:
        #: ``{"name", "kind", "attempt", "delay", "due"}``.
        self.reconnect_log: List[dict] = []
        self._pending_reconnects: Dict[str, dict] = {}
        self._backoff_attempts: Dict[str, int] = {}
        #: Deposed primaries awaiting rejoin, by name.
        self._deposed: Dict[str, Primary] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def add_replica(self, replica: Replica) -> Replica:
        if replica.name in self.replicas or replica.name == self.primary.name:
            raise ReplicationError(f"duplicate node name: {replica.name}")
        self.replicas[replica.name] = replica
        self._wire(replica)
        return replica

    def _wire(self, replica: Replica) -> None:
        """(Re-)connect ``replica`` to the current primary with fresh
        channels, resuming from its applied position."""
        to_replica = Channel(self.injector)
        to_primary = Channel(self.injector)
        self.primary.attach_replica(
            replica.name,
            outbound=to_replica,
            inbound=to_primary,
            acked_sequence=replica.applied_sequence,
        )
        replica.connect(inbound=to_replica, outbound=to_primary)

    # ------------------------------------------------------------------
    # the clock
    # ------------------------------------------------------------------

    def step(self, count: int = 1) -> None:
        """Advance the cluster ``count`` logical ticks."""
        for _ in range(count):
            self.tick += 1
            self.primary.pump(self.tick)
            for replica in self.replicas.values():
                replica.pump(self.tick)
            self._detect_primary_failure()
            self._handle_reconnects()
        if recording_registry() is not None:
            self.status()  # refreshes the replication lag/sequence gauges

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def execute(self, sql: str, budget=None):
        """Run a statement on the primary. For writes, the call returns
        (acknowledges) only once ``ack_replicas`` replicas have applied
        it — :class:`~repro.errors.ReplicationError` means *outcome
        unknown*, never *acknowledged then lost*."""
        primary = self.primary
        result = primary.execute(sql, budget=budget)
        if (
            _is_write(sql)
            and self.ack_replicas > 0
            and primary.links
            and not primary.db.transactions.in_transaction
        ):
            self._await_replication(primary, primary.log.last_sequence)
        return result

    def _await_replication(self, primary: Primary, target: int) -> None:
        needed = min(self.ack_replicas, len(primary.links))
        for _ in range(self.max_await_steps):
            acked = sum(
                1
                for link in primary.links.values()
                if link.acked_sequence >= target
            )
            if acked >= needed:
                return
            self.step()
            if self.primary is not primary or primary.crashed:
                raise ReplicationError(
                    "primary was lost before the write replicated; "
                    "its outcome is unknown (it was never acknowledged)"
                )
        raise ReplicationError(
            f"write not acknowledged by {needed} replica(s) within "
            f"{self.max_await_steps} ticks (sequence {target})"
        )

    # ------------------------------------------------------------------
    # failure detection and failover
    # ------------------------------------------------------------------

    def _eligible(self) -> List[Replica]:
        return [
            replica
            for replica in self.replicas.values()
            if not replica.crashed and not replica.quarantined
        ]

    def _detect_primary_failure(self) -> None:
        eligible = self._eligible()
        if not eligible:
            return
        last_heard = max(r.last_primary_tick for r in eligible)
        if self.tick - last_heard > self.heartbeat_timeout:
            self.promote()

    def promote(self, name: Optional[str] = None) -> Primary:
        """Fail over to ``name`` (or to the most-caught-up healthy
        replica). The old primary is fenced immediately and scheduled to
        rejoin as a replica, with backoff."""
        if name is not None:
            if name == self.primary.name:
                raise ReplicationError(f"{name} is already the primary")
            candidate = self.replicas.get(name)
            if candidate is None:
                raise ReplicationError(f"no such replica: {name}")
            if candidate.crashed:
                raise ReplicationError(f"{name} is down")
            if candidate.quarantined:
                raise ReplicationError(
                    f"{name} is quarantined (diverged); it cannot be promoted"
                )
        else:
            eligible = self._eligible()
            if not eligible:
                raise ReplicationError(
                    "no healthy replica is available to promote"
                )
            candidate = max(
                eligible, key=lambda r: (r.applied_sequence, r.name)
            )
        old = self.primary
        new_epoch = max(self.epoch, old.epoch, candidate.epoch) + 1
        # fence first: from this instant the old epoch is dead, whatever
        # the old process believes
        old.fenced = True
        old.links.clear()
        old.log.detach()
        del self.replicas[candidate.name]
        self.primary = candidate.become_primary(new_epoch)
        self.epoch = new_epoch
        for replica in self.replicas.values():
            replica.epoch = new_epoch
            replica.primary_head = max(
                replica.primary_head, self.primary.log.last_sequence
            )
            # the rewire itself is contact with the new primary
            replica.last_primary_tick = self.tick
            self._wire(replica)
        self.failovers.append((self.tick, old.name, self.primary.name, new_epoch))
        self._deposed[old.name] = old
        self._schedule_reconnect(old.name, kind="rejoin")
        return self.primary

    # ------------------------------------------------------------------
    # reconnection with backoff
    # ------------------------------------------------------------------

    def _schedule_reconnect(self, name: str, kind: str) -> None:
        if name in self._pending_reconnects:
            return
        attempt = self._backoff_attempts.get(name, 0) + 1
        delay = int(self.reconnect_policy.delay(attempt))
        self._backoff_attempts[name] = attempt
        entry = {
            "name": name,
            "kind": kind,
            "attempt": attempt,
            "delay": delay,
            "due": self.tick + delay,
        }
        self._pending_reconnects[name] = entry
        self.reconnect_log.append(entry)

    def _handle_reconnects(self) -> None:
        for replica in self.replicas.values():
            if replica.crashed:
                self._schedule_reconnect(replica.name, kind="restart")
        due = [
            entry
            for entry in self._pending_reconnects.values()
            if self.tick >= entry["due"]
        ]
        for entry in due:
            del self._pending_reconnects[entry["name"]]
            if entry["kind"] == "restart":
                replica = self.replicas.get(entry["name"])
                if replica is not None and replica.crashed:
                    replica.restart()
                    self._wire(replica)
            elif entry["kind"] == "rejoin":
                self._rejoin_deposed(entry["name"])

    def _rejoin_deposed(self, name: str) -> None:
        """Bring a fenced ex-primary back as a replica.

        Its local state may contain commits the new primary never saw
        (logged but unreplicated when it died) — by definition never
        acknowledged to any client. A deposed primary therefore discards
        its durable state and bootstraps fresh from the new primary;
        keeping it would be exactly the divergence the digests hunt for.
        """
        old = self._deposed.pop(name, None)
        if old is None or name in self.replicas:
            return
        if old.crashed:
            # the process is still down; try again later, backed off
            self._schedule_reconnect(name, kind="rejoin")
            self._deposed[name] = old
            return
        for stale in (f"{name}.snapshot.json", f"{name}.applied.log"):
            stale_path = os.path.join(self.data_dir, stale)
            if os.path.exists(stale_path):
                os.unlink(stale_path)
        replica = Replica(
            name,
            self.data_dir,
            injector=self.injector,
            sync=old.log.sync,
        )
        self.replicas[name] = replica
        replica.epoch = self.epoch
        replica.last_primary_tick = self.tick
        self._wire(replica)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> List[dict]:
        """One row per node, primary first — the ``\\replica status``
        shell command renders exactly this. Per-replica rows also carry
        ``acked`` (highest sequence the primary saw acknowledged) and
        ``shipped`` (the primary's log head the replica is chasing)."""
        primary = self.primary
        shipped = primary.log.last_sequence
        rows = [
            {
                "node": primary.name,
                "role": "primary",
                "epoch": primary.epoch,
                "sequence": shipped,
                "lag": 0,
                "acked": shipped,
                "shipped": shipped,
                "state": "down" if primary.crashed else "up",
            }
        ]
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            link = primary.links.get(name)
            acked = (
                link.acked_sequence
                if link is not None
                else replica.applied_sequence
            )
            lag = shipped - acked if link is not None else replica.lag
            rows.append(
                {
                    "node": name,
                    "role": "replica",
                    "epoch": replica.epoch,
                    "sequence": replica.applied_sequence,
                    "lag": max(0, lag),
                    "acked": acked,
                    "shipped": shipped,
                    "state": (
                        "down"
                        if replica.crashed
                        else "quarantined" if replica.quarantined else "up"
                    ),
                }
            )
        self._update_gauges(rows)
        return rows

    def _update_gauges(self, rows: List[dict]) -> None:
        """Mirror the status rows into the process-wide metrics registry."""
        registry = recording_registry()
        if registry is None:
            return
        registry.gauge(
            "repro_replication_shipped_sequence",
            help="The primary's command-log head (last shipped sequence).",
        ).set(rows[0]["shipped"])
        for row in rows[1:]:
            registry.gauge(
                "repro_replication_lag",
                help="Statements shipped but not yet acknowledged, per replica.",
                replica=row["node"],
            ).set(row["lag"])
            registry.gauge(
                "repro_replication_acked_sequence",
                help="Highest acknowledged sequence, per replica.",
                replica=row["node"],
            ).set(row["acked"])

    def __repr__(self) -> str:
        return (
            f"ReplicationManager(e{self.epoch}, tick={self.tick}, "
            f"primary={self.primary.name}, "
            f"replicas={sorted(self.replicas)})"
        )
