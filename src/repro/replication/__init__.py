"""Primary–replica replication for the graph-extended relational engine.

Log-shipping replication built on the engine's existing durability
primitives (command log + snapshots): the primary frames every committed
statement with ``(epoch, sequence)`` and streams it to replicas, which
apply it through the standard replay path against read-only databases.
Failover, divergence detection (logical state digests, including
graph-view topologies), split-brain fencing, and a deterministic
fault-injection harness are all here. See ``docs/replication.md``.
"""

from .digest import combined_digest, database_digest, table_digest
from .fault_injection import (
    CRASH_SITES,
    FaultInjector,
    SimulatedCrash,
    register_crash_site,
)
from .manager import ReplicationManager
from .node import ClusterNode, PeerSpec, parse_peers, probe_state
from .primary import Primary, ReplicaLink
from .replica import Replica
from .transport import Channel, Message

__all__ = [
    "CRASH_SITES",
    "Channel",
    "ClusterNode",
    "FaultInjector",
    "Message",
    "PeerSpec",
    "Primary",
    "Replica",
    "ReplicaLink",
    "ReplicationManager",
    "SimulatedCrash",
    "parse_peers",
    "probe_state",
    "combined_digest",
    "database_digest",
    "register_crash_site",
    "table_digest",
]
