"""The primary: owns the writable database and ships its command log.

Write path (client-visible guarantees marked ▸):

1. ``execute(sql)`` — rejected outright if this node is fenced
   (deposed by a failover) or down;
2. the statement commits against the local database;
3. the command log appends it as a framed ``(epoch, sequence)`` record
   and makes it durable per the log's ``sync`` policy ▸ *acknowledged
   writes survive a primary process crash*;
4. the record is shipped to every connected replica; lagging replicas
   are re-shipped from the on-disk log (the streaming reader) until
   they acknowledge ▸ *delivery is at-least-once; replicas dedupe by
   sequence*;
5. the cluster façade (:class:`~repro.replication.manager
   .ReplicationManager`) withholds the client acknowledgement until the
   configured number of replicas has applied the record ▸ *acknowledged
   writes survive primary loss with failover*.

Periodically the primary also ships a state digest pinned to its log
head, giving replicas the reference point for divergence detection.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Optional

from ..core.command_log import CommandLog, LogRecord, read_records
from ..core.database import Database
from ..core.snapshot import snapshot_to_dict
from ..errors import FencedError, ReplicationError
from ..observability import tracing as tracing_module
from .digest import database_digest
from .fault_injection import (
    FaultInjector,
    SimulatedCrash,
    register_crash_site,
)
from .transport import Channel, Message

SITE_BEFORE_COMMIT = register_crash_site(
    "primary.before_commit",
    "dies before the statement commits: no state change anywhere",
)
SITE_AFTER_COMMIT_BEFORE_LOG = register_crash_site(
    "primary.after_commit_before_log",
    "dies with the commit in memory but not on disk: the write is lost "
    "with the process, and the client was never acknowledged",
)
SITE_AFTER_LOG_BEFORE_SHIP = register_crash_site(
    "primary.after_log_before_ship",
    "dies with the record durable locally but never shipped: failover "
    "loses it, and the client was never acknowledged",
)
SITE_AFTER_SHIP_BEFORE_ACK = register_crash_site(
    "primary.after_ship_before_ack",
    "dies after shipping but before acknowledging: replicas may apply "
    "the write; the client must treat the outcome as unknown",
)


class ReplicaLink:
    """The primary's book-keeping for one attached replica."""

    __slots__ = (
        "name",
        "outbound",
        "inbound",
        "acked_sequence",
        "last_ack_tick",
        "last_ship_tick",
    )

    def __init__(
        self,
        name: str,
        outbound: Channel,
        inbound: Channel,
        acked_sequence: int = 0,
    ):
        self.name = name
        self.outbound = outbound
        self.inbound = inbound
        self.acked_sequence = acked_sequence
        self.last_ack_tick = 0
        self.last_ship_tick = 0


class Primary:
    """A database in the primary role, streaming its log to replicas."""

    def __init__(
        self,
        log_path: str,
        database: Optional[Database] = None,
        epoch: int = 1,
        injector: Optional[FaultInjector] = None,
        sync: str = "commit",
        name: str = "primary",
        digest_interval: int = 4,
        retransmit_after: int = 2,
        ship_limit: int = 64,
    ):
        self.name = name
        self.db = database or Database()
        self.db.set_role("primary")
        self.injector = injector
        self.log = CommandLog(self.db, log_path, sync=sync, epoch=epoch)
        self.log.pre_append_hook = self._before_log_append
        self.log.on_record = self._ship_record
        self.links: Dict[str, ReplicaLink] = {}
        self.crashed = False
        #: Set by the failover coordinator when a new primary is elected
        #: (the durable fencing token); a fenced primary refuses writes.
        self.fenced = False
        self.digest_interval = digest_interval
        self.retransmit_after = retransmit_after
        self.ship_limit = ship_limit
        self.retransmissions = 0
        self._pump_count = 0
        self._tick = 0

    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.log.epoch

    def attach_replica(
        self,
        name: str,
        outbound: Channel,
        inbound: Channel,
        acked_sequence: int = 0,
    ) -> ReplicaLink:
        link = ReplicaLink(name, outbound, inbound, acked_sequence)
        self.links[name] = link
        return link

    def detach_replica(self, name: str) -> None:
        self.links.pop(name, None)

    def bootstrap_document(self) -> dict:
        """A snapshot of the current state, stamped with the log
        position it corresponds to — everything a replica needs to
        join (or rejoin) the stream."""
        return snapshot_to_dict(
            self.db,
            replication={
                "epoch": self.epoch,
                "sequence": self.log.last_sequence,
                "digest": database_digest(self.db)["combined"],
            },
        )

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def execute(self, sql: str, budget=None):
        """Run a client statement. Commit, log, and ship happen inline;
        the caller (normally the manager) decides how many replica
        acknowledgements to await before acknowledging its client."""
        if self.crashed:
            raise ReplicationError(f"{self.name} is down")
        if self.fenced:
            raise FencedError(
                f"{self.name} was deposed (a newer epoch exists); "
                "writes must go to the current primary"
            )
        try:
            self._crash(SITE_BEFORE_COMMIT)
            result = self.db.execute(sql, budget=budget)
            self._crash(SITE_AFTER_SHIP_BEFORE_ACK)
        except SimulatedCrash:
            self.crashed = True
            raise
        return result

    def _before_log_append(self) -> None:
        self._crash(SITE_AFTER_COMMIT_BEFORE_LOG)

    def _ship_record(self, record: LogRecord) -> None:
        self._crash(SITE_AFTER_LOG_BEFORE_SHIP)
        # A freshly durable record is shipped from the writer thread,
        # which still carries the originating statement's trace context
        # — stamp it on the ship so the replica's apply span joins the
        # trace (the CRC covers only the framed record, so the extra
        # key is invisible to checksum verification), and record the
        # ship itself as a point span. Retransmissions go through
        # :meth:`_ship_message` directly and carry no trace.
        trace = tracing_module.current_trace()
        message = self._ship_message(record)
        if trace is not None and trace.sampled:
            message.data["trace"] = trace.to_wire()
            tracing_module.record_span(
                "repl.ship",
                0.0,
                context=trace,
                sequence=record.sequence,
                epoch=record.epoch,
                replicas=len(self.links),
            )
        for link in self.links.values():
            link.outbound.send(message)
            link.last_ship_tick = self._tick

    def _ship_message(self, record: LogRecord) -> Message:
        return Message(
            "ship",
            self.epoch,
            {
                "record_epoch": record.epoch,
                "sequence": record.sequence,
                "sql": record.sql,
                "crc": record.checksum(),
            },
        )

    def _crash(self, site: str) -> None:
        if self.injector is not None:
            self.injector.crash_if_armed(site)

    # ------------------------------------------------------------------
    # background pump: acks, retransmission, heartbeats, digests
    # ------------------------------------------------------------------

    def pump(self, tick: int) -> None:
        """One scheduling quantum of the primary's background work."""
        if self.crashed or self.fenced:
            return
        self._tick = tick
        try:
            self._pump_count += 1
            for link in self.links.values():
                self._process_inbound(link, tick)
                self._retransmit_if_lagging(link, tick)
                link.outbound.send(
                    Message(
                        "heartbeat",
                        self.epoch,
                        {"sequence": self.log.last_sequence},
                    )
                )
            if (
                self._pump_count % self.digest_interval == 0
                and self.log.last_sequence > 0
            ):
                self._ship_digest()
        except SimulatedCrash:
            self.crashed = True

    def _process_inbound(self, link: ReplicaLink, tick: int) -> None:
        for message in link.inbound.receive_all():
            if message.data.get("_corrupted"):
                continue
            if message.kind == "ack":
                link.last_ack_tick = tick
                sequence = message.data.get("sequence", 0)
                if sequence > link.acked_sequence:
                    link.acked_sequence = sequence
            elif message.kind == "bootstrap_request":
                link.outbound.send(
                    Message(
                        "bootstrap",
                        self.epoch,
                        {"document": self.bootstrap_document()},
                    )
                )

    def _retransmit_if_lagging(self, link: ReplicaLink, tick: int) -> None:
        if link.acked_sequence >= self.log.last_sequence:
            return
        if tick - link.last_ship_tick < self.retransmit_after:
            return
        if link.acked_sequence < self.log.base_sequence:
            # the records it needs predate this log (truncated at a
            # snapshot, or this primary was promoted after the replica
            # fell behind): only a fresh snapshot can catch it up
            link.outbound.send(
                Message(
                    "bootstrap",
                    self.epoch,
                    {"document": self.bootstrap_document()},
                )
            )
            link.last_ship_tick = tick
            return
        records = islice(
            read_records(self.log.path, from_sequence=link.acked_sequence),
            self.ship_limit,
        )
        shipped = 0
        for record in records:
            link.outbound.send(self._ship_message(record))
            shipped += 1
        if shipped:
            link.last_ship_tick = tick
            self.retransmissions += 1

    def _ship_digest(self) -> None:
        digest = database_digest(self.db)
        message = Message(
            "digest",
            self.epoch,
            {
                "sequence": self.log.last_sequence,
                "digest": digest["combined"],
                "detail": {
                    "tables": digest["tables"],
                    "views": digest["views"],
                    "graph_views": digest["graph_views"],
                },
            },
        )
        for link in self.links.values():
            link.outbound.send(message)

    # ------------------------------------------------------------------

    def replication_lag(self) -> Dict[str, int]:
        """Per-replica lag in log records (0 = fully caught up)."""
        head = self.log.last_sequence
        return {
            name: head - link.acked_sequence
            for name, link in self.links.items()
        }

    def restart(self) -> None:
        """Simulate the process coming back after a crash.

        State is whatever the durable log says (the in-memory database
        was rebuilt by whoever restarted us — for a *fenced* primary
        that is irrelevant: it can never accept writes again)."""
        self.crashed = False

    def __repr__(self) -> str:
        state = (
            "down" if self.crashed else "fenced" if self.fenced else "up"
        )
        return (
            f"Primary({self.name}, e{self.epoch}, "
            f"seq={self.log.last_sequence}, {state}, "
            f"replicas={sorted(self.links)})"
        )
