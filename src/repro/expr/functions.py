"""Scalar function registry and aggregate accumulators.

Scalar functions are NULL-propagating unless documented otherwise
(COALESCE, NULLIF). Aggregates follow SQL semantics: NULL inputs are
ignored; ``COUNT(*)`` counts rows; ``SUM``/``AVG``/``MIN``/``MAX`` over
no non-NULL input yield NULL; ``COUNT`` yields 0.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from ..errors import ExecutionError

# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _null_propagating(fn: Callable) -> Callable:
    def wrapper(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _substring(text: str, start: int, length: Optional[int] = None) -> str:
    # SQL SUBSTRING is 1-based
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _coalesce(*args: Any) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _nullif(left: Any, right: Any) -> Any:
    if left is None:
        return None
    return None if left == right else left


def _round(value: float, digits: int = 0) -> float:
    return round(value, int(digits))


def _power(base: float, exponent: float) -> float:
    return float(base) ** float(exponent)


def _mod(left: float, right: float) -> float:
    if right == 0:
        raise ExecutionError("MOD by zero")
    return left % right


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "ABS": _null_propagating(abs),
    "LENGTH": _null_propagating(lambda s: len(s)),
    "CHAR_LENGTH": _null_propagating(lambda s: len(s)),
    "UPPER": _null_propagating(lambda s: str(s).upper()),
    "LOWER": _null_propagating(lambda s: str(s).lower()),
    "TRIM": _null_propagating(lambda s: str(s).strip()),
    "SUBSTRING": _null_propagating(_substring),
    "SUBSTR": _null_propagating(_substring),
    "CONCAT": _null_propagating(lambda *parts: "".join(str(p) for p in parts)),
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "FLOOR": _null_propagating(lambda v: math.floor(v)),
    "CEIL": _null_propagating(lambda v: math.ceil(v)),
    "CEILING": _null_propagating(lambda v: math.ceil(v)),
    "ROUND": _null_propagating(_round),
    "SQRT": _null_propagating(lambda v: math.sqrt(v)),
    "POWER": _null_propagating(_power),
    "MOD": _null_propagating(_mod),
    "SIGN": _null_propagating(lambda v: (v > 0) - (v < 0)),
}


# ---------------------------------------------------------------------------
# aggregates
# ---------------------------------------------------------------------------

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate_name(name: str) -> bool:
    return name.upper() in AGGREGATE_NAMES


class Accumulator:
    """Incremental aggregate state."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _Count(Accumulator):
    def __init__(self, count_rows: bool):
        self.count_rows = count_rows
        self.count = 0

    def add(self, value: Any) -> None:
        if self.count_rows or value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class _Sum(Accumulator):
    def __init__(self):
        self.total: Optional[float] = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Optional[float]:
        return self.total


class _Avg(Accumulator):
    def __init__(self):
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class _Min(Accumulator):
    def __init__(self):
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class _Max(Accumulator):
    def __init__(self):
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class _Distinct(Accumulator):
    """DISTINCT wrapper: forwards each distinct non-NULL value once."""

    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            self.inner.add(None)
            return
        if value not in self.seen:
            self.seen.add(value)
            self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


def make_accumulator(
    name: str, distinct: bool = False, count_rows: bool = False
) -> Accumulator:
    """Instantiate fresh aggregate state for one group."""
    upper = name.upper()
    if upper == "COUNT":
        inner: Accumulator = _Count(count_rows)
    elif upper == "SUM":
        inner = _Sum()
    elif upper == "AVG":
        inner = _Avg()
    elif upper == "MIN":
        inner = _Min()
    elif upper == "MAX":
        inner = _Max()
    else:
        raise ExecutionError(f"unknown aggregate function: {name}")
    if distinct and not count_rows:
        return _Distinct(inner)
    return inner


def aggregate_over(name: str, values: List[Any], distinct: bool = False) -> Any:
    """One-shot aggregate over a value list (used by path aggregates
    like ``SUM(PS.Edges.Weight)``)."""
    accumulator = make_accumulator(name, distinct)
    for value in values:
        accumulator.add(value)
    return accumulator.result()
