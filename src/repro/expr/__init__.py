"""Expression engine (system S3).

Compiles parsed SQL expressions into Python closures evaluated against
*combined rows* — one slot per from-clause item, holding a relational
tuple, a Vertex, an Edge, or a Path. SQL three-valued logic (NULL =
``None``) is implemented throughout.

The paper's path expressions (``PS.Edges[0..*].attr``, ``PS.Length``,
``PS.StartVertex.Id``, ``SUM(PS.Edges.w)``, …) compile against
:class:`~repro.expr.scope.PathBinding` slots.
"""

from .scope import (
    Scope,
    RelationBinding,
    VertexBinding,
    EdgeBinding,
    PathBinding,
)
from .compile import CompiledExpression, compile_expression, ExpressionCompiler
from .functions import SCALAR_FUNCTIONS, make_accumulator, is_aggregate_name

__all__ = [
    "Scope",
    "RelationBinding",
    "VertexBinding",
    "EdgeBinding",
    "PathBinding",
    "CompiledExpression",
    "compile_expression",
    "ExpressionCompiler",
    "SCALAR_FUNCTIONS",
    "make_accumulator",
    "is_aggregate_name",
]
