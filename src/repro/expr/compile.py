"""Compilation of AST expressions into row-evaluating closures.

``compile_expression(node, scope)`` returns a :class:`CompiledExpression`
whose ``fn(combined_row)`` evaluates the expression under SQL
three-valued logic (NULL = ``None``).

Quantified path predicates
--------------------------
A comparison containing a range reference like ``PS.Edges[0..*].Cost``
holds iff *every* element in the range satisfies it (Section 4 of the
paper). The compiler detects the (single) range reference inside an
atomic predicate and lowers the predicate to a loop over the designated
path elements.

Relational aggregates are **not** handled here — the planner rewrites
them to placeholder columns before compilation. Path aggregates such as
``SUM(PS.Edges.Weight)`` *are* scalar with respect to a row and are
compiled directly.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ExecutionError, PlanningError
from ..sql import ast
from ..types import SqlType, coerce
from .functions import SCALAR_FUNCTIONS, aggregate_over, is_aggregate_name
from .scope import (
    ColumnRef,
    EdgeAttrRef,
    PathCollectionRef,
    PathElementRef,
    PathEndpointRef,
    PathRangeRef,
    PathScalarRef,
    Scope,
    VertexAttrRef,
    WholeBindingRef,
)

Row = Sequence[Any]
Evaluator = Callable[[Row], Any]


class CompiledExpression:
    """An executable expression plus resolution metadata.

    ``has_parameters`` marks expressions containing ``?`` placeholders:
    their value may change between executions of a prepared plan, so the
    planner must never fold them at plan time.
    """

    __slots__ = ("fn", "slots", "aliases", "has_parameters")

    def __init__(
        self,
        fn: Evaluator,
        slots: Set[int],
        aliases: Set[str],
        has_parameters: bool = False,
    ):
        self.fn = fn
        self.slots = slots
        self.aliases = aliases
        self.has_parameters = has_parameters

    def __call__(self, row: Row) -> Any:
        return self.fn(row)


# ---------------------------------------------------------------------------
# three-valued logic helpers
# ---------------------------------------------------------------------------


def _and3(left: Any, right: Any) -> Any:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or3(left: Any, right: Any) -> Any:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _not3(value: Any) -> Any:
    if value is None:
        return None
    return not value


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _coerce_comparable(left: Any, right: Any):
    """Align mixed numeric/string operand types before comparison.

    Timestamps are stored as integers, so a date literal like
    ``'1/1/2000'`` must be coerced when compared against one — the same
    affinity behaviour the engine's DML layer applies on writes.
    """
    if isinstance(left, str) and isinstance(right, (int, float)) and not isinstance(
        right, bool
    ):
        return _string_as_number(left), right
    if isinstance(right, str) and isinstance(left, (int, float)) and not isinstance(
        left, bool
    ):
        return left, _string_as_number(right)
    return left, right


def _string_as_number(text: str) -> Any:
    try:
        return float(text) if "." in text or "e" in text.lower() else int(text)
    except ValueError:
        pass
    from ..types import timestamp_from_string

    try:
        return timestamp_from_string(text)
    except Exception:
        raise ExecutionError(
            f"cannot compare string {text!r} with a numeric value"
        ) from None


def compare(op: str, left: Any, right: Any) -> Any:
    """NULL-aware comparison with numeric/timestamp string affinity."""
    if left is None or right is None:
        return None
    try:
        return _COMPARATORS[op](left, right)
    except TypeError:
        pass
    left, right = _coerce_comparable(left, right)
    try:
        return _COMPARATORS[op](left, right)
    except TypeError:
        raise ExecutionError(
            f"cannot compare {type(left).__name__} {op} {type(right).__name__}"
        ) from None


def _like_to_regex(pattern: str) -> "re.Pattern":
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    return re.compile("".join(out), re.DOTALL)


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class ExpressionCompiler:
    def __init__(
        self,
        scope: Scope,
        overrides: Optional[Dict[int, Evaluator]] = None,
    ):
        self.scope = scope
        self._slots: Set[int] = set()
        self._aliases: Set[str] = set()
        # node-identity -> replacement closure. Pre-seeded overrides let
        # the planner substitute path-element references when compiling
        # pushed-down traversal filters; the compiler also adds its own
        # entries transiently while expanding quantified range predicates.
        self._overrides: Dict[int, Evaluator] = dict(overrides or {})
        self._has_parameters = False

    # ------------------------------ api -------------------------------

    def compile(self, node: ast.Expression) -> CompiledExpression:
        fn = self._compile(node)
        return CompiledExpression(
            fn,
            set(self._slots),
            set(self._aliases),
            has_parameters=self._has_parameters,
        )

    # --------------------------- dispatch -----------------------------

    def _compile(self, node: ast.Expression) -> Evaluator:
        if isinstance(node, ast.Literal):
            value = node.value
            return lambda row: value
        if isinstance(node, ast.Parameter):
            self._has_parameters = True
            return lambda row: node.value
        if isinstance(node, ast.Identifier):
            return self._lower_reference(self.scope.resolve_identifier(node.name))
        if isinstance(node, ast.FieldAccess):
            override = self._overrides.get(id(node))
            if override is not None:
                return override
            return self._lower_reference(self.scope.resolve_field_access(node))
        if isinstance(node, ast.UnaryOp):
            return self._compile_unary(node)
        if isinstance(node, ast.BinaryOp):
            return self._compile_binary(node)
        if isinstance(node, ast.InList):
            return self._compile_predicate_node(node)
        if isinstance(node, ast.Between):
            return self._compile_predicate_node(node)
        if isinstance(node, ast.IsNull):
            return self._compile_predicate_node(node)
        if isinstance(node, ast.Like):
            return self._compile_predicate_node(node)
        if isinstance(node, ast.FunctionCall):
            return self._compile_function(node)
        if isinstance(node, ast.CaseWhen):
            return self._compile_case(node)
        if isinstance(node, ast.Cast):
            return self._compile_cast(node)
        if isinstance(node, ast.CorrelatedSubquery):
            return self._compile_correlated_subquery(node)
        if isinstance(node, (ast.InSubquery, ast.ScalarSubquery, ast.ExistsSubquery)):
            raise PlanningError(
                "internal: subqueries must be materialized before compilation"
            )
        if isinstance(node, ast.Star):
            raise PlanningError("'*' is only valid in a select list or COUNT(*)")
        raise PlanningError(f"cannot compile expression node {type(node).__name__}")

    # --------------------------- operators ----------------------------

    def _compile_unary(self, node: ast.UnaryOp) -> Evaluator:
        operand = self._compile(node.operand)
        if node.op == "NOT":
            return lambda row: _not3(operand(row))
        if node.op == "-":
            def negate(row):
                value = operand(row)
                return None if value is None else -value

            return negate
        raise PlanningError(f"unknown unary operator {node.op}")

    def _compile_binary(self, node: ast.BinaryOp) -> Evaluator:
        op = node.op
        if op == "AND":
            left, right = self._compile(node.left), self._compile(node.right)
            return lambda row: _and3(left(row), right(row))
        if op == "OR":
            left, right = self._compile(node.left), self._compile(node.right)
            return lambda row: _or3(left(row), right(row))
        if op in _COMPARATORS:
            return self._compile_predicate_node(node)
        left, right = self._compile(node.left), self._compile(node.right)
        if op == "+":
            return _null_arith(left, right, lambda a, b: a + b)
        if op == "-":
            return _null_arith(left, right, lambda a, b: a - b)
        if op == "*":
            return _null_arith(left, right, lambda a, b: a * b)
        if op == "/":
            return _null_arith(left, right, _sql_divide)
        if op == "%":
            return _null_arith(left, right, _sql_modulo)
        if op == "||":
            return _null_arith(left, right, lambda a, b: str(a) + str(b))
        raise PlanningError(f"unknown binary operator {op}")

    # ---------------------- quantified predicates ---------------------

    def _find_range_refs(
        self, node: ast.Expression
    ) -> List[Tuple[ast.FieldAccess, PathRangeRef]]:
        found = []
        for sub in ast.walk_expression(node):
            if isinstance(sub, ast.FieldAccess) and id(sub) not in self._overrides:
                try:
                    reference = self.scope.resolve_field_access(sub)
                except PlanningError:
                    continue
                if isinstance(reference, PathRangeRef):
                    found.append((sub, reference))
        return found

    def _compile_predicate_node(self, node: ast.Expression) -> Evaluator:
        """Compile a comparison/LIKE/IN/BETWEEN/IS NULL, expanding one
        quantified path-range reference if present."""
        range_refs = self._find_range_refs(node)
        if not range_refs:
            return self._compile_atomic_predicate(node)
        if len(range_refs) > 1:
            raise PlanningError(
                "at most one Edges[i..j] / Vertexes[i..j] range reference "
                "is allowed per predicate"
            )
        access_node, reference = range_refs[0]
        self._note_reference(reference)
        cell: List[Any] = [None]
        self._overrides[id(access_node)] = lambda row: cell[0]
        inner = self._compile_atomic_predicate(node)
        del self._overrides[id(access_node)]
        binding = reference.binding
        slot = binding.slot
        view = binding.view
        start, end = reference.start, reference.end
        use_edges = reference.collection == "edges"
        read = (
            view.edge_attribute_reader(reference.attribute)
            if use_edges
            else view.vertex_attribute_reader(reference.attribute)
        )

        def quantified(row: Row) -> Any:
            path = row[slot]
            if path is None:
                return None
            elements = path.edges if use_edges else path.vertices
            stop = len(elements) - 1 if end is None else min(end, len(elements) - 1)
            result: Any = True
            for position in range(start, stop + 1):
                cell[0] = read(elements[position])
                verdict = inner(row)
                if verdict is False:
                    return False
                if verdict is None:
                    result = None
            return result

        return quantified

    def _compile_atomic_predicate(self, node: ast.Expression) -> Evaluator:
        if isinstance(node, ast.BinaryOp):
            op = node.op
            left, right = self._compile(node.left), self._compile(node.right)
            return lambda row: compare(op, left(row), right(row))
        if isinstance(node, ast.InList):
            operand = self._compile(node.operand)
            items = [self._compile(item) for item in node.items]
            negated = node.negated

            def in_list(row: Row) -> Any:
                value = operand(row)
                if value is None:
                    return None
                saw_null = False
                for item in items:
                    candidate = item(row)
                    if candidate is None:
                        saw_null = True
                    elif candidate == value:
                        return not negated
                if saw_null:
                    return None
                return negated

            return in_list
        if isinstance(node, ast.Between):
            operand = self._compile(node.operand)
            low = self._compile(node.low)
            high = self._compile(node.high)
            negated = node.negated

            def between(row: Row) -> Any:
                value = operand(row)
                lo, hi = low(row), high(row)
                verdict = _and3(compare("<=", lo, value), compare("<=", value, hi))
                return _not3(verdict) if negated else verdict

            return between
        if isinstance(node, ast.IsNull):
            operand = self._compile(node.operand)
            negated = node.negated
            return lambda row: (operand(row) is not None) == negated
        if isinstance(node, ast.Like):
            operand = self._compile(node.operand)
            pattern_fn = self._compile(node.pattern)
            negated = node.negated
            cache: Dict[str, "re.Pattern"] = {}

            def like(row: Row) -> Any:
                value = operand(row)
                pattern = pattern_fn(row)
                if value is None or pattern is None:
                    return None
                compiled = cache.get(pattern)
                if compiled is None:
                    compiled = _like_to_regex(pattern)
                    cache[pattern] = compiled
                matched = compiled.match(str(value)) is not None
                return matched != negated

            return like
        raise PlanningError(
            f"internal: {type(node).__name__} is not an atomic predicate"
        )

    # --------------------------- functions ----------------------------

    def _compile_function(self, node: ast.FunctionCall) -> Evaluator:
        name = node.name
        if is_aggregate_name(name):
            path_aggregate = self._try_compile_path_aggregate(node)
            if path_aggregate is not None:
                return path_aggregate
            raise PlanningError(
                f"aggregate {name} is not allowed in this context "
                "(should have been rewritten by the planner)"
            )
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise PlanningError(f"unknown function: {name}")
        args = [self._compile(arg) for arg in node.args]

        def call(row: Row) -> Any:
            return fn(*[arg(row) for arg in args])

        return call

    def _try_compile_path_aggregate(
        self, node: ast.FunctionCall
    ) -> Optional[Evaluator]:
        """``SUM(PS.Edges.Weight)`` and friends (Section 4)."""
        if len(node.args) != 1 or not isinstance(node.args[0], ast.FieldAccess):
            return None
        try:
            reference = self.scope.resolve_field_access(node.args[0])
        except PlanningError:
            return None
        if not isinstance(reference, PathCollectionRef):
            return None
        self._note_reference(reference)
        slot = reference.binding.slot
        view = reference.binding.view
        use_edges = reference.collection == "edges"
        read = (
            view.edge_attribute_reader(reference.attribute)
            if use_edges
            else view.vertex_attribute_reader(reference.attribute)
        )
        name = node.name
        distinct = node.distinct

        def path_aggregate(row: Row) -> Any:
            path = row[slot]
            if path is None:
                return None
            elements = path.edges if use_edges else path.vertices
            return aggregate_over(name, [read(e) for e in elements], distinct)

        return path_aggregate

    def _compile_correlated_subquery(
        self, node: ast.CorrelatedSubquery
    ) -> Evaluator:
        """Per-row evaluation: bind the live nodes from the outer row,
        re-run the (once-planned) inner operator tree, apply the
        IN / scalar / EXISTS semantics."""
        binding_fns = [self._compile(outer) for outer, _live in node.bindings]
        live_nodes = [live for _outer, live in node.bindings]
        operand = (
            self._compile(node.operand) if node.operand is not None else None
        )
        inner = node.plan.operator
        kind = node.kind
        negated = node.negated

        def run_inner(row: Row):
            for fn, live in zip(binding_fns, live_nodes):
                live.value = fn(row)
            return [tuple(r) for r in inner]

        if kind == "exists":

            def exists(row: Row) -> Any:
                return bool(run_inner(row)) != negated

            return exists
        if kind == "scalar":

            def scalar(row: Row) -> Any:
                rows = run_inner(row)
                if len(rows) > 1:
                    raise ExecutionError(
                        "scalar subquery returned more than one row"
                    )
                return rows[0][0] if rows else None

            return scalar

        def in_subquery(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for inner_row in run_inner(row):
                candidate = inner_row[0]
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return in_subquery

    def _compile_case(self, node: ast.CaseWhen) -> Evaluator:
        branches = [
            (self._compile(condition), self._compile(result))
            for condition, result in node.branches
        ]
        otherwise = (
            self._compile(node.otherwise) if node.otherwise is not None else None
        )

        def case(row: Row) -> Any:
            for condition, result in branches:
                if condition(row) is True:
                    return result(row)
            return otherwise(row) if otherwise is not None else None

        return case

    def _compile_cast(self, node: ast.Cast) -> Evaluator:
        operand = self._compile(node.operand)
        target = SqlType.from_name(node.type_name)
        return lambda row: coerce(operand(row), target, "CAST")

    # -------------------------- references ----------------------------

    def _note_reference(self, reference) -> None:
        binding = reference.binding
        self._slots.add(binding.slot)
        self._aliases.add(binding.alias.lower())

    def _lower_reference(self, reference) -> Evaluator:
        self._note_reference(reference)
        if isinstance(reference, ColumnRef):
            slot, position = reference.binding.slot, reference.position

            def column(row: Row) -> Any:
                tuple_value = row[slot]
                return None if tuple_value is None else tuple_value[position]

            return column
        if isinstance(reference, VertexAttrRef):
            slot = reference.binding.slot
            read = reference.binding.view.vertex_attribute_reader(
                reference.attribute
            )

            def vertex_attr(row: Row) -> Any:
                vertex = row[slot]
                return None if vertex is None else read(vertex)

            return vertex_attr
        if isinstance(reference, EdgeAttrRef):
            slot = reference.binding.slot
            read = reference.binding.view.edge_attribute_reader(
                reference.attribute
            )

            def edge_attr(row: Row) -> Any:
                edge = row[slot]
                return None if edge is None else read(edge)

            return edge_attr
        if isinstance(reference, PathScalarRef):
            slot = reference.binding.slot
            prop = reference.property_name

            def path_scalar(row: Row) -> Any:
                path = row[slot]
                if path is None:
                    return None
                if prop == "length":
                    return path.length
                if prop == "pathstring":
                    return path.path_string
                if prop == "startvertexid":
                    return path.start_vertex_id
                if prop == "endvertexid":
                    return path.end_vertex_id
                return path.cost  # 'cost'

            return path_scalar
        if isinstance(reference, PathEndpointRef):
            slot = reference.binding.slot
            which = reference.which
            read = reference.binding.view.vertex_attribute_reader(
                reference.attribute
            )

            def endpoint_attr(row: Row) -> Any:
                path = row[slot]
                if path is None:
                    return None
                vertex = path.start_vertex if which == "start" else path.end_vertex
                return read(vertex)

            return endpoint_attr
        if isinstance(reference, PathElementRef):
            slot = reference.binding.slot
            index = reference.index
            use_edges = reference.collection == "edges"
            view = reference.binding.view
            read = (
                view.edge_attribute_reader(reference.attribute)
                if use_edges
                else view.vertex_attribute_reader(reference.attribute)
            )

            def element_attr(row: Row) -> Any:
                path = row[slot]
                if path is None:
                    return None
                elements = path.edges if use_edges else path.vertices
                if index >= len(elements):
                    return None
                return read(elements[index])

            return element_attr
        if isinstance(reference, PathRangeRef):
            raise PlanningError(
                "a path range reference is only valid inside a predicate"
            )
        if isinstance(reference, PathCollectionRef):
            raise PlanningError(
                "an unindexed path collection reference is only valid inside "
                "an aggregate, e.g. SUM(PS.Edges.Weight)"
            )
        if isinstance(reference, WholeBindingRef):
            slot = reference.binding.slot
            return lambda row: row[slot]
        raise PlanningError(f"unhandled reference type {type(reference).__name__}")


def compile_expression(node: ast.Expression, scope: Scope) -> CompiledExpression:
    """Convenience wrapper: compile ``node`` against ``scope``."""
    return ExpressionCompiler(scope).compile(node)


# ---------------------------------------------------------------------------
# small arithmetic helpers
# ---------------------------------------------------------------------------


def _null_arith(left: Evaluator, right: Evaluator, fn) -> Evaluator:
    def arith(row: Row) -> Any:
        a, b = left(row), right(row)
        if a is None or b is None:
            return None
        return fn(a, b)

    return arith


def _sql_divide(a: Any, b: Any) -> Any:
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    return a / b


def _sql_modulo(a: Any, b: Any) -> Any:
    if b == 0:
        raise ExecutionError("modulo by zero")
    return a - b * int(a / b) if isinstance(a, int) and isinstance(b, int) else a % b
