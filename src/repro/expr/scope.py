"""Name resolution scopes for expression compilation.

A :class:`Scope` maps from-clause aliases to *bindings*. Each binding
owns one slot of the combined row that flows between operators:

* :class:`RelationBinding` — slot holds a relational tuple;
* :class:`VertexBinding` / :class:`EdgeBinding` — slot holds a graph
  Vertex / Edge (produced by VertexScan / EdgeScan);
* :class:`PathBinding` — slot holds a Path (produced by PathScan).

Resolution of a dotted chain like ``PS.Edges[0..*].Cost`` produces a
*reference descriptor* the compiler lowers to a closure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import PlanningError
from ..sql import ast
from ..storage.schema import TableSchema

# Path pseudo-properties handled without touching the relational sources.
_PATH_SCALARS = {
    "length",
    "pathstring",
    "startvertexid",
    "endvertexid",
    "cost",
}


class Binding:
    """Base class: an alias bound to one combined-row slot."""

    def __init__(self, alias: str, slot: int):
        self.alias = alias
        self.slot = slot


class RelationBinding(Binding):
    def __init__(self, alias: str, slot: int, schema: TableSchema):
        super().__init__(alias, slot)
        self.schema = schema


class VertexBinding(Binding):
    def __init__(self, alias: str, slot: int, view):
        super().__init__(alias, slot)
        self.view = view


class EdgeBinding(Binding):
    def __init__(self, alias: str, slot: int, view):
        super().__init__(alias, slot)
        self.view = view


class PathBinding(Binding):
    def __init__(self, alias: str, slot: int, view):
        super().__init__(alias, slot)
        self.view = view


# ---------------------------------------------------------------------------
# reference descriptors the compiler understands
# ---------------------------------------------------------------------------


class ColumnRef:
    """Relational column: ``row[slot][position]``."""

    __slots__ = ("binding", "position", "name")

    def __init__(self, binding: RelationBinding, position: int, name: str):
        self.binding = binding
        self.position = position
        self.name = name


class VertexAttrRef:
    """Attribute of a vertex object in a slot."""

    __slots__ = ("binding", "attribute")

    def __init__(self, binding: VertexBinding, attribute: str):
        self.binding = binding
        self.attribute = attribute


class EdgeAttrRef:
    """Attribute of an edge object in a slot."""

    __slots__ = ("binding", "attribute")

    def __init__(self, binding: EdgeBinding, attribute: str):
        self.binding = binding
        self.attribute = attribute


class PathScalarRef:
    """``PS.Length``, ``PS.PathString``, ``PS.StartVertexId``, ``PS.Cost``."""

    __slots__ = ("binding", "property_name")

    def __init__(self, binding: PathBinding, property_name: str):
        self.binding = binding
        self.property_name = property_name.lower()


class PathEndpointRef:
    """``PS.StartVertex.attr`` / ``PS.EndVertex.attr`` (attr may be Id)."""

    __slots__ = ("binding", "which", "attribute")

    def __init__(self, binding: PathBinding, which: str, attribute: str):
        self.binding = binding
        self.which = which  # 'start' | 'end'
        self.attribute = attribute


class PathElementRef:
    """``PS.Edges[i].attr`` — a single positioned element attribute."""

    __slots__ = ("binding", "collection", "index", "attribute")

    def __init__(
        self, binding: PathBinding, collection: str, index: int, attribute: str
    ):
        self.binding = binding
        self.collection = collection  # 'edges' | 'vertexes'
        self.index = index
        self.attribute = attribute


class PathRangeRef:
    """``PS.Edges[i..j].attr`` / ``PS.Edges[i..*].attr`` — a quantified
    reference: the enclosing predicate must hold for *every* element in
    the range (Section 4)."""

    __slots__ = ("binding", "collection", "start", "end", "attribute")

    def __init__(
        self,
        binding: PathBinding,
        collection: str,
        start: int,
        end: Optional[int],
        attribute: str,
    ):
        self.binding = binding
        self.collection = collection
        self.start = start
        self.end = end
        self.attribute = attribute


class PathCollectionRef:
    """``PS.Edges.attr`` with no index — only valid inside an aggregate
    (``SUM(PS.Edges.Weight)``)."""

    __slots__ = ("binding", "collection", "attribute")

    def __init__(self, binding: PathBinding, collection: str, attribute: str):
        self.binding = binding
        self.collection = collection
        self.attribute = attribute


class WholeBindingRef:
    """A bare alias used as a value (e.g. ``COUNT(P)``, ``SELECT TOP 2 PS``)."""

    __slots__ = ("binding",)

    def __init__(self, binding: Binding):
        self.binding = binding


Reference = Union[
    ColumnRef,
    VertexAttrRef,
    EdgeAttrRef,
    PathScalarRef,
    PathEndpointRef,
    PathElementRef,
    PathRangeRef,
    PathCollectionRef,
    WholeBindingRef,
]


class Scope:
    """Alias → binding map with SQL-style unqualified-column fallback."""

    def __init__(self, bindings: Sequence[Binding]):
        self.bindings: List[Binding] = list(bindings)
        self._by_alias: Dict[str, Binding] = {}
        for binding in bindings:
            key = binding.alias.lower()
            if key in self._by_alias:
                raise PlanningError(f"duplicate alias in FROM: {binding.alias}")
            self._by_alias[key] = binding

    @property
    def width(self) -> int:
        return len(self.bindings)

    def binding(self, alias: str) -> Optional[Binding]:
        return self._by_alias.get(alias.lower())

    def sub_scope(self, aliases: Sequence[str]) -> "Scope":
        """A scope restricted to ``aliases`` (same slots)."""
        return Scope([self._by_alias[a.lower()] for a in aliases])

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve_identifier(self, name: str) -> Reference:
        """A bare name: a column of exactly one relation, or an alias."""
        binding = self.binding(name)
        if binding is not None:
            return WholeBindingRef(binding)
        matches: List[Tuple[RelationBinding, int]] = []
        for candidate in self.bindings:
            if isinstance(candidate, RelationBinding) and candidate.schema.has_column(
                name
            ):
                matches.append((candidate, candidate.schema.position_of(name)))
        if len(matches) == 1:
            binding_, position = matches[0]
            return ColumnRef(binding_, position, name)
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column reference: {name}")
        # vertex/edge bindings may expose the attribute unqualified too
        element_matches: List[Reference] = []
        for candidate in self.bindings:
            if isinstance(candidate, VertexBinding) and candidate.view.has_vertex_attribute(
                name
            ):
                element_matches.append(VertexAttrRef(candidate, name))
            elif isinstance(candidate, EdgeBinding) and candidate.view.has_edge_attribute(
                name
            ):
                element_matches.append(EdgeAttrRef(candidate, name))
        if len(element_matches) == 1:
            return element_matches[0]
        if len(element_matches) > 1:
            raise PlanningError(f"ambiguous attribute reference: {name}")
        raise PlanningError(f"unknown column or alias: {name}")

    def resolve_field_access(self, node: ast.FieldAccess) -> Reference:
        binding = self.binding(node.base)
        if binding is None:
            # could be ``table.column`` where ``table`` is the table name
            raise PlanningError(
                f"unknown alias {node.base!r} in expression"
            )
        accessors = node.accessors
        if isinstance(binding, RelationBinding):
            return self._resolve_relation_access(binding, accessors)
        if isinstance(binding, VertexBinding):
            return self._resolve_element_access(
                binding, accessors, VertexAttrRef, "vertex"
            )
        if isinstance(binding, EdgeBinding):
            return self._resolve_element_access(
                binding, accessors, EdgeAttrRef, "edge"
            )
        if isinstance(binding, PathBinding):
            return self._resolve_path_access(binding, accessors)
        raise PlanningError(f"cannot access members of alias {node.base!r}")

    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_relation_access(
        binding: RelationBinding, accessors: Sequence[ast.Node]
    ) -> Reference:
        if len(accessors) == 1 and isinstance(accessors[0], ast.NameAccessor):
            name = accessors[0].name
            return ColumnRef(binding, binding.schema.position_of(name), name)
        raise PlanningError(
            f"invalid column access on relation {binding.alias!r}"
        )

    @staticmethod
    def _resolve_element_access(binding, accessors, ref_class, kind: str) -> Reference:
        if len(accessors) == 1 and isinstance(accessors[0], ast.NameAccessor):
            name = accessors[0].name
            has = (
                binding.view.has_vertex_attribute(name)
                if kind == "vertex"
                else binding.view.has_edge_attribute(name)
            )
            if not has:
                raise PlanningError(
                    f"graph view {binding.view.name} has no {kind} "
                    f"attribute {name!r}"
                )
            return ref_class(binding, name)
        raise PlanningError(f"invalid {kind} attribute access on {binding.alias!r}")

    def _resolve_path_access(
        self, binding: PathBinding, accessors: Sequence[ast.Node]
    ) -> Reference:
        first = accessors[0]
        if not isinstance(first, ast.NameAccessor):
            raise PlanningError(
                f"path alias {binding.alias!r} cannot be indexed directly"
            )
        head = first.name.lower()
        rest = accessors[1:]
        if head in _PATH_SCALARS:
            if rest:
                raise PlanningError(
                    f"path property {first.name} takes no further accessors"
                )
            return PathScalarRef(binding, head)
        if head in ("startvertex", "endvertex"):
            which = "start" if head == "startvertex" else "end"
            if not rest:
                # bare StartVertex/EndVertex compares by vertex identifier
                return PathEndpointRef(binding, which, "Id")
            if len(rest) == 1 and isinstance(rest[0], ast.NameAccessor):
                return PathEndpointRef(binding, which, rest[0].name)
            raise PlanningError(f"invalid accessor after {first.name}")
        if head in ("edges", "vertexes", "vertices"):
            collection = "edges" if head == "edges" else "vertexes"
            return self._resolve_collection_access(binding, collection, rest)
        raise PlanningError(
            f"unknown path property {first.name!r} on {binding.alias!r}"
        )

    def _resolve_collection_access(
        self,
        binding: PathBinding,
        collection: str,
        rest: Sequence[ast.Node],
    ) -> Reference:
        view = binding.view
        def check_attribute(name: str) -> None:
            has = (
                view.has_edge_attribute(name)
                if collection == "edges"
                else view.has_vertex_attribute(name)
            )
            if not has:
                kind = "edge" if collection == "edges" else "vertex"
                raise PlanningError(
                    f"graph view {view.name} has no {kind} attribute {name!r}"
                )

        if len(rest) == 1 and isinstance(rest[0], ast.NameAccessor):
            name = rest[0].name
            check_attribute(name)
            return PathCollectionRef(binding, collection, name)
        if len(rest) == 2 and isinstance(rest[1], ast.NameAccessor):
            selector, attr_node = rest
            name = attr_node.name
            check_attribute(name)
            if isinstance(selector, ast.IndexAccessor):
                return PathElementRef(binding, collection, selector.index, name)
            if isinstance(selector, ast.RangeAccessor):
                if selector.end is not None and selector.end < selector.start:
                    raise PlanningError(
                        f"invalid path range [{selector.start}..{selector.end}]"
                    )
                if selector.end is not None and selector.end == selector.start:
                    return PathElementRef(
                        binding, collection, selector.start, name
                    )
                return PathRangeRef(
                    binding, collection, selector.start, selector.end, name
                )
        if len(rest) == 1 and isinstance(rest[0], ast.IndexAccessor):
            raise PlanningError(
                f"indexed path element needs an attribute, e.g. "
                f"{binding.alias}.Edges[{rest[0].index}].attr"
            )
        raise PlanningError(
            f"invalid path collection access on {binding.alias!r}"
        )
