"""Pure-Python client for the repro network server."""

from .client import Client, Prepared

__all__ = ["Client", "Prepared"]
