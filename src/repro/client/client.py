"""A pure-Python, cluster-aware client for the repro wire protocol.

::

    from repro.client import Client

    with Client("127.0.0.1", 7070) as client:
        client.execute("INSERT INTO Users VALUES (1, 'ann')")
        result = client.execute(
            "SELECT PS.PathString FROM G.Paths PS WHERE PS.Length = 2")
        for row in result.rows:
            ...

    # cluster mode: a seed list instead of one address
    with Client(seeds=["10.0.0.1:7070", "10.0.0.2:7070",
                       "10.0.0.3:7070"]) as client:
        client.execute("INSERT INTO Users VALUES (2, 'bob')")

Server-side failures surface as :class:`~repro.errors.RemoteError`
carrying the **stable** wire code (``error.code == "TIMEOUT"``,
``"OVERLOADED"``, ``"READ_ONLY"``...); transport failures surface as
:class:`~repro.errors.ClientConnectionError`.

Reconnect policy (``reconnect=True``): when the connection drops the
client transparently redials — under the shared
:class:`~repro.resilience.retry.RetryPolicy`, so repeated dials back
off with jitter instead of hammering a restarting server — and retries
the request, but only when it is safe to repeat (SELECT / EXPLAIN
statements, PING, METRICS, SET_BUDGET). A write whose frame may have
reached the server is *never* retried: its outcome is unknown, and
retrying could apply it twice; the caller gets
:class:`ClientConnectionError` and decides. Prepared statements are
re-prepared automatically after a reconnect.

Cluster awareness (``seeds=[...]``): the client dials the first
reachable seed, reads the node's ``leader`` hint from ``HELLO_OK``, and
follows it to the primary (bounded hops). When a statement lands on a
non-primary node the server answers ``NOT_PRIMARY`` with a
``leader_hint`` — **rejected before execution**, so the client follows
the hint and retries even a write, bounded by the retry policy. A
failover mid-session is just both policies composing: the dead primary
drops the connection (reads retry through the seed list, writes raise),
and the next statement chases ``NOT_PRIMARY`` hints to the new primary.

Replica reads (``read_preference="replica", max_lag=N``): idempotent
statements are routed to a replica over a second internal connection,
with the replica's apply lag checked against ``max_lag`` via ``HEALTH``
(rechecked every ``lag_check_interval`` seconds). A stale, quarantined,
or unreachable replica silently falls back to the primary — the
preference trades bounded staleness for primary offload, never
availability.

Distributed tracing: when tracing is enabled (the default), every
``QUERY`` / ``PREPARE`` / ``EXECUTE`` frame is stamped with a
traceparent-style ``trace`` value minted per statement, and the client
records the root span locally. The stamp is applied *before* the retry
loops, so a write bounced around by ``NOT_PRIMARY`` or ``OVERLOADED``
keeps one trace_id across every hop — :meth:`Client.traces` (or a
node's HTTP ``/traces``) then shows the full journey.

Backpressure policy: an ``OVERLOADED`` error means the server's write
queue was full and the statement was **never admitted** — uniquely
safe to retry, write or not. The client honors the pushback by backing
off under the same policy before retrying, a bounded number of times;
``client.stats`` and the ``repro_client_*`` metrics expose how often
that happened.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.result import ResultSet
from ..errors import ClientConnectionError, ProtocolError, RemoteError
from ..observability import tracing as observability_tracing
from ..observability.metrics import recording_registry
from ..resilience.retry import RetryPolicy
from ..server import protocol

#: Statement prefixes that are safe to retry after a reconnect.
_IDEMPOTENT_PREFIXES = ("SELECT", "EXPLAIN", "WITH")

#: HELLO_OK leader-hint hops before giving up on redirect chasing (a
#: cluster mid-election can point nodes at each other transiently).
_MAX_LEADER_HOPS = 5

_READ_PREFERENCES = ("primary", "replica")


def default_client_retry() -> RetryPolicy:
    """The client's default backoff: 4 attempts, 50ms..1s, jittered
    (the jitter is what keeps a fleet of clients from re-dialing a
    restarted server in lockstep)."""
    return RetryPolicy(
        base_delay=0.05, max_delay=1.0, multiplier=2.0, jitter=0.25,
        max_attempts=4,
    )


def strip_leading_sql_comments(sql: str) -> str:
    """``sql`` with leading whitespace, ``--`` line comments, and
    ``/* */`` block comments removed.

    Retry classification must see the first *token*, not the first
    character: ``-- audit\\nDELETE FROM t`` starts with a comment but is
    very much not idempotent, and ``/* hint */ SELECT ...`` is a read
    that deserves its retry. An unterminated comment yields ``""``
    (classified non-idempotent — the server will reject it anyway).
    """
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
        elif sql.startswith("--", i):
            newline = sql.find("\n", i + 2)
            if newline == -1:
                return ""
            i = newline + 1
        elif sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                return ""
            i = end + 2
        else:
            break
    return sql[i:]


def _is_idempotent_sql(sql: str) -> bool:
    return strip_leading_sql_comments(sql).upper().startswith(
        _IDEMPOTENT_PREFIXES
    )


AddressSpec = Union[str, Tuple[str, int], List]


def _parse_address(spec: AddressSpec) -> Tuple[str, int]:
    """``(host, port)`` from ``"host:port"``, ``"port"``-less tuples, or
    a bare port string (host defaults to loopback)."""
    if isinstance(spec, (tuple, list)):
        if len(spec) != 2:
            raise ValueError(f"address must be (host, port), got {spec!r}")
        return str(spec[0]), int(spec[1])
    text = str(spec).strip()
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1"), int(port or text)


class Prepared:
    """A client-side handle to a server-side prepared statement."""

    def __init__(self, client: "Client", sql: str, handle: str,
                 params: int, columns: List[str]):
        self._client = client
        self.sql = sql
        self.handle = handle
        self.parameter_count = params
        self.columns = columns

    def execute(self, *params: Any,
                budget: Optional[Dict[str, Any]] = None) -> ResultSet:
        return self._client._execute_prepared(self, params, budget)

    def __repr__(self) -> str:
        return f"Prepared({self.sql!r}, handle={self.handle!r})"


class Client:
    """One connection to a repro server or cluster (thread-safe: one
    request at a time, serialized by an internal lock).

    Address either a single server (``Client(host, port)``) or a
    cluster (``Client(seeds=["h1:7070", "h2:7070", ...])``); with
    seeds, the client discovers the primary and keeps following it
    across failovers.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        auth: Optional[str] = None,
        session: Optional[str] = None,
        timeout: Optional[float] = None,
        connect_timeout: float = 5.0,
        reconnect: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        seeds: Optional[Sequence[AddressSpec]] = None,
        read_preference: str = "primary",
        max_lag: Optional[int] = None,
        lag_check_interval: float = 1.0,
        follow_leader: bool = True,
        prefer_role: Optional[str] = None,
    ):
        self.seeds: List[Tuple[str, int]] = [
            _parse_address(spec) for spec in (seeds or [])
        ]
        if host is None and not self.seeds:
            raise ValueError("Client needs a host/port or a seeds list")
        if read_preference not in _READ_PREFERENCES:
            raise ValueError(
                f"read_preference must be one of {_READ_PREFERENCES}, "
                f"got {read_preference!r}"
            )
        if host is not None:
            self.host, self.port = str(host), int(port)
        else:
            self.host, self.port = self.seeds[0]
        #: The address this client was pointed at originally. A leader
        #: chase rewrites host/port to wherever the connection settles,
        #: so without this a seedless client that followed a hint to
        #: the primary would forget the (still live) node it first
        #: dialed and have no way back after the primary dies.
        self._initial_address: Tuple[str, int] = (self.host, self.port)
        self.auth = auth
        self.session = session
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        #: Shared backoff for redials, OVERLOADED and NOT_PRIMARY retries.
        self.retry_policy = retry_policy or default_client_retry()
        self.read_preference = read_preference
        self.max_lag = max_lag
        self.lag_check_interval = lag_check_interval
        #: Chase HELLO_OK leader hints to the primary (the replica-read
        #: connection turns this off — it *wants* a non-primary).
        self.follow_leader = follow_leader
        #: Prefer connecting to a node with this role ("replica") when
        #: one is reachable; fall back to whatever answers.
        self.prefer_role = prefer_role
        #: Attempt counters: how often this client was pushed back,
        #: had to redial, or chased a leader redirect.
        self.stats: Dict[str, int] = {
            "reconnects": 0,
            "reconnect_attempts": 0,
            "overloaded_retries": 0,
            "overloaded_gave_up": 0,
            "leader_redirects": 0,
            "shard_redirects": 0,
            "replica_reads": 0,
            "replica_fallbacks": 0,
        }
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._next_id = 0
        #: Server-assigned session name, role, and node (from HELLO_OK).
        self.session_name: Optional[str] = None
        self.server_role: Optional[str] = None
        self.server_node: Optional[str] = None
        #: Last known primary address, from HELLO_OK / NOT_PRIMARY hints.
        self._leader: Optional[Tuple[str, int]] = None
        #: Session budget, replayed after a reconnect.
        self._budget: Optional[Dict[str, Any]] = None
        #: Live Prepared handles, re-prepared after a reconnect.
        self._prepared: List[Prepared] = []
        #: The replica-read side connection (lazy) and its lag verdict.
        self._replica_lock = threading.Lock()
        self._replica_client: Optional["Client"] = None
        self._replica_fresh_until = 0.0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def connect(self) -> "Client":
        with self._lock:
            self._connect_locked()
        return self

    def _candidates(self) -> List[Tuple[str, int]]:
        """Dial order: believed leader first (when chasing leaders),
        then the current target, then every seed."""
        ordered: List[Tuple[str, int]] = []
        if self.follow_leader and self._leader is not None:
            ordered.append(self._leader)
        ordered.append((self.host, self.port))
        ordered.extend(self.seeds)
        ordered.append(self._initial_address)
        seen = set()
        unique = []
        for address in ordered:
            if address not in seen:
                seen.add(address)
                unique.append(address)
        return unique

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        last_error: Optional[Exception] = None
        fallback: Optional[Tuple[str, int]] = None
        for address in self._candidates():
            hops = 0
            while True:
                try:
                    sock, reply = self._handshake(address)
                except ClientConnectionError as error:
                    last_error = error
                    break  # unreachable: try the next candidate
                role = reply.get("role")
                leader = self._hint_address(reply.get("leader"))
                if leader is not None:
                    self._leader = leader
                if (
                    self.follow_leader
                    and role != "primary"
                    and leader is not None
                    and leader != address
                    and hops < _MAX_LEADER_HOPS
                ):
                    # connected to a non-primary that knows the leader:
                    # follow the hint instead of settling — but remember
                    # this reachable node, so a dead hint (the old
                    # primary, mid-election) degrades to a live replica
                    # connection instead of no connection at all
                    if fallback is None:
                        fallback = address
                    sock.close()
                    address = leader
                    hops += 1
                    self.stats["leader_redirects"] += 1
                    continue
                if (
                    self.prefer_role is not None
                    and role != self.prefer_role
                    and fallback is None
                ):
                    # reachable but not the role we prefer; remember it
                    # and keep looking (we re-dial it if nothing better)
                    fallback = address
                    sock.close()
                    break
                self._adopt_connection(sock, reply, address)
                return
        if fallback is not None:
            try:
                sock, reply = self._handshake(fallback)
            except ClientConnectionError as error:
                last_error = error
            else:
                self._adopt_connection(sock, reply, fallback)
                return
        if isinstance(last_error, Exception):
            raise last_error
        raise ClientConnectionError(
            f"no reachable server among {self._candidates()}"
        )

    def _handshake(
        self, address: Tuple[str, int]
    ) -> Tuple[socket.socket, Dict[str, Any]]:
        """Dial one address and run HELLO; ``(socket, HELLO_OK)``.

        Raises :class:`ClientConnectionError` for transport problems
        (the caller tries the next candidate) and :class:`RemoteError`
        for a server rejection like ``AUTH_FAILED`` (fatal: every node
        of the cluster shares the auth config; trying the rest of the
        seed list would just fail four more times).
        """
        host, port = address
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as error:
            raise ClientConnectionError(
                f"cannot connect to {host}:{port}: {error}"
            )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.timeout)
        hello: Dict[str, Any] = {
            "type": "HELLO", "protocol": protocol.PROTOCOL_VERSION,
        }
        if self.auth is not None:
            hello["auth"] = self.auth
        if self.session is not None:
            hello["session"] = self.session
        try:
            protocol.send_frame(sock, hello)
            reply = protocol.read_frame(sock)
        except (OSError, ProtocolError) as error:
            sock.close()
            raise ClientConnectionError(f"handshake failed: {error}")
        if reply is None:
            sock.close()
            raise ClientConnectionError("server closed during handshake")
        if reply.get("type") == "ERROR":
            sock.close()
            raise RemoteError(
                reply.get("code", "INTERNAL_ERROR"),
                reply.get("message", "handshake rejected"),
            )
        if reply.get("type") != "HELLO_OK":
            sock.close()
            raise ClientConnectionError(
                f"unexpected handshake reply: {reply.get('type')!r}"
            )
        return sock, reply

    def _adopt_connection(self, sock, reply, address) -> None:
        self._sock = sock
        self.host, self.port = address
        self.session_name = reply.get("session")
        self.server_role = reply.get("role")
        self.server_node = reply.get("node")
        try:
            self._restore_session_state()
        except ClientConnectionError:
            self._drop_connection()
            raise

    @staticmethod
    def _hint_address(hint) -> Optional[Tuple[str, int]]:
        if isinstance(hint, dict) and hint.get("host") and hint.get("port"):
            return (str(hint["host"]), int(hint["port"]))
        return None

    def _restore_session_state(self) -> None:
        """Replay budget and prepared statements on the new connection.

        Runs with ``self._lock`` already held (we are called from
        ``_connect_locked``), so this must go straight to
        ``_roundtrip_locked`` — re-entering ``_roundtrip`` would
        deadlock on the non-reentrant request lock.
        """
        if self._budget is not None:
            self._roundtrip_locked(
                {"type": "SET_BUDGET", "budget": self._budget}, until=None
            )
        for prepared in self._prepared:
            reply = self._roundtrip_locked(
                {"type": "PREPARE", "sql": prepared.sql}, until=None
            )[0]
            prepared.handle = reply["statement"]

    def close(self) -> None:
        with self._replica_lock:
            self._drop_replica_locked()
        with self._lock:
            sock = self._sock
            self._sock = None
            if sock is None:
                return
            try:
                protocol.send_frame(sock, {"type": "CLOSE"})
                protocol.read_frame(sock)  # GOODBYE (best effort)
            except (OSError, ProtocolError):
                pass
            finally:
                sock.close()

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, sql: str,
                budget: Optional[Dict[str, Any]] = None,
                read_preference: Optional[str] = None) -> ResultSet:
        """Run one statement; returns a real
        :class:`~repro.core.result.ResultSet`.

        ``read_preference`` overrides the client-level preference for
        this one statement; only idempotent reads are ever routed to a
        replica, and only within the client's ``max_lag`` bound.
        """
        preference = read_preference or self.read_preference
        if preference not in _READ_PREFERENCES:
            raise ValueError(
                f"read_preference must be one of {_READ_PREFERENCES}, "
                f"got {preference!r}"
            )
        idempotent = _is_idempotent_sql(sql)
        if preference == "replica" and idempotent:
            result = self._replica_read(sql, budget)
            if result is not None:
                return result
        message: Dict[str, Any] = {"type": "QUERY", "sql": sql}
        if budget is not None:
            message["budget"] = budget
        trace = self._stamp_trace(message)
        if trace is None:
            return self._collect_result(
                message, retry=self.reconnect and idempotent
            )
        with observability_tracing.span(
            "client.execute", context=trace, own=True,
            sql=strip_leading_sql_comments(sql)[:80],
        ):
            return self._collect_result(
                message, retry=self.reconnect and idempotent
            )

    def prepare(self, sql: str) -> Prepared:
        message: Dict[str, Any] = {"type": "PREPARE", "sql": sql}
        trace = self._stamp_trace(message)
        if trace is None:
            reply = self._request(message, retry=self.reconnect)
        else:
            with observability_tracing.span(
                "client.prepare", context=trace, own=True,
                sql=strip_leading_sql_comments(sql)[:80],
            ):
                reply = self._request(message, retry=self.reconnect)
        prepared = Prepared(
            self, sql, reply["statement"],
            reply.get("params", 0), reply.get("columns", []),
        )
        self._prepared.append(prepared)
        return prepared

    def _execute_prepared(self, prepared: Prepared, params, budget) -> ResultSet:
        message: Dict[str, Any] = {
            "type": "EXECUTE",
            "statement": prepared.handle,
            "params": protocol.jsonable_row(params),
        }
        if budget is not None:
            message["budget"] = budget
        trace = self._stamp_trace(message)
        if trace is None:
            # prepared statements are SELECT-only, hence always retryable
            return self._collect_result(message, retry=self.reconnect)
        with observability_tracing.span(
            "client.execute", context=trace, own=True,
            statement=prepared.handle,
        ):
            return self._collect_result(message, retry=self.reconnect)

    def _stamp_trace(
        self, message: Dict[str, Any]
    ) -> Optional[observability_tracing.TraceContext]:
        """Stamp a trace context on ``message``.

        Inside an active trace (a router fanning a client's statement
        out to its shards) the stamp is a *child* of the ambient
        context, so every hop of the fan-out shares the original
        trace_id; otherwise a fresh root is minted. Stamping happens
        *before* the retry loops, so an OVERLOADED backoff or a
        NOT_PRIMARY leader chase re-sends the same ``trace`` value —
        the whole journey shares one trace_id. Returns ``None``
        (nothing stamped) when tracing is disabled.
        """
        collector = observability_tracing.recording_collector()
        if collector is None:
            return None
        ambient = observability_tracing.current_trace()
        if ambient is not None and ambient.sampled:
            context = ambient.child()
        else:
            context = observability_tracing.TraceContext.new(
                sampled=collector.sample()
            )
        if context.sampled:
            message["trace"] = context.to_wire()
        return context if context.sampled else None

    def set_budget(self, budget: Optional[Dict[str, Any]]) -> None:
        """Install (or clear, with None) the session-level budget."""
        self._request({"type": "SET_BUDGET", "budget": budget},
                      retry=self.reconnect)
        self._budget = budget

    def ping(self) -> bool:
        return self._request({"type": "PING"},
                             retry=self.reconnect)["type"] == "PONG"

    def metrics(self, filter: Optional[str] = None) -> str:
        """The server's metrics in Prometheus text format."""
        message: Dict[str, Any] = {"type": "METRICS"}
        if filter is not None:
            message["filter"] = filter
        return self._request(message, retry=self.reconnect)["text"]

    def health(self) -> Dict[str, Any]:
        """The server's HEALTH report: health state, liveness,
        read/write readiness, supervisor counters when a supervisor
        runs the node, and — on a cluster node — the ``replication``
        section (role, epoch, apply lag, leader)."""
        reply = self._request({"type": "HEALTH"}, retry=self.reconnect)
        return {
            key: value
            for key, value in reply.items()
            if key not in ("type", "id")
        }

    def traces(
        self,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Finished spans from the server's collector (oldest first),
        optionally filtered to one ``trace_id``. On a cluster, each node
        answers with *its* spans — stitching a cross-node trace means
        asking every node (or the HTTP ``/traces`` endpoints) and
        merging on ``trace_id``."""
        message: Dict[str, Any] = {"type": "TRACES"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        if limit is not None:
            message["limit"] = limit
        return self._request(message, retry=self.reconnect).get("spans", [])

    def events(
        self,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """The server's structured event journal (oldest first),
        optionally filtered by ``kind`` (``election_won``,
        ``epoch_bump``, ``health``, ...)."""
        message: Dict[str, Any] = {"type": "EVENTS"}
        if kind is not None:
            message["kind"] = kind
        if limit is not None:
            message["limit"] = limit
        return self._request(message, retry=self.reconnect).get("events", [])

    def slow_queries(self) -> Dict[str, Any]:
        """The server's slow-query log: ``{node, threshold_ms,
        entries}``, each entry carrying sql, elapsed_ms, session,
        trace_id and node attribution."""
        reply = self._request({"type": "SLOWLOG"}, retry=self.reconnect)
        return {
            key: value
            for key, value in reply.items()
            if key not in ("type", "id")
        }

    def shard_state(self) -> Dict[str, Any]:
        """The endpoint's SHARD_STATE report. A router answers
        ``{"sharded": True, "map": ..., "shards": [...], "routing":
        {...}}``; a plain server answers ``{"sharded": False, "shard":
        identity-or-None}``, so probes need no special case."""
        reply = self._request({"type": "SHARD_STATE"}, retry=self.reconnect)
        return {
            key: value
            for key, value in reply.items()
            if key not in ("type", "id")
        }

    def cluster_state(self) -> Dict[str, Any]:
        """The node's CLUSTER_STATE report: its role, epoch, log
        position, lag, believed leader, and last known peer states
        (standalone servers answer with role and no topology)."""
        reply = self._request(
            {"type": "CLUSTER_STATE"}, retry=self.reconnect
        )
        return {
            key: value
            for key, value in reply.items()
            if key not in ("type", "id")
        }

    # ------------------------------------------------------------------
    # replica reads
    # ------------------------------------------------------------------

    def _replica_read(self, sql, budget) -> Optional[ResultSet]:
        """Serve one idempotent read from a replica, or ``None`` to
        fall back to the primary (stale, quarantined, unreachable, or
        no replica exists). Fallback is silent by design: a degraded
        replica tier costs freshness headroom, never availability."""
        with self._replica_lock:
            try:
                client = self._replica_client_locked()
                if client is None or not self._replica_fresh_locked(client):
                    self.stats["replica_fallbacks"] += 1
                    return None
                result = client.execute(sql, budget=budget)
                self.stats["replica_reads"] += 1
                self._count("repro_client_replica_reads_total")
                return result
            except (ClientConnectionError, RemoteError):
                self._drop_replica_locked()
                self.stats["replica_fallbacks"] += 1
                self._count("repro_client_replica_fallbacks_total")
                return None

    def _replica_client_locked(self) -> Optional["Client"]:
        if self._replica_client is not None:
            return self._replica_client
        seeds = self.seeds or [(self.host, self.port)]
        client = Client(
            auth=self.auth,
            timeout=self.timeout,
            connect_timeout=self.connect_timeout,
            reconnect=True,
            retry_policy=self.retry_policy,
            seeds=seeds,
            follow_leader=False,
            prefer_role="replica",
        )
        client.connect()
        self._replica_client = client
        self._replica_fresh_until = 0.0
        return client

    def _replica_fresh_locked(self, client: "Client") -> bool:
        """True when the replica connection may serve reads: role still
        replica, not quarantined, apply lag within ``max_lag``. The
        verdict is cached for ``lag_check_interval`` seconds so every
        read does not cost an extra HEALTH round trip."""
        now = time.monotonic()
        if now < self._replica_fresh_until:
            return True
        health = client.health()
        replication = health.get("replication")
        if replication is None:
            # a standalone server: the only node there is, hence as
            # fresh as it gets
            self._replica_fresh_until = now + self.lag_check_interval
            return True
        if replication.get("role") != "replica":
            # the node was promoted under us: it is now the primary, so
            # reading from it defeats the preference — repick next time
            self._drop_replica_locked()
            return False
        if replication.get("quarantined"):
            self._drop_replica_locked()
            return False
        lag = replication.get("lag")
        if self.max_lag is not None and (lag is None or lag > self.max_lag):
            # stale beyond the bound: this read goes to the primary,
            # but keep the connection — the replica is catching up
            return False
        self._replica_fresh_until = now + self.lag_check_interval
        return True

    def _drop_replica_locked(self) -> None:
        client = self._replica_client
        self._replica_client = None
        self._replica_fresh_until = 0.0
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------

    def _collect_result(self, message, retry: bool) -> ResultSet:
        frames = self._roundtrip(message, retry=retry, until="RESULT_END")
        columns: List[str] = []
        rows: List[Tuple] = []
        rowcount = 0
        for frame in frames:
            kind = frame["type"]
            if kind == "RESULT_HEAD":
                columns = frame.get("columns", [])
            elif kind == "ROWS":
                rows.extend(tuple(row) for row in frame.get("rows", []))
            elif kind == "RESULT_END":
                rowcount = frame.get("rowcount", 0)
        return ResultSet(columns or None, rows, rowcount=rowcount)

    def _request(self, message, retry: bool) -> Dict[str, Any]:
        """One request expecting exactly one reply frame."""
        return self._roundtrip(message, retry=retry, until=None)[0]

    def _roundtrip(self, message, retry: bool, until: Optional[str]):
        """One request with the backpressure and redirect loops around it.

        OVERLOADED means the statement was never admitted to the write
        queue, so retrying can never double-apply — and NOT_PRIMARY
        means it was rejected before execution on a node that is not
        the leader, so following the ``leader_hint`` and retrying is
        equally safe, *even for writes*. Both backoffs happen outside
        the request lock: sleeping while holding it would stall every
        other thread sharing this client.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._roundtrip_transport(message, retry, until)
            except RemoteError as error:
                policy = self.retry_policy
                give_up = (
                    policy.max_attempts is not None
                    and attempt >= policy.max_attempts
                )
                if error.code == "NOT_PRIMARY" and self.reconnect:
                    if give_up:
                        raise
                    hint = self._hint_address(error.leader_hint)
                    with self._lock:
                        if hint is not None:
                            self._leader = hint
                        self._drop_connection()
                    self.stats["leader_redirects"] += 1
                    self._count("repro_client_leader_redirects_total")
                    if hint is None:
                        # mid-election: nobody knows the leader yet;
                        # back off and rediscover through the seeds
                        policy.sleep(policy.delay(attempt))
                    continue
                if error.code == "SHARD_REDIRECT" and self.reconnect:
                    # rejected before execution by a shard that does not
                    # own the key: safe to retry (even writes), and the
                    # redial re-reads HELLO/seeds, so a router in front
                    # of the shards picks the statement up correctly
                    if give_up:
                        raise
                    with self._lock:
                        self._drop_connection()
                    self.stats["shard_redirects"] += 1
                    self._count("repro_client_shard_redirects_total")
                    policy.sleep(policy.delay(attempt))
                    continue
                if error.code != "OVERLOADED":
                    raise
                if give_up:
                    self.stats["overloaded_gave_up"] += 1
                    self._count("repro_client_overload_giveups_total")
                    raise
                self.stats["overloaded_retries"] += 1
                self._count("repro_client_overload_retries_total")
                policy.sleep(policy.delay(attempt))

    def _roundtrip_transport(self, message, retry: bool, until: Optional[str]):
        with self._lock:
            try:
                return self._roundtrip_locked(message, until)
            except ClientConnectionError:
                self._drop_connection()
                if not retry or not self.reconnect:
                    raise
            # The request never produced a reply and is safe to repeat:
            # redial under the shared policy (backed off, jittered),
            # then retry the request on the fresh connection.
            policy = self.retry_policy
            dial = 0
            while True:
                dial += 1
                self.stats["reconnect_attempts"] += 1
                try:
                    self._connect_locked()
                except ClientConnectionError:
                    self._drop_connection()
                    if (
                        policy.max_attempts is not None
                        and dial >= policy.max_attempts
                    ):
                        raise
                    policy.sleep(policy.delay(dial))
                    continue
                self.stats["reconnects"] += 1
                self._count("repro_client_reconnects_total")
                try:
                    return self._roundtrip_locked(message, until)
                except ClientConnectionError:
                    self._drop_connection()
                    raise

    def _count(self, name: str) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                name, help="Client retry/backoff events."
            ).inc()

    def _roundtrip_locked(self, message, until: Optional[str]):
        if self._sock is None:
            if not self.reconnect:
                raise ClientConnectionError("client is not connected")
            self._connect_locked()
        self._next_id += 1
        message = dict(message)
        message.setdefault("id", self._next_id)
        try:
            protocol.send_frame(self._sock, message)
        except OSError as error:
            raise ClientConnectionError(f"send failed: {error}")
        frames = []
        while True:
            try:
                frame = protocol.read_frame(self._sock)
            except (OSError, ProtocolError, socket.timeout) as error:
                raise ClientConnectionError(f"receive failed: {error}")
            if frame is None:
                raise ClientConnectionError(
                    "server closed the connection mid-request"
                )
            if frame.get("type") == "ERROR":
                raise RemoteError(
                    frame.get("code", "INTERNAL_ERROR"),
                    frame.get("message", "server error"),
                    leader_hint=frame.get("leader_hint"),
                    shard_hint=frame.get("shard_hint"),
                )
            frames.append(frame)
            if until is None or frame.get("type") == until:
                return frames

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"Client({self.host}:{self.port}, {state})"
