"""A pure-Python client for the repro wire protocol.

::

    from repro.client import Client

    with Client("127.0.0.1", 7070) as client:
        client.execute("INSERT INTO Users VALUES (1, 'ann')")
        result = client.execute(
            "SELECT PS.PathString FROM G.Paths PS WHERE PS.Length = 2")
        for row in result.rows:
            ...

Server-side failures surface as :class:`~repro.errors.RemoteError`
carrying the **stable** wire code (``error.code == "TIMEOUT"``,
``"OVERLOADED"``, ``"READ_ONLY"``...); transport failures surface as
:class:`~repro.errors.ClientConnectionError`.

Reconnect policy (``reconnect=True``): when the connection drops the
client transparently redials — under the shared
:class:`~repro.resilience.retry.RetryPolicy`, so repeated dials back
off with jitter instead of hammering a restarting server — and retries
the request, but only when it is safe to repeat (SELECT / EXPLAIN
statements, PING, METRICS, SET_BUDGET). A write whose frame may have
reached the server is *never* retried: its outcome is unknown, and
retrying could apply it twice; the caller gets
:class:`ClientConnectionError` and decides. Prepared statements are
re-prepared automatically after a reconnect.

Backpressure policy: an ``OVERLOADED`` error means the server's write
queue was full and the statement was **never admitted** — uniquely
safe to retry, write or not. The client honors the pushback by backing
off under the same policy before retrying, a bounded number of times;
``client.stats`` and the ``repro_client_*`` metrics expose how often
that happened.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..core.result import ResultSet
from ..errors import ClientConnectionError, ProtocolError, RemoteError
from ..observability.metrics import recording_registry
from ..resilience.retry import RetryPolicy
from ..server import protocol

#: Statement prefixes that are safe to retry after a reconnect.
_IDEMPOTENT_PREFIXES = ("SELECT", "EXPLAIN", "WITH")


def default_client_retry() -> RetryPolicy:
    """The client's default backoff: 4 attempts, 50ms..1s, jittered
    (the jitter is what keeps a fleet of clients from re-dialing a
    restarted server in lockstep)."""
    return RetryPolicy(
        base_delay=0.05, max_delay=1.0, multiplier=2.0, jitter=0.25,
        max_attempts=4,
    )


def _is_idempotent_sql(sql: str) -> bool:
    return sql.lstrip().upper().startswith(_IDEMPOTENT_PREFIXES)


class Prepared:
    """A client-side handle to a server-side prepared statement."""

    def __init__(self, client: "Client", sql: str, handle: str,
                 params: int, columns: List[str]):
        self._client = client
        self.sql = sql
        self.handle = handle
        self.parameter_count = params
        self.columns = columns

    def execute(self, *params: Any,
                budget: Optional[Dict[str, Any]] = None) -> ResultSet:
        return self._client._execute_prepared(self, params, budget)

    def __repr__(self) -> str:
        return f"Prepared({self.sql!r}, handle={self.handle!r})"


class Client:
    """One connection to a repro server (thread-safe: one request at a
    time, serialized by an internal lock)."""

    def __init__(
        self,
        host: str,
        port: int,
        auth: Optional[str] = None,
        session: Optional[str] = None,
        timeout: Optional[float] = None,
        connect_timeout: float = 5.0,
        reconnect: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.auth = auth
        self.session = session
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        #: Shared backoff for redials and OVERLOADED retries.
        self.retry_policy = retry_policy or default_client_retry()
        #: Attempt counters: how often this client was pushed back or
        #: had to redial (mirrored into the metrics registry).
        self.stats: Dict[str, int] = {
            "reconnects": 0,
            "reconnect_attempts": 0,
            "overloaded_retries": 0,
            "overloaded_gave_up": 0,
        }
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._next_id = 0
        #: Server-assigned session name and role (from HELLO_OK).
        self.session_name: Optional[str] = None
        self.server_role: Optional[str] = None
        #: Session budget, replayed after a reconnect.
        self._budget: Optional[Dict[str, Any]] = None
        #: Live Prepared handles, re-prepared after a reconnect.
        self._prepared: List[Prepared] = []

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def connect(self) -> "Client":
        with self._lock:
            self._connect_locked()
        return self

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as error:
            raise ClientConnectionError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.timeout)
        hello: Dict[str, Any] = {
            "type": "HELLO", "protocol": protocol.PROTOCOL_VERSION,
        }
        if self.auth is not None:
            hello["auth"] = self.auth
        if self.session is not None:
            hello["session"] = self.session
        try:
            protocol.send_frame(sock, hello)
            reply = protocol.read_frame(sock)
        except (OSError, ProtocolError) as error:
            sock.close()
            raise ClientConnectionError(f"handshake failed: {error}")
        if reply is None:
            sock.close()
            raise ClientConnectionError("server closed during handshake")
        if reply.get("type") == "ERROR":
            sock.close()
            raise RemoteError(
                reply.get("code", "INTERNAL_ERROR"),
                reply.get("message", "handshake rejected"),
            )
        if reply.get("type") != "HELLO_OK":
            sock.close()
            raise ClientConnectionError(
                f"unexpected handshake reply: {reply.get('type')!r}"
            )
        self._sock = sock
        self.session_name = reply.get("session")
        self.server_role = reply.get("role")
        try:
            self._restore_session_state()
        except ClientConnectionError:
            self._drop_connection()
            raise

    def _restore_session_state(self) -> None:
        """Replay budget and prepared statements on the new connection.

        Runs with ``self._lock`` already held (we are called from
        ``_connect_locked``), so this must go straight to
        ``_roundtrip_locked`` — re-entering ``_roundtrip`` would
        deadlock on the non-reentrant request lock.
        """
        if self._budget is not None:
            self._roundtrip_locked(
                {"type": "SET_BUDGET", "budget": self._budget}, until=None
            )
        for prepared in self._prepared:
            reply = self._roundtrip_locked(
                {"type": "PREPARE", "sql": prepared.sql}, until=None
            )[0]
            prepared.handle = reply["statement"]

    def close(self) -> None:
        with self._lock:
            sock = self._sock
            self._sock = None
            if sock is None:
                return
            try:
                protocol.send_frame(sock, {"type": "CLOSE"})
                protocol.read_frame(sock)  # GOODBYE (best effort)
            except (OSError, ProtocolError):
                pass
            finally:
                sock.close()

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, sql: str,
                budget: Optional[Dict[str, Any]] = None) -> ResultSet:
        """Run one statement; returns a real
        :class:`~repro.core.result.ResultSet`."""
        message: Dict[str, Any] = {"type": "QUERY", "sql": sql}
        if budget is not None:
            message["budget"] = budget
        return self._collect_result(
            message, retry=self.reconnect and _is_idempotent_sql(sql)
        )

    def prepare(self, sql: str) -> Prepared:
        reply = self._request(
            {"type": "PREPARE", "sql": sql}, retry=self.reconnect
        )
        prepared = Prepared(
            self, sql, reply["statement"],
            reply.get("params", 0), reply.get("columns", []),
        )
        self._prepared.append(prepared)
        return prepared

    def _execute_prepared(self, prepared: Prepared, params, budget) -> ResultSet:
        message: Dict[str, Any] = {
            "type": "EXECUTE",
            "statement": prepared.handle,
            "params": protocol.jsonable_row(params),
        }
        if budget is not None:
            message["budget"] = budget
        # prepared statements are SELECT-only, hence always retryable
        return self._collect_result(message, retry=self.reconnect)

    def set_budget(self, budget: Optional[Dict[str, Any]]) -> None:
        """Install (or clear, with None) the session-level budget."""
        self._request({"type": "SET_BUDGET", "budget": budget},
                      retry=self.reconnect)
        self._budget = budget

    def ping(self) -> bool:
        return self._request({"type": "PING"},
                             retry=self.reconnect)["type"] == "PONG"

    def metrics(self, filter: Optional[str] = None) -> str:
        """The server's metrics in Prometheus text format."""
        message: Dict[str, Any] = {"type": "METRICS"}
        if filter is not None:
            message["filter"] = filter
        return self._request(message, retry=self.reconnect)["text"]

    def health(self) -> Dict[str, Any]:
        """The server's HEALTH report: health state, liveness,
        read/write readiness, and (when a supervisor runs the node)
        its checkpoint/probe/heal counters."""
        reply = self._request({"type": "HEALTH"}, retry=self.reconnect)
        return {
            key: value
            for key, value in reply.items()
            if key not in ("type", "id")
        }

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------

    def _collect_result(self, message, retry: bool) -> ResultSet:
        frames = self._roundtrip(message, retry=retry, until="RESULT_END")
        columns: List[str] = []
        rows: List[Tuple] = []
        rowcount = 0
        for frame in frames:
            kind = frame["type"]
            if kind == "RESULT_HEAD":
                columns = frame.get("columns", [])
            elif kind == "ROWS":
                rows.extend(tuple(row) for row in frame.get("rows", []))
            elif kind == "RESULT_END":
                rowcount = frame.get("rowcount", 0)
        return ResultSet(columns or None, rows, rowcount=rowcount)

    def _request(self, message, retry: bool) -> Dict[str, Any]:
        """One request expecting exactly one reply frame."""
        return self._roundtrip(message, retry=retry, until=None)[0]

    def _roundtrip(self, message, retry: bool, until: Optional[str]):
        """One request with the backpressure loop around it.

        OVERLOADED means the statement was never admitted to the write
        queue, so retrying can never double-apply — the *only* error
        that is retry-safe even for writes. The backoff happens outside
        the request lock: sleeping while holding it would stall every
        other thread sharing this client.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._roundtrip_transport(message, retry, until)
            except RemoteError as error:
                if error.code != "OVERLOADED":
                    raise
                policy = self.retry_policy
                if (
                    policy.max_attempts is not None
                    and attempt >= policy.max_attempts
                ):
                    self.stats["overloaded_gave_up"] += 1
                    self._count("repro_client_overload_giveups_total")
                    raise
                self.stats["overloaded_retries"] += 1
                self._count("repro_client_overload_retries_total")
                policy.sleep(policy.delay(attempt))

    def _roundtrip_transport(self, message, retry: bool, until: Optional[str]):
        with self._lock:
            try:
                return self._roundtrip_locked(message, until)
            except ClientConnectionError:
                self._drop_connection()
                if not retry or not self.reconnect:
                    raise
            # The request never produced a reply and is safe to repeat:
            # redial under the shared policy (backed off, jittered),
            # then retry the request on the fresh connection.
            policy = self.retry_policy
            dial = 0
            while True:
                dial += 1
                self.stats["reconnect_attempts"] += 1
                try:
                    self._connect_locked()
                except ClientConnectionError:
                    self._drop_connection()
                    if (
                        policy.max_attempts is not None
                        and dial >= policy.max_attempts
                    ):
                        raise
                    policy.sleep(policy.delay(dial))
                    continue
                self.stats["reconnects"] += 1
                self._count("repro_client_reconnects_total")
                try:
                    return self._roundtrip_locked(message, until)
                except ClientConnectionError:
                    self._drop_connection()
                    raise

    def _count(self, name: str) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                name, help="Client retry/backoff events."
            ).inc()

    def _roundtrip_locked(self, message, until: Optional[str]):
        if self._sock is None:
            if not self.reconnect:
                raise ClientConnectionError("client is not connected")
            self._connect_locked()
        self._next_id += 1
        message = dict(message)
        message.setdefault("id", self._next_id)
        try:
            protocol.send_frame(self._sock, message)
        except OSError as error:
            raise ClientConnectionError(f"send failed: {error}")
        frames = []
        while True:
            try:
                frame = protocol.read_frame(self._sock)
            except (OSError, ProtocolError, socket.timeout) as error:
                raise ClientConnectionError(f"receive failed: {error}")
            if frame is None:
                raise ClientConnectionError(
                    "server closed the connection mid-request"
                )
            if frame.get("type") == "ERROR":
                raise RemoteError(
                    frame.get("code", "INTERNAL_ERROR"),
                    frame.get("message", "server error"),
                )
            frames.append(frame)
            if until is None or frame.get("type") == until:
                return frames

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"Client({self.host}:{self.port}, {state})"
