"""Exception hierarchy for the repro engine.

Every error raised by the engine derives from :class:`DatabaseError`, so
applications can catch a single base class. The sub-classes mirror the
layers of the system: SQL front end, catalog/DDL, execution, constraints,
transactions, and graph views.
"""

from __future__ import annotations

from typing import Optional


class DatabaseError(Exception):
    """Base class for all errors raised by the repro engine."""


class SqlSyntaxError(DatabaseError):
    """Raised when the lexer or parser rejects a SQL string.

    Carries the offending position so callers can point at the input.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class CatalogError(DatabaseError):
    """Raised for DDL problems: unknown/duplicate tables, columns, views."""


class PlanningError(DatabaseError):
    """Raised when a parsed statement cannot be turned into a valid plan."""


class ExecutionError(DatabaseError):
    """Raised for runtime failures while executing a plan."""


class ResourceExhaustedError(ExecutionError):
    """Raised when a statement exceeds its :class:`~repro.budget.QueryBudget`.

    Path enumeration over a cyclic graph is combinatorial (Section 4 of
    the paper makes ``PATHS`` lazy for exactly this reason), so the
    resource governor aborts a runaway query instead of letting it take
    the whole engine down. The implicit transaction rolls back, leaving
    tables, indexes and graph-view topology consistent.
    """


class QueryTimeoutError(ResourceExhaustedError):
    """Raised when a statement exceeds its wall-clock budget."""


class QueryCancelledError(ExecutionError):
    """Raised when a cooperative cancellation token is cancelled
    externally (e.g. an admission controller or a user interrupt)."""


class TypeMismatchError(ExecutionError):
    """Raised when a value cannot be coerced to the declared column type."""


class ConstraintViolation(ExecutionError):
    """Raised when a write violates a primary-key / not-null / FK constraint."""


class IntegrityError(ConstraintViolation):
    """Raised when graph-view referential integrity would be broken.

    For a graph view with vertex set V and edge set E, every edge endpoint
    must be a member of V (Section 3.1 of the paper).
    """


class TransactionError(DatabaseError):
    """Raised for invalid transaction state transitions."""


class GraphViewError(DatabaseError):
    """Raised for graph-view definition or maintenance problems."""


class ReadOnlyError(ExecutionError):
    """Raised when a data-changing statement reaches a database whose
    role is ``"replica"``.

    Replicas converge by applying the primary's shipped command log and
    nothing else; a client write slipped into a replica would silently
    diverge its state from the primary (and from every other replica).
    Replicated statements enter through
    :meth:`~repro.core.database.Database.apply_replicated`, which lifts
    the restriction for exactly one statement.
    """


class ReplicationError(DatabaseError):
    """Raised for replication protocol and topology problems: shipping
    to a dead node, promoting an unknown replica, a write that cannot
    reach the configured acknowledgement level."""


class FencedError(ReplicationError):
    """Raised when a fenced (deposed) primary is asked to commit a write.

    After a failover the cluster moves to a higher epoch; the old
    primary is *fenced* so a client still pointed at it cannot commit
    writes that the new primary will never see (split-brain). Replicas
    enforce the same property independently by discarding messages
    stamped with a stale epoch.
    """


class NotPrimaryError(ReplicationError):
    """Raised when a write reaches a cluster node that is not the
    current primary (a replica, or a deposed primary that has been
    fenced by a newer epoch).

    Carries ``leader_hint`` — ``{"node", "host", "port"}`` of the node
    this one believes is the primary, or ``None`` mid-election — so a
    cluster-aware client can follow the redirect instead of guessing.
    The write was **rejected before execution**, which makes this the
    one write error that is always safe to retry (against the hinted
    leader). Wire code: ``NOT_PRIMARY``, with the hint mirrored into
    the ERROR frame's ``leader_hint`` field.
    """

    def __init__(self, message: str, leader_hint=None):
        self.leader_hint = leader_hint
        super().__init__(message)


class DivergenceError(ReplicationError):
    """Raised when a quarantined replica is asked to serve a read.

    A replica quarantines itself when its state digest (per-table row
    digests plus graph-view topology digests) disagrees with the digest
    the primary shipped for the same log position. Serving reads from a
    diverged replica would return wrong answers; the replica refuses
    until it has re-bootstrapped from a fresh snapshot.
    """


class DurabilityError(ExecutionError):
    """Raised when the durable-write path (command-log append / fsync)
    fails at the operating-system level after its bounded retry.

    The fsyncgate lesson: a failed fsync may have silently dropped
    page-cache data, so the engine must not keep acknowledging writes
    against a log it can no longer trust. Raising this error is paired
    with flipping the database's :class:`~repro.resilience.health.
    HealthMonitor` into DEGRADED (read-only) mode. The in-memory effect
    of the failed statement may be visible until recovery — the
    guarantee is *acknowledged ⇒ durable*, and this statement was never
    acknowledged. Wire code: ``DURABILITY_ERROR``.
    """


class DegradedError(ExecutionError):
    """Raised when a write reaches a database in DEGRADED (read-only)
    health state.

    A previous durable-write failure demoted the node: reads keep
    flowing from intact in-memory state, but no new write can be made
    durable, so none is accepted. Clients should fail writes over to a
    healthy node (or wait for the supervisor to self-heal). Wire code:
    ``DEGRADED`` — distinct from ``READ_ONLY`` (a *role*, permanent by
    configuration) because degraded mode is a *condition*, expected to
    clear.
    """


class ShardError(DatabaseError):
    """Base class for sharding/router problems (:mod:`repro.sharding`)."""


class ShardRedirectError(ShardError):
    """Raised when a statement reaches a shard that does not own its
    partition key (the sender's :class:`~repro.sharding.ShardMap` is
    stale).

    Like :class:`NotPrimaryError`, the statement is **rejected before
    execution**, so retrying — even a write — through a refreshed route
    is always safe. ``shard_hint`` carries ``{"shard", "count",
    "version"}``: the authoritative owner's index and the responder's
    map generation. Wire code: ``SHARD_REDIRECT``.
    """

    def __init__(self, message: str, shard_hint=None):
        self.shard_hint = shard_hint
        super().__init__(message)


class CrossShardAbortError(ShardError):
    """Raised when a multi-partition write failed on some shard and the
    router rolled the whole statement back everywhere (coordinator
    prepare undone, applied shards compensated). All-or-nothing held:
    no shard retains any effect. Wire code: ``CROSS_SHARD_ABORT``.
    """


class CrossShardPartialError(ShardError):
    """Raised when a multi-partition write applied on some shards but a
    failed shard could not be compensated (it died mid-statement).

    The router's coordinator state is authoritative; the failed shard
    must be re-seeded before rejoining. This is the one router error
    that is **not** safe to retry blindly. Wire code:
    ``CROSS_SHARD_PARTIAL``.
    """

    def __init__(self, message: str, failed_shards=None):
        self.failed_shards = list(failed_shards or [])
        super().__init__(message)


class ShardUnavailableError(ShardError):
    """Raised when a routed statement needs a shard that cannot be
    reached (dead process, partition). The statement observed no
    partial results — scatter-gather reads discard every other shard's
    rows before surfacing this. Wire code: ``SHARD_UNAVAILABLE``.
    """

    def __init__(self, message: str, shard: Optional[int] = None):
        self.shard = shard
        super().__init__(message)


class OverloadedError(DatabaseError):
    """Raised by the server's admission control when the single-writer
    queue is full.

    Backpressure, not failure: the statement was never admitted, so the
    client can safely retry after a moment. Over the wire this maps to
    the stable ``OVERLOADED`` error code.
    """


class ShuttingDownError(DatabaseError):
    """Raised when a statement arrives while the server is draining.

    Graceful shutdown finishes statements already in flight and rejects
    new ones with this error (wire code ``SHUTTING_DOWN``), so clients
    can fail over instead of hanging on a dying server.
    """


class ProtocolError(DatabaseError):
    """Raised for malformed wire traffic: an oversized or truncated
    frame, invalid JSON, a message without a ``type``, or a message
    that is not legal in the connection's current state."""


class RemoteError(DatabaseError):
    """A server-reported error, re-raised by the client.

    Carries the wire protocol's stable ``code`` (``"READ_ONLY"``,
    ``"BUDGET_EXCEEDED"``, ...) so callers dispatch on the code rather
    than on message text. For ``NOT_PRIMARY`` errors, ``leader_hint``
    carries the ERROR frame's redirect target (``{"node", "host",
    "port"}`` or ``None``) so a cluster-aware caller can follow it; for
    ``SHARD_REDIRECT`` errors, ``shard_hint`` carries the owning shard
    (``{"shard", "count", "version"}`` or ``None``).
    """

    def __init__(
        self, code: str, message: str, leader_hint=None, shard_hint=None
    ):
        self.code = code
        self.leader_hint = leader_hint
        self.shard_hint = shard_hint
        super().__init__(f"[{code}] {message}")


class ClientConnectionError(DatabaseError):
    """Raised by the client when the server cannot be reached (or the
    connection died mid-request and the reconnect policy does not allow
    a transparent retry — e.g. a write whose outcome is unknown)."""


class RecoveryError(ExecutionError):
    """Raised when crash recovery (snapshot load / command-log replay)
    detects corruption: a failed checksum, an unreadable snapshot
    document, or a statement that cannot be replayed.

    Subclasses :class:`ExecutionError` so existing recovery call sites
    that caught execution failures keep working; the message always
    names the file, position and nature of the damage.
    """
