"""In-memory relational storage substrate (system S1).

Row-oriented tables with stable tuple pointers, hash and ordered secondary
indexes, and a catalog of tables / views / graph views. This is the
VoltDB-like storage layer the rest of the engine (and the graph views of
the paper) sit on.
"""

from .schema import Column, TableSchema
from .table import Table, TuplePointer
from .index import HashIndex, OrderedIndex
from .catalog import Catalog

__all__ = [
    "Column",
    "TableSchema",
    "Table",
    "TuplePointer",
    "HashIndex",
    "OrderedIndex",
    "Catalog",
]
