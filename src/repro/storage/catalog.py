"""System catalog: the registry of tables, views, indexes and graph views.

The catalog is deliberately independent of the upper layers: graph views
register themselves as opaque objects (the :mod:`repro.graph` package owns
their behaviour), mirroring how the paper stores graph-view definitions in
the system catalog (Section 3.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import CatalogError
from .schema import TableSchema
from .table import Table


class Catalog:
    """Holds every named database object. Names are case-insensitive."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, Any] = {}
        self._graph_views: Dict[str, Any] = {}
        self._index_owner: Dict[str, str] = {}
        # per-graph-view statistics, e.g. average fan-out (Section 6.3)
        self.statistics: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> Table:
        key = name.lower()
        if self._name_in_use(key):
            raise CatalogError(f"name already in use: {name}")
        table = Table(name, schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table: {name}")
        table = self._tables[key]
        for index_name in list(table.indexes):
            self._index_owner.pop(index_name.lower(), None)
        del self._tables[key]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    # ------------------------------------------------------------------
    # relational views (materialized) — managed by the core layer
    # ------------------------------------------------------------------

    def register_view(self, name: str, view: Any) -> None:
        key = name.lower()
        if self._name_in_use(key):
            raise CatalogError(f"name already in use: {name}")
        self._views[key] = view

    def drop_view(self, name: str) -> None:
        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"unknown view: {name}")
        del self._views[key]

    def view(self, name: str) -> Any:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown view: {name}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    # ------------------------------------------------------------------
    # graph views — managed by repro.graph
    # ------------------------------------------------------------------

    def register_graph_view(self, name: str, graph_view: Any) -> None:
        key = name.lower()
        if self._name_in_use(key):
            raise CatalogError(f"name already in use: {name}")
        self._graph_views[key] = graph_view

    def drop_graph_view(self, name: str) -> None:
        key = name.lower()
        if key not in self._graph_views:
            raise CatalogError(f"unknown graph view: {name}")
        del self._graph_views[key]

    def graph_view(self, name: str) -> Any:
        try:
            return self._graph_views[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown graph view: {name}") from None

    def has_graph_view(self, name: str) -> bool:
        return name.lower() in self._graph_views

    def graph_views(self) -> List[Any]:
        return list(self._graph_views.values())

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------

    def register_index(self, index_name: str, table_name: str) -> None:
        key = index_name.lower()
        if key in self._index_owner:
            raise CatalogError(f"duplicate index name: {index_name}")
        self._index_owner[key] = table_name.lower()

    def index_owner(self, index_name: str) -> Optional[str]:
        return self._index_owner.get(index_name.lower())

    # ------------------------------------------------------------------

    def _name_in_use(self, key: str) -> bool:
        return key in self._tables or key in self._views or key in self._graph_views
