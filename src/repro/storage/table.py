"""In-memory row store with stable tuple pointers.

A :class:`Table` stores rows in slots. A slot number is stable for the
lifetime of the row, which is what makes the paper's design work: the
materialized graph topology keeps :class:`TuplePointer` handles into the
vertex/edge relational sources and dereferences them in O(1) (Section 3.2).

Tables publish change events (insert / delete / update) to registered
listeners; graph-view maintenance (Section 3.3) and index maintenance are
implemented as listeners so they run inside the mutating transaction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CatalogError, ConstraintViolation, ExecutionError
from .schema import TableSchema


class TuplePointer:
    """A stable handle to one stored row: ``(table, slot, generation)``.

    The generation guards against slot reuse: dereferencing a pointer
    whose slot has been freed and re-filled raises instead of silently
    returning an unrelated row.
    """

    __slots__ = ("table", "slot", "generation")

    def __init__(self, table: "Table", slot: int, generation: int):
        self.table = table
        self.slot = slot
        self.generation = generation

    def dereference(self) -> Tuple[Any, ...]:
        """Fetch the row this pointer designates (O(1)).

        Inlined for speed — this sits on the per-edge hot path of every
        attribute-filtered graph traversal.
        """
        table = self.table
        slot = self.slot
        row = table._rows[slot] if slot < len(table._rows) else None
        if row is None or table._generations[slot] != self.generation:
            raise ExecutionError(
                f"{table.name}: stale tuple pointer for slot {slot}"
            )
        return row

    @property
    def is_live(self) -> bool:
        return self.table.is_live(self.slot, self.generation)

    def __repr__(self) -> str:
        return f"TuplePointer({self.table.name}[{self.slot}]@{self.generation})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TuplePointer)
            and self.table is other.table
            and self.slot == other.slot
            and self.generation == other.generation
        )

    def __hash__(self) -> int:
        return hash((id(self.table), self.slot, self.generation))


class TableListener:
    """Interface for observers of table mutations.

    All callbacks run synchronously inside the mutating statement, i.e.
    inside its transaction, matching the paper's requirement that graph
    views are maintained "as part of the transaction" (Section 3.3).
    """

    def on_insert(self, table: "Table", pointer: TuplePointer, row: Tuple) -> None:
        """Called after a row is inserted."""

    def on_delete(self, table: "Table", pointer: TuplePointer, row: Tuple) -> None:
        """Called after a row is deleted (``row`` is the old image)."""

    def on_update(
        self,
        table: "Table",
        pointer: TuplePointer,
        old_row: Tuple,
        new_row: Tuple,
    ) -> None:
        """Called after a row is updated in place."""


class Table:
    """One in-memory table: schema + slotted rows + indexes + listeners."""

    def __init__(self, name: str, schema: TableSchema):
        self.name = name
        self.schema = schema
        self._rows: List[Optional[Tuple[Any, ...]]] = []
        self._generations: List[int] = []
        self._free_slots: List[int] = []
        self._row_count = 0
        self._pk_index: Optional[Dict[Tuple[Any, ...], int]] = (
            {} if schema.primary_key_positions else None
        )
        self.indexes: Dict[str, "Index"] = {}
        self._listeners: List[TableListener] = []
        #: Declared hash-partition column (``CREATE TABLE ... PARTITION
        #: BY col``); ``None`` for broadcast tables. Only the sharding
        #: layer reads this — a single node stores and ignores it.
        self.partition_by: Optional[str] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._row_count

    @property
    def row_count(self) -> int:
        return self._row_count

    def is_live(self, slot: int, generation: Optional[int] = None) -> bool:
        if slot < 0 or slot >= len(self._rows) or self._rows[slot] is None:
            return False
        return generation is None or self._generations[slot] == generation

    def row_at(
        self, slot: int, expected_generation: Optional[int] = None
    ) -> Tuple[Any, ...]:
        """Return the row stored in ``slot``; raise if dead or recycled."""
        if slot < 0 or slot >= len(self._rows):
            raise ExecutionError(f"{self.name}: slot {slot} out of range")
        row = self._rows[slot]
        if row is None:
            raise ExecutionError(f"{self.name}: slot {slot} holds no row")
        if (
            expected_generation is not None
            and self._generations[slot] != expected_generation
        ):
            raise ExecutionError(
                f"{self.name}: stale tuple pointer for slot {slot}"
            )
        return row

    def pointer_to(self, slot: int) -> TuplePointer:
        self.row_at(slot)
        return TuplePointer(self, slot, self._generations[slot])

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield ``(slot, row)`` for every live row."""
        for slot, row in enumerate(self._rows):
            if row is not None:
                yield slot, row

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        for _slot, row in self.scan():
            yield row

    # ------------------------------------------------------------------
    # listeners and indexes
    # ------------------------------------------------------------------

    def add_listener(self, listener: TableListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: TableListener) -> None:
        self._listeners = [
            entry for entry in self._listeners if entry is not listener
        ]

    def attach_index(self, index: "Index") -> None:
        if index.name in self.indexes:
            raise CatalogError(f"duplicate index name: {index.name}")
        for slot, row in self.scan():
            index.insert(row, slot)
        self.indexes[index.name] = index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"unknown index: {name}")
        del self.indexes[name]

    def find_index_on(self, column: str) -> Optional["Index"]:
        """Return an index whose leading key column is ``column``."""
        wanted = column.lower()
        for index in self.indexes.values():
            if index.key_columns[0].lower() == wanted:
                return index
        return None

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> TuplePointer:
        """Insert a row; returns its tuple pointer.

        Enforces type coercion, NOT NULL, and primary-key uniqueness.
        """
        row = self.schema.coerce_row(values, self.name)
        key = self.schema.primary_key_of(row)
        if self._pk_index is not None:
            if key in self._pk_index:
                raise ConstraintViolation(
                    f"{self.name}: duplicate primary key {key}"
                )
        if self._free_slots:
            slot = self._free_slots.pop()
            self._rows[slot] = row
            self._generations[slot] += 1
        else:
            slot = len(self._rows)
            self._rows.append(row)
            self._generations.append(0)
        if self._pk_index is not None and key is not None:
            self._pk_index[key] = slot
        for index in self.indexes.values():
            index.insert(row, slot)
        self._row_count += 1
        pointer = TuplePointer(self, slot, self._generations[slot])
        for listener in self._listeners:
            listener.on_insert(self, pointer, row)
        return pointer

    def delete(self, slot: int) -> Tuple[Any, ...]:
        """Delete the row in ``slot``; returns the old image."""
        row = self.row_at(slot)
        pointer = TuplePointer(self, slot, self._generations[slot])
        if self._pk_index is not None:
            key = self.schema.primary_key_of(row)
            if key is not None:
                self._pk_index.pop(key, None)
        for index in self.indexes.values():
            index.delete(row, slot)
        self._rows[slot] = None
        self._free_slots.append(slot)
        self._row_count -= 1
        for listener in self._listeners:
            listener.on_delete(self, pointer, row)
        return row

    def update(self, slot: int, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Replace the row in ``slot`` in place (pointer stays valid)."""
        old_row = self.row_at(slot)
        new_row = self.schema.coerce_row(values, self.name)
        old_key = self.schema.primary_key_of(old_row)
        new_key = self.schema.primary_key_of(new_row)
        if self._pk_index is not None and new_key != old_key:
            if new_key in self._pk_index:
                raise ConstraintViolation(
                    f"{self.name}: duplicate primary key {new_key}"
                )
        for index in self.indexes.values():
            index.delete(old_row, slot)
        self._rows[slot] = new_row
        if self._pk_index is not None and new_key != old_key:
            if old_key is not None:
                self._pk_index.pop(old_key, None)
            if new_key is not None:
                self._pk_index[new_key] = slot
        for index in self.indexes.values():
            index.insert(new_row, slot)
        pointer = TuplePointer(self, slot, self._generations[slot])
        for listener in self._listeners:
            listener.on_update(self, pointer, old_row, new_row)
        return old_row

    def lookup_primary_key(self, key: Sequence[Any]) -> Optional[int]:
        """Return the slot holding primary key ``key``, or None."""
        if self._pk_index is None:
            raise ExecutionError(f"{self.name} has no primary key")
        return self._pk_index.get(tuple(key))

    def truncate(self) -> int:
        """Delete all rows (through the listener machinery); return count."""
        slots = [slot for slot, _row in self.scan()]
        for slot in slots:
            self.delete(slot)
        return len(slots)

    def __repr__(self) -> str:
        return f"Table({self.name}, rows={self._row_count})"


# imported late to avoid a cycle: Index type only needed for annotations
from .index import Index  # noqa: E402  (intentional tail import)
