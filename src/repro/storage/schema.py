"""Table schemas: typed, named columns with constraint flags."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CatalogError, ConstraintViolation
from ..types import SqlType, coerce


class Column:
    """A single column definition.

    Attributes:
        name: Column name as declared (case preserved; lookups are
            case-insensitive).
        sql_type: Declared :class:`~repro.types.SqlType`.
        nullable: Whether NULL is allowed. Primary-key columns are
            implicitly NOT NULL.
        primary_key: Whether this column is (part of) the primary key.
    """

    __slots__ = ("name", "sql_type", "nullable", "primary_key")

    def __init__(
        self,
        name: str,
        sql_type: SqlType,
        nullable: bool = True,
        primary_key: bool = False,
    ):
        self.name = name
        self.sql_type = sql_type
        self.primary_key = primary_key
        self.nullable = nullable and not primary_key

    def __repr__(self) -> str:
        flags = []
        if self.primary_key:
            flags.append("PRIMARY KEY")
        elif not self.nullable:
            flags.append("NOT NULL")
        suffix = (" " + " ".join(flags)) if flags else ""
        return f"Column({self.name} {self.sql_type.value}{suffix})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and self.name.lower() == other.name.lower()
            and self.sql_type is other.sql_type
            and self.nullable == other.nullable
            and self.primary_key == other.primary_key
        )

    def __hash__(self) -> int:
        return hash((self.name.lower(), self.sql_type))


class TableSchema:
    """An ordered collection of :class:`Column` with fast name lookup."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise CatalogError("a table needs at least one column")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index_by_name: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._index_by_name:
                raise CatalogError(f"duplicate column name: {column.name}")
            self._index_by_name[key] = position
        self.primary_key_positions: Tuple[int, ...] = tuple(
            i for i, c in enumerate(self.columns) if c.primary_key
        )

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_by_name

    def position_of(self, name: str) -> int:
        """Return the ordinal position of ``name``; raise if unknown."""
        try:
            return self._index_by_name[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown column: {name}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def coerce_row(
        self, values: Sequence[Any], table_name: str = "?"
    ) -> Tuple[Any, ...]:
        """Validate and coerce a full row of values against this schema.

        Enforces arity, per-column type coercion, and NOT NULL. Returns
        the row as an immutable tuple ready for storage.
        """
        if len(values) != len(self.columns):
            raise ConstraintViolation(
                f"table {table_name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        out = []
        for column, value in zip(self.columns, values):
            coerced = coerce(value, column.sql_type, column.name)
            if coerced is None and not column.nullable:
                raise ConstraintViolation(
                    f"table {table_name}: column {column.name} is NOT NULL"
                )
            out.append(coerced)
        return tuple(out)

    def primary_key_of(self, row: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        """Extract the primary-key tuple from a stored row (or None)."""
        if not self.primary_key_positions:
            return None
        return tuple(row[i] for i in self.primary_key_positions)

    def project(self, names: Iterable[str]) -> "TableSchema":
        """Build a derived schema containing only ``names`` (in order)."""
        return TableSchema([self.column(n) for n in names])

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.sql_type.value}" for c in self.columns)
        return f"TableSchema({cols})"
