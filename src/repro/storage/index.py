"""Secondary indexes: hash (equality) and ordered (range).

Indexes map key tuples extracted from rows to slot numbers. They are
maintained eagerly by :class:`~repro.storage.table.Table` on every
mutation. The ordered index is a sorted list with binary search — the
in-memory analogue of VoltDB's tree index.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConstraintViolation
from .schema import TableSchema


class Index:
    """Base class: key extraction shared by both index kinds."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        key_columns: Sequence[str],
        unique: bool = False,
    ):
        self.name = name
        self.key_columns: Tuple[str, ...] = tuple(key_columns)
        self.key_positions: Tuple[int, ...] = tuple(
            schema.position_of(c) for c in key_columns
        )
        self.unique = unique

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        return tuple(row[i] for i in self.key_positions)

    # interface ---------------------------------------------------------

    def insert(self, row: Sequence[Any], slot: int) -> None:
        raise NotImplementedError

    def delete(self, row: Sequence[Any], slot: int) -> None:
        raise NotImplementedError

    def lookup(self, key: Sequence[Any]) -> List[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HashIndex(Index):
    """Equality index: key tuple -> list of slots."""

    def __init__(self, name, schema, key_columns, unique=False):
        super().__init__(name, schema, key_columns, unique)
        self._buckets: Dict[Tuple[Any, ...], List[int]] = {}
        self._size = 0

    def insert(self, row: Sequence[Any], slot: int) -> None:
        key = self.key_of(row)
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise ConstraintViolation(
                f"index {self.name}: duplicate key {key}"
            )
        bucket.append(slot)
        self._size += 1

    def delete(self, row: Sequence[Any], slot: int) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket and slot in bucket:
            bucket.remove(slot)
            self._size -= 1
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Sequence[Any]) -> List[int]:
        return list(self._buckets.get(tuple(key), ()))

    def __len__(self) -> int:
        return self._size


class OrderedIndex(Index):
    """Range index backed by a sorted list of ``(key, slot)`` pairs.

    NULLs are excluded from the index (SQL range predicates never match
    NULL anyway), which keeps keys totally ordered.
    """

    def __init__(self, name, schema, key_columns, unique=False):
        super().__init__(name, schema, key_columns, unique)
        self._entries: List[Tuple[Tuple[Any, ...], int]] = []

    def insert(self, row: Sequence[Any], slot: int) -> None:
        key = self.key_of(row)
        if any(part is None for part in key):
            return
        position = bisect.bisect_left(self._entries, (key, -1))
        if self.unique and position < len(self._entries):
            if self._entries[position][0] == key:
                raise ConstraintViolation(
                    f"index {self.name}: duplicate key {key}"
                )
        self._entries.insert(position, (key, slot))

    def delete(self, row: Sequence[Any], slot: int) -> None:
        key = self.key_of(row)
        if any(part is None for part in key):
            return
        position = bisect.bisect_left(self._entries, (key, -1))
        while position < len(self._entries) and self._entries[position][0] == key:
            if self._entries[position][1] == slot:
                del self._entries[position]
                return
            position += 1

    def lookup(self, key: Sequence[Any]) -> List[int]:
        key = tuple(key)
        position = bisect.bisect_left(self._entries, (key, -1))
        slots = []
        while position < len(self._entries) and self._entries[position][0] == key:
            slots.append(self._entries[position][1])
            position += 1
        return slots

    def range_scan(
        self,
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield slots whose keys fall in ``[low, high]`` (bounds optional)."""
        if low is None:
            start = 0
        else:
            low = tuple(low)
            if low_inclusive:
                start = bisect.bisect_left(self._entries, (low, -1))
            else:
                start = bisect.bisect_right(
                    self._entries, (low, float("inf"))
                )
        for key, slot in self._entries[start:]:
            if high is not None:
                high_key = tuple(high)
                if high_inclusive:
                    if key > high_key:
                        break
                elif key >= high_key:
                    break
            yield slot

    def __len__(self) -> int:
        return len(self._entries)
