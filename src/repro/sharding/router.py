"""The shard router: one wire-protocol endpoint over N shard servers.

The router *is a server* — it subclasses :class:`~repro.server.server.
Server`, so sessions, budgets, prepared statements, tracing adoption,
cancellation-on-disconnect, and the metrics endpoints all work
unchanged — but instead of executing statements against a local
database only, it routes them:

**Reads** take one of three tiers (counted in ``repro_router_
statements_total{route=...}`` and in the SHARD_STATE reply, which is
how tests assert the fast path is actually taken):

* ``fast_path`` — the statement targets one table and binds its
  partition key with an equality, so exactly one shard can hold every
  qualifying row. The SQL is forwarded verbatim to that shard.
* ``scatter`` — a single-table scan or aggregate over a partitioned
  table. The router rewrites the statement per shard (``AVG`` becomes
  a ``SUM``/``COUNT`` pair; ``LIMIT`` is pushed down as ``limit +
  offset``), fans it out to every shard in parallel under a
  ``router.fanout`` span, and merges: ``COUNT`` sums, ``SUM``/``MIN``/
  ``MAX`` combine null-aware, ``AVG`` re-divides, ``ORDER BY`` re-sorts
  with the engine's own null ordering, ``DISTINCT`` de-duplicates, and
  ``OFFSET``/``LIMIT`` apply once at the router.
* ``gather`` — everything else (joins, subqueries, HAVING, set
  operations, and every graph traversal over partitioned sources) runs
  on the router's **coordinator database**: a complete local mirror
  that every write also updates. Graph views over partitioned tables
  exist *only* there, because a shard-local subgraph is not closed
  under traversal — an edge's target vertex may hash elsewhere, and
  the engine (correctly) refuses to materialize an edge whose endpoint
  is missing.

**Writes** are coordinator-first and all-or-nothing where possible:
the write is applied to the coordinator mirror inside a transaction
(this is the prepare step — primary-key and integrity violations are
caught *centrally*, before any shard sees the statement), then fanned
out to the affected shards in shard-index order through the router's
single-writer scheduler, whose execution order is the global write
sequence. If every shard acknowledges, the coordinator commits. If no
shard applied it, the coordinator rolls back and the client sees
``CROSS_SHARD_ABORT`` — nothing changed anywhere. If *some* shards
applied it, the router compensates (INSERTs are reversed with
targeted DELETEs); when compensation succeeds the outcome is again a
clean ``CROSS_SHARD_ABORT``, and only when a shard is both mutated
and unreachable does the router commit the coordinator (which stays
authoritative), report ``CROSS_SHARD_PARTIAL``, and leave re-seeding
the dead shard to the operator.

The coordinator mirror is in-memory state owned by the router
process: restarting the router requires re-seeding it (replaying the
DDL + data load), exactly like restarting a VoltDB coordinator
without command logging. ``docs/sharding.md`` spells this out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..client.client import Client
from ..resilience.retry import RetryPolicy
from ..core.database import (
    Database,
    PreparedQuery,
    statement_is_write,
)
from ..core.result import ResultSet
from ..errors import (
    CatalogError,
    ClientConnectionError,
    CrossShardAbortError,
    CrossShardPartialError,
    ExecutionError,
    PlanningError,
    ProtocolError,
    RemoteError,
    ShardUnavailableError,
    ShuttingDownError,
)
from ..executor.aggregates import _NullAwareKey
from ..expr.compile import ExpressionCompiler
from ..expr.scope import RelationBinding, Scope
from ..observability import tracing as observability_tracing
from ..budget import CancellationToken, QueryBudget
from ..server import protocol
from ..server.server import Server, Session
from ..sql import ast
from ..sql.parser import parse_statement
from ..sql.render import render_expression, render_literal, render_statement
from .shard_map import ShardMap, bound_partition_keys, stable_hash

#: Aggregates the scatter tier knows how to re-aggregate at the router.
_MERGEABLE_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Subquery expression forms — their presence forces the gather tier
#: (a subquery evaluated on one shard would only see that shard's
#: slice of whatever tables it references).
_SUBQUERY_NODES = (ast.InSubquery, ast.ExistsSubquery, ast.CorrelatedSubquery)

#: Routing-plan cache size (plans are per-SQL-text, like the paper's
#: plan cache; DDL invalidates the whole cache).
_PLAN_CACHE_SIZE = 512


class _ReadPlan:
    """A cached routing decision for one read statement."""

    __slots__ = ("tier", "shard", "shard_sql", "merge")

    def __init__(self, tier, shard=None, shard_sql=None, merge=None):
        self.tier = tier  # "fast_path" | "scatter" | "gather"
        self.shard = shard
        self.shard_sql = shard_sql
        self.merge = merge


class _MergeSpec:
    """How to combine per-shard result sets into the client's answer.

    Shard rows arrive in a known layout: ``group_count`` leading group
    columns (grouped/aggregate mode only) followed by aggregate slots.
    ``outputs`` maps each *original* select item onto that layout:
    ``("column", i)`` passes shard column ``i`` through, ``("count" |
    "sum" | "min" | "max", i)`` re-aggregates it, ``("avg", i, j)``
    divides merged slot ``i`` by merged slot ``j``.
    """

    __slots__ = (
        "mode", "group_count", "outputs", "order",
        "limit", "offset", "distinct", "columns",
    )

    def __init__(self, mode, group_count, outputs, order,
                 limit, offset, distinct, columns):
        self.mode = mode  # "rows" | "aggregate"
        self.group_count = group_count
        self.outputs = outputs
        self.order = order  # [(output position, ascending)]
        self.limit = limit
        self.offset = offset
        self.distinct = distinct
        self.columns = columns  # final column names (aggregate mode)


class _RouterPrepared:
    """Router-side prepared statement.

    Holds the coordinator's :class:`PreparedQuery` (parameter count,
    column names, gather-tier execution) plus a private parse of the
    same SQL whose :class:`~repro.sql.ast.Parameter` nodes the router
    binds at EXECUTE time to extract the partition key — the fast path
    lazily prepares the same SQL on the owning shard's connection.
    """

    def __init__(self, sql: str, statement: ast.Select,
                 coordinator: PreparedQuery):
        self.sql = sql
        self.statement = statement
        self.coordinator = coordinator
        self.parameters = PreparedQuery._collect_parameters(statement)
        #: shard index -> client-side Prepared on that shard.
        self.backend: Dict[int, Any] = {}

    @property
    def parameter_count(self) -> int:
        return self.coordinator.parameter_count

    @property
    def column_names(self) -> List[str]:
        return self.coordinator.column_names


class Router(Server):
    """A wire-protocol server that fans statements out to shards.

    ::

        router = Router([("127.0.0.1", 9001), ("127.0.0.1", 9002)])
        router.start()

    Clients connect to ``router.address`` exactly as they would to a
    single server. ``shard_auth`` is the token the *shards* expect (the
    router's own ``auth_token`` gates its clients independently).
    """

    def __init__(
        self,
        shards,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
        shard_auth: Optional[str] = None,
        max_queue: int = 64,
        backlog: int = 32,
        db: Optional[Database] = None,
    ):
        super().__init__(
            db or Database(), host=host, port=port,
            auth_token=auth_token, max_queue=max_queue, backlog=backlog,
        )
        self.shard_addresses: List[Tuple[str, int]] = [
            (str(h), int(p)) for h, p in shards
        ]
        if not self.shard_addresses:
            raise ValueError("a router needs at least one shard")
        self.shard_auth = shard_auth
        self.shard_map = ShardMap(len(self.shard_addresses))
        #: Routing-tier counters, mirrored into the metrics registry and
        #: the SHARD_STATE reply (tests assert on these).
        self.routing: Dict[str, int] = {
            "fast_path": 0,
            "scatter": 0,
            "gather": 0,
            "single_shard_writes": 0,
            "multi_shard_writes": 0,
            "broadcast_writes": 0,
        }
        self._routing_lock = threading.Lock()
        #: Router-assigned global write sequence: incremented once per
        #: write on the single-writer thread, so its value *is* the
        #: deterministic order every shard observes.
        self.global_sequence = 0
        self._plan_cache: "OrderedDict[str, _ReadPlan]" = OrderedDict()
        self._plan_lock = threading.Lock()
        #: Backoff for router->shard connections: fail fast — a dead
        #: shard should surface as SHARD_UNAVAILABLE in tens of
        #: milliseconds, not after the client-default one-second ramp.
        self._backend_retry = RetryPolicy(
            base_delay=0.02, max_delay=0.1, multiplier=2.0, jitter=0.25,
            max_attempts=2,
        )
        self._admin_lock = threading.Lock()
        self._admin: Dict[int, Client] = {}

    # ------------------------------------------------------------------
    # backend connections
    # ------------------------------------------------------------------

    def _backend(self, session: Session, shard: int) -> Client:
        """The per-session client for one shard (lazy).

        Per-session so concurrent frontend sessions never serialize on
        a shared shard connection — the fan-out of two sessions
        proceeds in parallel, which is what makes sharded point-read
        throughput scale in the benchmark.
        """
        backends = getattr(session, "shard_backends", None)
        if backends is None:
            backends = {}
            session.shard_backends = backends
        client = backends.get(shard)
        if client is None:
            host, port = self.shard_addresses[shard]
            client = Client(
                host, port,
                auth=self.shard_auth,
                session=f"router:{session.name}@{shard}",
                connect_timeout=2.0,
                retry_policy=self._backend_retry,
            )
            backends[shard] = client
        return client

    def _admin_backend(self, shard: int) -> Client:
        client = self._admin.get(shard)
        if client is None:
            host, port = self.shard_addresses[shard]
            client = Client(
                host, port,
                auth=self.shard_auth,
                session=f"router:admin@{shard}",
                connect_timeout=1.0,
                retry_policy=self._backend_retry,
            )
            self._admin[shard] = client
        return client

    def _teardown(self, session: Session) -> None:
        backends = getattr(session, "shard_backends", None)
        if backends:
            for client in backends.values():
                try:
                    client.close()
                except Exception:
                    pass
            backends.clear()
        super()._teardown(session)

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> bool:
        finished = super().shutdown(drain=drain, timeout=timeout)
        with self._admin_lock:
            for client in self._admin.values():
                try:
                    client.close()
                except Exception:
                    pass
            self._admin.clear()
        return finished

    def _node_name(self) -> Optional[str]:
        return "router"

    # ------------------------------------------------------------------
    # dispatch: SHARD_STATE
    # ------------------------------------------------------------------

    def _dispatch(self, session, lock, request) -> bool:
        if request.get("type") == "SHARD_STATE":
            return self._send_safely(
                session.sock, lock,
                self._shard_state_message(request.get("id")),
            )
        return super()._dispatch(session, lock, request)

    def _shard_state_message(self, request_id=None) -> Dict[str, Any]:
        shards = []
        for index, (host, port) in enumerate(self.shard_addresses):
            with self._admin_lock:
                try:
                    healthy = self._admin_backend(index).ping()
                except Exception:
                    healthy = False
            shards.append({
                "index": index, "host": host, "port": port,
                "healthy": healthy,
            })
        with self._routing_lock:
            routing = dict(self.routing)
        return {
            "type": "SHARD_STATE",
            "id": request_id,
            "sharded": True,
            "map": self.shard_map.describe(),
            "shards": shards,
            "routing": routing,
            "global_sequence": self.global_sequence,
        }

    def _count_route(self, tier: str, fanout: Optional[List[int]] = None):
        with self._routing_lock:
            self.routing[tier] = self.routing.get(tier, 0) + 1
        self._inc_counter("repro_router_statements_total", route=tier)
        for shard in fanout or ():
            self._inc_counter("repro_router_fanout_total", shard=str(shard))

    # ------------------------------------------------------------------
    # statement routing
    # ------------------------------------------------------------------

    def _run_statement(self, session: Session, request):
        statement_budget = protocol.budget_from_wire(request.get("budget"))
        effective = QueryBudget.tightest(
            self.db.planner_options.budget,
            self.db.budget,
            session.budget,
            statement_budget,
        )
        token = (
            effective.start() if effective is not None else CancellationToken()
        )
        budget_wire = protocol.budget_to_wire(effective)
        if session.disconnected:
            raise ShuttingDownError("client disconnected")
        server_trace = None
        if observability_tracing.recording_collector() is not None:
            stamped = observability_tracing.TraceContext.from_wire(
                request.get("trace")
            )
            if stamped is not None and stamped.sampled:
                server_trace = stamped.child()
        session.active_token = token
        session.statements += 1
        try:
            with observability_tracing.activate(server_trace), \
                    observability_tracing.span(
                        "router.statement",
                        context=server_trace,
                        own=True,
                        session=session.name,
                    ):
                if request.get("type") == "EXECUTE":
                    return self._route_execute(
                        session, request, budget_wire, token
                    )
                sql = request.get("sql")
                if not isinstance(sql, str):
                    raise ProtocolError("QUERY requires a string 'sql' field")
                return self._route_sql(session, sql, budget_wire, token)
        finally:
            session.active_token = None

    def _route_sql(self, session: Session, sql: str, budget_wire, token):
        plan = self._cached_plan(sql)
        if plan is None:
            statement = parse_statement(sql)
            if statement_is_write(statement):
                return self.scheduler.execute_write(
                    lambda: self._execute_write(
                        session, sql, statement, budget_wire
                    ),
                    token=token,
                    session=session.name,
                )
            plan = self._plan_read(sql, statement)
            self._cache_plan(sql, plan)
        return self._run_read_plan(session, sql, plan, budget_wire, token)

    def _cached_plan(self, sql: str) -> Optional[_ReadPlan]:
        with self._plan_lock:
            plan = self._plan_cache.get(sql)
            if plan is not None:
                self._plan_cache.move_to_end(sql)
            return plan

    def _cache_plan(self, sql: str, plan: _ReadPlan) -> None:
        with self._plan_lock:
            self._plan_cache[sql] = plan
            while len(self._plan_cache) > _PLAN_CACHE_SIZE:
                self._plan_cache.popitem(last=False)

    def _invalidate_plans(self) -> None:
        with self._plan_lock:
            self._plan_cache.clear()

    def _partition_column_of(self, table: str) -> Optional[str]:
        return self.shard_map.partition_column(table)

    # -- read planning --------------------------------------------------

    def _plan_read(self, sql: str, statement) -> _ReadPlan:
        if not isinstance(statement, ast.Select):
            return _ReadPlan("gather")  # EXPLAIN, UNION, ...
        if self._has_subquery(statement) or self._has_parameter(statement):
            return _ReadPlan("gather")
        keys = bound_partition_keys(statement, self._partition_column_of)
        if keys is not None:
            shards = {self.shard_map.shard_for_key(key) for key in keys}
            if len(shards) == 1:
                return _ReadPlan("fast_path", shard=shards.pop())
        target = self._scatter_target(statement)
        if target is None:
            return _ReadPlan("gather")
        scatter = self._plan_scatter(sql, statement)
        if scatter is None:
            return _ReadPlan("gather")
        return scatter

    def _scatter_target(self, statement: ast.Select) -> Optional[str]:
        """The partitioned table this SELECT scans, if it is a plain
        single-table statement; None sends it to the gather tier."""
        if len(statement.from_items) != 1:
            return None
        item = statement.from_items[0]
        if not isinstance(item, ast.TableRef):
            return None
        if not self.shard_map.is_partitioned(item.name):
            return None
        return item.name

    @staticmethod
    def _has_subquery(statement: ast.Select) -> bool:
        for expression in _select_expressions(statement):
            for node in ast.walk_expression(expression):
                if isinstance(node, _SUBQUERY_NODES):
                    return True
        return False

    @staticmethod
    def _has_parameter(statement: ast.Select) -> bool:
        for expression in _select_expressions(statement):
            for node in ast.walk_expression(expression):
                if isinstance(node, ast.Parameter):
                    return True
        return False

    def _plan_scatter(self, sql, statement: ast.Select) -> Optional[_ReadPlan]:
        if statement.having is not None:
            return None
        aggregates = [
            bool(_aggregate_calls(item.expression))
            for item in statement.items
        ]
        if any(aggregates) or statement.group_by:
            if statement.distinct:
                return None
            return self._plan_scatter_aggregate(sql, statement)
        return self._plan_scatter_rows(statement)

    def _plan_scatter_rows(self, statement: ast.Select) -> Optional[_ReadPlan]:
        order = self._order_positions(statement)
        if statement.order_by and order is None:
            return None  # cannot re-sort merged rows: keys not projected
        push_limit = None
        shard_order: List[ast.OrderItem] = []
        if statement.limit is not None:
            push_limit = statement.limit + (statement.offset or 0)
            shard_order = statement.order_by
        shard_select = ast.Select(
            items=statement.items,
            from_items=statement.from_items,
            where=statement.where,
            order_by=shard_order,
            limit=push_limit,
            distinct=statement.distinct,
        )
        merge = _MergeSpec(
            mode="rows", group_count=0, outputs=None,
            order=order or [], limit=statement.limit,
            offset=statement.offset, distinct=statement.distinct,
            columns=None,
        )
        return _ReadPlan(
            "scatter", shard_sql=render_statement(shard_select), merge=merge,
        )

    def _plan_scatter_aggregate(
        self, sql: str, statement: ast.Select
    ) -> Optional[_ReadPlan]:
        group_keys = [
            render_expression(g).lower() for g in statement.group_by
        ]
        shard_items: List[ast.SelectItem] = [
            ast.SelectItem(g) for g in statement.group_by
        ]
        outputs: List[Tuple] = []
        for item in statement.items:
            expression = item.expression
            calls = _aggregate_calls(expression)
            if not calls:
                rendered = render_expression(expression).lower()
                if rendered not in group_keys:
                    return None  # non-aggregate item outside GROUP BY
                outputs.append(("column", group_keys.index(rendered)))
                continue
            # the item must BE a single aggregate call — COUNT(*) + 1
            # style arithmetic over aggregates goes to the gather tier
            if expression is not calls[0] or len(calls) != 1:
                return None
            call = calls[0]
            if call.distinct or call.name not in _MERGEABLE_AGGREGATES:
                return None
            if call.name == "AVG":
                sum_slot = len(shard_items)
                shard_items.append(
                    ast.SelectItem(ast.FunctionCall("SUM", call.args))
                )
                count_slot = len(shard_items)
                shard_items.append(
                    ast.SelectItem(ast.FunctionCall("COUNT", call.args))
                )
                outputs.append(("avg", sum_slot, count_slot))
            else:
                slot = len(shard_items)
                shard_items.append(ast.SelectItem(call))
                outputs.append((call.name.lower(), slot))
        order = self._order_positions(statement)
        if statement.order_by and order is None:
            return None
        shard_select = ast.Select(
            items=shard_items,
            from_items=statement.from_items,
            where=statement.where,
            group_by=statement.group_by,
        )
        columns = self.scheduler.run_read(
            lambda: self.db.prepare(
                render_statement(
                    ast.Select(
                        items=statement.items,
                        from_items=statement.from_items,
                        where=statement.where,
                        group_by=statement.group_by,
                    )
                )
            ).column_names
        )
        merge = _MergeSpec(
            mode="aggregate", group_count=len(statement.group_by),
            outputs=outputs, order=order or [], limit=statement.limit,
            offset=statement.offset, distinct=False, columns=columns,
        )
        return _ReadPlan(
            "scatter", shard_sql=render_statement(shard_select), merge=merge,
        )

    def _order_positions(
        self, statement: ast.Select
    ) -> Optional[List[Tuple[int, bool]]]:
        """Map each ORDER BY key to a position in the *output* rows, or
        None when some key is not projected (the router cannot evaluate
        arbitrary expressions over merged wire rows)."""
        if not statement.order_by:
            return []
        rendered_items = [
            render_expression(item.expression).lower()
            for item in statement.items
        ]
        aliases = [
            (item.alias or "").lower() for item in statement.items
        ]
        star = (
            len(statement.items) == 1
            and isinstance(statement.items[0].expression, ast.Star)
        )
        star_columns: List[str] = []
        if star:
            target = self._scatter_target(statement)
            if target is not None and self.db.catalog.has_table(target):
                star_columns = [
                    c.lower()
                    for c in self.db.catalog.table(target).schema.column_names
                ]
        positions: List[Tuple[int, bool]] = []
        for order in statement.order_by:
            rendered = render_expression(order.expression).lower()
            name = (
                order.expression.name.lower()
                if isinstance(order.expression, ast.Identifier) else None
            )
            if rendered in rendered_items:
                positions.append(
                    (rendered_items.index(rendered), order.ascending)
                )
            elif name is not None and name in aliases:
                positions.append((aliases.index(name), order.ascending))
            elif star and name is not None and name in star_columns:
                positions.append(
                    (star_columns.index(name), order.ascending)
                )
            else:
                return None
        return positions

    # -- read execution -------------------------------------------------

    def _run_read_plan(self, session, sql, plan: _ReadPlan,
                       budget_wire, token):
        if plan.tier == "fast_path":
            self._count_route("fast_path", fanout=[plan.shard])
            return self._forward(session, plan.shard, sql, budget_wire)
        if plan.tier == "scatter":
            all_shards = list(range(len(self.shard_addresses)))
            self._count_route("scatter", fanout=all_shards)
            results = self.scheduler.run_read(
                lambda: self._fan_out_read(
                    session, plan.shard_sql, budget_wire
                )
            )
            return _merge_results(plan.merge, results)
        self._count_route("gather")
        return self.scheduler.run_read(
            lambda: self.db.execute(sql, token=token)
        )

    def _forward(self, session, shard: int, sql: str, budget_wire):
        backend = self._backend(session, shard)
        with observability_tracing.span(
            "router.forward", own=True, shard=shard,
        ):
            try:
                return backend.execute(sql, budget=budget_wire)
            except ClientConnectionError as error:
                raise ShardUnavailableError(
                    f"shard {shard} is unreachable: {error}", shard=shard,
                )

    def _fan_out_read(self, session, shard_sql: str, budget_wire):
        """Run one rewritten statement on every shard in parallel;
        returns the per-shard ResultSets in shard order. Any
        unreachable shard fails the whole statement — a partial scan
        silently missing one shard's rows is worse than an error."""
        count = len(self.shard_addresses)
        results: List[Optional[ResultSet]] = [None] * count
        errors: List[Optional[BaseException]] = [None] * count
        parent = observability_tracing.current_trace()
        with observability_tracing.span(
            "router.fanout", own=True, shards=count, mode="scatter",
        ):
            def run(shard: int) -> None:
                try:
                    with observability_tracing.activate(parent):
                        results[shard] = self._backend(
                            session, shard
                        ).execute(shard_sql, budget=budget_wire)
                except BaseException as error:  # noqa: BLE001
                    errors[shard] = error
            threads = [
                threading.Thread(
                    target=run, args=(shard,),
                    name=f"repro-fanout-{shard}", daemon=True,
                )
                for shard in range(count)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for shard, error in enumerate(errors):
            if isinstance(error, ClientConnectionError):
                raise ShardUnavailableError(
                    f"shard {shard} is unreachable: {error}", shard=shard,
                )
            if error is not None:
                raise error
        return results

    # -- prepared statements -------------------------------------------

    def _handle_prepare(self, session, lock, request) -> bool:
        request_id = request.get("id")
        sql = request.get("sql")
        try:
            if not isinstance(sql, str):
                raise ProtocolError("PREPARE requires a string 'sql' field")
            coordinator = self.scheduler.run_read(
                lambda: self.db.prepare(sql)
            )
            statement = parse_statement(sql)
            prepared = _RouterPrepared(sql, statement, coordinator)
        except BaseException as error:
            return self._send_error(session, lock, request_id, error)
        handle = session.mint_handle()
        session.prepared[handle] = prepared
        return self._send_safely(session.sock, lock, {
            "type": "PREPARED",
            "id": request_id,
            "statement": handle,
            "params": prepared.parameter_count,
            "columns": prepared.column_names,
        })

    def _route_execute(self, session, request, budget_wire, token):
        handle = request.get("statement")
        prepared = session.prepared.get(handle)
        if prepared is None:
            raise ProtocolError(f"unknown prepared statement: {handle!r}")
        params = request.get("params") or []
        if not isinstance(params, list):
            raise ProtocolError("EXECUTE 'params' must be an array")
        if statement_is_write(prepared.statement):
            # A prepared write must flow through the coordinator-first
            # write pipeline (mirror + fan-out + compensation), not the
            # read fast path: bind the parameters as literals and run
            # it exactly like the equivalent plain-SQL write.
            if len(params) != len(prepared.parameters):
                raise ExecutionError(
                    f"prepared query takes {len(prepared.parameters)} "
                    f"parameter(s), got {len(params)}"
                )
            bound_sql = _substitute_parameters(prepared.sql, params)
            statement = parse_statement(bound_sql)
            return self.scheduler.execute_write(
                lambda: self._execute_write(
                    session, bound_sql, statement, budget_wire
                ),
                token=token,
                session=session.name,
            )
        shard = None
        if len(params) == len(prepared.parameters):
            for parameter, value in zip(prepared.parameters, params):
                parameter.value = value
            keys = bound_partition_keys(
                prepared.statement, self._partition_column_of
            )
            if keys is not None:
                shards = {self.shard_map.shard_for_key(k) for k in keys}
                if len(shards) == 1:
                    shard = shards.pop()
        if shard is not None:
            self._count_route("fast_path", fanout=[shard])
            backend_prepared = prepared.backend.get(shard)
            with observability_tracing.span(
                "router.forward", own=True, shard=shard,
            ):
                try:
                    if backend_prepared is None:
                        backend_prepared = self._backend(
                            session, shard
                        ).prepare(prepared.sql)
                        prepared.backend[shard] = backend_prepared
                    return backend_prepared.execute(
                        *params, budget=budget_wire
                    )
                except ClientConnectionError as error:
                    prepared.backend.pop(shard, None)
                    raise ShardUnavailableError(
                        f"shard {shard} is unreachable: {error}",
                        shard=shard,
                    )
        self._count_route("gather")
        return self.scheduler.run_read(
            lambda: prepared.coordinator.execute(*params, token=token)
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _execute_write(self, session, sql, statement, budget_wire):
        """Runs on the single-writer thread — its execution order is
        the router's global write sequence."""
        self.global_sequence += 1
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete,
                                  ast.Truncate)):
            return self._execute_dml(session, sql, statement, budget_wire)
        return self._execute_ddl(session, sql, statement, budget_wire)

    # -- DDL ------------------------------------------------------------

    def _execute_ddl(self, session, sql, statement, budget_wire):
        """DDL is broadcast: every shard holds every table's schema
        (partitioning places *rows*, not tables). The exception is a
        graph view over partitioned sources, which only the coordinator
        can materialize (see the module docstring)."""
        self._invalidate_plans()
        # validate sharding constraints before touching any state
        if isinstance(statement, ast.CreateGraphView):
            self.shard_map.register_graph_view(statement)  # may raise
        if isinstance(statement, ast.AlterGraphViewAddSource):
            if self.shard_map.graph_view_is_broadcast(statement.name) and \
                    self.shard_map.is_partitioned(statement.source):
                raise CatalogError(
                    f"graph view {statement.name} is broadcast; cannot "
                    f"add partitioned source {statement.source}"
                )
        try:
            result = self.db.execute(sql)
        except BaseException:
            if isinstance(statement, ast.CreateGraphView):
                self.shard_map.drop_graph_view(statement.name)
            raise
        # coordinator accepted: record the layout, then broadcast
        if isinstance(statement, ast.CreateTable):
            self.shard_map.register_table(statement)
        if isinstance(statement, ast.Drop):
            if statement.kind == "TABLE":
                self.shard_map.drop_table(statement.name)
            elif statement.kind == "GRAPH VIEW":
                self.shard_map.drop_graph_view(statement.name)
        if not self._ddl_reaches_shards(statement):
            return result
        targets = list(range(len(self.shard_addresses)))
        self._count_route("broadcast_writes", fanout=targets)
        failures = self._fan_out_write(
            session, [(shard, [sql]) for shard in targets], budget_wire,
        )
        if failures:
            failed = sorted(failures)
            raise CrossShardPartialError(
                f"DDL applied on the coordinator but failed on "
                f"shard(s) {failed}: {failures[failed[0]]}",
                failed_shards=failed,
            )
        return result

    def _ddl_reaches_shards(self, statement) -> bool:
        if isinstance(statement, ast.CreateGraphView):
            return self.shard_map.graph_view_is_broadcast(statement.name)
        if isinstance(statement, ast.AlterGraphViewAddSource):
            return self.shard_map.graph_view_is_broadcast(statement.name)
        if isinstance(statement, ast.Drop) and statement.kind == "GRAPH VIEW":
            # coordinator-only views never existed on the shards
            return self.shard_map.graph_view_is_broadcast(statement.name)
        return True

    # -- DML ------------------------------------------------------------

    def _execute_dml(self, session, sql, statement, budget_wire):
        if isinstance(statement, ast.Insert) and statement.query is not None:
            statement = self._materialize_insert(statement)
            sql = render_statement(statement)
        shipments, compensations = self._dml_shipments(sql, statement)
        # prepare: apply to the coordinator mirror inside a transaction.
        # Global constraints (primary keys, graph-view integrity) are
        # enforced HERE, before any shard is touched.
        fresh_transaction = not self.db.transactions.in_transaction
        if fresh_transaction:
            self.db.begin()
        try:
            result = self.db.execute(sql)
        except BaseException:
            if fresh_transaction:
                self.db.rollback()
            raise
        targets = [shard for shard, statements in shipments if statements]
        if len(targets) > 1:
            self._count_route("multi_shard_writes", fanout=targets)
        elif targets:
            self._count_route("single_shard_writes", fanout=targets)
        failures = self._fan_out_write(
            session,
            [(s, stmts) for s, stmts in shipments if stmts],
            budget_wire,
        )
        if not failures:
            if fresh_transaction:
                self.db.commit()
            return result
        applied = [s for s in targets if s not in failures]
        failed = sorted(failures)
        if not applied:
            # nothing landed anywhere: clean all-or-nothing abort
            if fresh_transaction:
                self.db.rollback()
            self._raise_shard_failure(failures[failed[0]], failed, statement)
        # partially applied: try to compensate the shards that took it
        if compensations and self._compensate(
            session, applied, compensations, budget_wire
        ):
            if fresh_transaction:
                self.db.rollback()
            raise CrossShardAbortError(
                f"write failed on shard(s) {failed} and was rolled back "
                f"everywhere: {failures[failed[0]]}"
            )
        # cannot undo what the applied shards did — keep the
        # coordinator (it is authoritative) and report the divergence
        if fresh_transaction:
            self.db.commit()
        raise CrossShardPartialError(
            f"write applied on the coordinator and shard(s) {applied} "
            f"but failed on shard(s) {failed}: {failures[failed[0]]}; "
            f"re-seed the failed shard(s) from the coordinator",
            failed_shards=failed,
        )

    def _raise_shard_failure(self, error, failed, statement):
        if isinstance(error, RemoteError):
            single = (
                len(failed) == 1
                and not isinstance(statement, ast.Truncate)
            )
            if single:
                raise error  # the shard's verdict, verbatim
            raise CrossShardAbortError(
                f"write rejected by shard(s) {failed} and rolled back "
                f"everywhere: {error}"
            )
        raise ShardUnavailableError(
            f"write failed: shard(s) {failed} unreachable ({error}); "
            f"nothing was applied",
            shard=failed[0],
        )

    def _dml_shipments(self, sql, statement):
        """``([(shard, [sql, ...])], {shard: [compensating sql, ...]})``
        — which statement text each shard must apply, and how to undo
        it if a sibling shard fails after this one succeeded."""
        all_shards = list(range(len(self.shard_addresses)))
        table = getattr(statement, "table", None)
        partition = (
            self._partition_column_of(table) if table is not None else None
        )
        if partition is None:
            # broadcast table (or unknown — the coordinator will reject
            # the statement before anything ships): full fan-out
            return [(shard, [sql]) for shard in all_shards], {}
        if isinstance(statement, ast.Insert):
            return self._split_insert(statement, table, partition)
        if isinstance(statement, ast.Update):
            for name, _expr in statement.assignments:
                if name.lower() == partition.lower():
                    raise PlanningError(
                        f"cannot update partition column {partition} of "
                        f"{table}: rows cannot move between shards"
                    )
        if isinstance(statement, ast.Truncate):
            return [(shard, [sql]) for shard in all_shards], {}
        keys = bound_partition_keys(statement, self._partition_column_of)
        if keys is not None:
            shards = sorted({self.shard_map.shard_for_key(k) for k in keys})
            return [(shard, [sql]) for shard in shards], {}
        # unbounded UPDATE/DELETE: every shard applies it to its slice
        return [(shard, [sql]) for shard in all_shards], {}

    def _split_insert(self, statement: ast.Insert, table: str,
                      partition: str):
        """Group INSERT VALUES rows by owning shard. Returns per-shard
        INSERT statements (reusing the original value expressions) plus
        per-shard compensating DELETEs keyed on the full row image."""
        if not self.db.catalog.has_table(table):
            # let the coordinator raise its canonical "unknown table"
            return [(0, [render_statement(statement)])], {}
        schema = self.db.catalog.table(table).schema
        position = schema.position_of(partition)
        if statement.columns is not None:
            names = [c.lower() for c in statement.columns]
            if partition.lower() not in names:
                raise PlanningError(
                    f"INSERT into partitioned table {table} must supply "
                    f"partition column {partition}"
                )
            value_index = names.index(partition.lower())
            column_names = list(statement.columns)
        else:
            value_index = position
            column_names = list(schema.column_names)
        scope = Scope([RelationBinding("#none", 0, schema)])
        rows_by_shard: Dict[int, List[List[ast.Expression]]] = {}
        comp_by_shard: Dict[int, List[str]] = {}
        for row in statement.rows:
            if value_index >= len(row):
                raise PlanningError(
                    f"INSERT into partitioned table {table} must supply "
                    f"partition column {partition}"
                )
            value = ExpressionCompiler(scope).compile(
                row[value_index]
            ).fn([None])
            stable_hash(value)  # validate the key type before any state
            shard = self.shard_map.shard_for_key(value)
            rows_by_shard.setdefault(shard, []).append(row)
            comp_by_shard.setdefault(shard, []).append(
                _delete_row_sql(table, column_names, row, scope)
            )
        shipments = [
            (
                shard,
                [render_statement(ast.Insert(
                    statement.table, statement.columns,
                    rows_by_shard[shard],
                ))],
            )
            for shard in sorted(rows_by_shard)
        ]
        return shipments, comp_by_shard

    def _materialize_insert(self, statement: ast.Insert) -> ast.Insert:
        """INSERT ... SELECT with the query evaluated once on the
        coordinator, so every shard receives identical literal rows."""
        result = self.db.execute(render_statement(statement.query))
        rows = [
            [ast.Literal(value) for value in row] for row in result.rows
        ]
        return ast.Insert(statement.table, statement.columns, rows)

    def _fan_out_write(self, session, shipments, budget_wire):
        """Apply per-shard statements in shard-index order (the
        deterministic fan-out the global sequence promises). Returns
        ``{shard: error}`` for the shards that did not apply them."""
        failures: Dict[int, BaseException] = {}
        ordered = sorted(shipments)
        span_shards = [shard for shard, _stmts in ordered]
        with observability_tracing.span(
            "router.fanout", own=True,
            shards=len(span_shards), mode="write",
        ):
            for shard, statements in ordered:
                backend = self._backend(session, shard)
                for text in statements:
                    try:
                        backend.execute(text, budget=budget_wire)
                    except (RemoteError, ClientConnectionError) as error:
                        failures[shard] = error
                        break
        return failures

    def _compensate(self, session, applied, compensations,
                    budget_wire) -> bool:
        """Undo a half-applied write on the shards that accepted it;
        True only when every compensating statement succeeded."""
        for shard in applied:
            backend = self._backend(session, shard)
            for text in compensations.get(shard, ()):
                try:
                    backend.execute(text, budget=budget_wire)
                except (RemoteError, ClientConnectionError):
                    return False
        return True

    # ------------------------------------------------------------------
    # error rendering
    # ------------------------------------------------------------------

    def _send_error(self, session, lock, request_id, error) -> bool:
        if isinstance(error, RemoteError):
            # a shard's verdict forwarded verbatim: keep its stable code
            # (TIMEOUT stays TIMEOUT, not DATABASE_ERROR)
            self._count_error(error.code)
            frame = {
                "type": "ERROR",
                "id": request_id,
                "code": error.code,
                "message": str(error),
            }
            if error.leader_hint is not None:
                frame["leader_hint"] = error.leader_hint
            return self._send_safely(session.sock, lock, frame)
        return super()._send_error(session, lock, request_id, error)


# ---------------------------------------------------------------------------
# scatter merge
# ---------------------------------------------------------------------------


def _substitute_parameters(sql: str, values: List[Any]) -> str:
    """Replace each ``?`` placeholder in ``sql`` with the rendered
    literal for the corresponding value.

    The scan is quote- and comment-aware, so a ``?`` inside a string
    literal or a comment is left alone — this turns a prepared write
    plus its bound parameters into the exact plain-SQL statement the
    write pipeline (coordinator mirror + shard fan-out) already
    handles.
    """
    out: List[str] = []
    remaining = list(values)
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        j += 2
                        continue
                    j += 1
                    break
                j += 1
            out.append(sql[i:j])
            i = j
        elif sql.startswith("--", i):
            j = sql.find("\n", i)
            j = n if j < 0 else j
            out.append(sql[i:j])
            i = j
        elif sql.startswith("/*", i):
            j = sql.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(sql[i:j])
            i = j
        elif ch == "?":
            if not remaining:
                raise ExecutionError(
                    "prepared statement has more placeholders than "
                    "bound parameters"
                )
            out.append(render_literal(remaining.pop(0)))
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _select_expressions(statement: ast.Select):
    if statement.where is not None:
        yield statement.where
    if statement.having is not None:
        yield statement.having
    for item in statement.items:
        yield item.expression
    for group in statement.group_by:
        yield group
    for order in statement.order_by:
        yield order.expression


def _aggregate_calls(expression: ast.Expression) -> List[ast.FunctionCall]:
    return [
        node for node in ast.walk_expression(expression)
        if isinstance(node, ast.FunctionCall)
        and node.name in _MERGEABLE_AGGREGATES
    ]


def _merge_results(merge: _MergeSpec, results: List[ResultSet]) -> ResultSet:
    if merge.mode == "rows":
        rows: List[Tuple] = []
        for result in results:
            rows.extend(result.rows)
        if merge.distinct:
            seen = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        columns = results[0].columns if results else []
    else:
        rows = _merge_aggregate_rows(merge, results)
        columns = merge.columns
    rows = _apply_order_and_limit(merge, rows)
    return ResultSet(columns, rows)


def _merge_aggregate_rows(merge: _MergeSpec, results) -> List[Tuple]:
    group_count = merge.group_count
    merged: "OrderedDict[Tuple, List[Any]]" = OrderedDict()
    for result in results:
        for row in result.rows:
            key = tuple(row[:group_count])
            state = merged.get(key)
            if state is None:
                merged[key] = list(row)
                continue
            for spec in merge.outputs:
                if spec[0] == "avg":
                    _combine(state, row, "sum", spec[1])
                    _combine(state, row, "count", spec[2])
                elif spec[0] != "column":
                    _combine(state, row, spec[0], spec[1])
    out: List[Tuple] = []
    for state in merged.values():
        row = []
        for spec in merge.outputs:
            if spec[0] == "column":
                row.append(state[spec[1]])
            elif spec[0] == "avg":
                total, count = state[spec[1]], state[spec[2]]
                row.append(
                    total / count if count and total is not None else None
                )
            else:
                row.append(state[spec[1]])
        out.append(tuple(row))
    if not out and group_count == 0 and results:
        # SQL scalar-aggregate semantics: one row even over no input —
        # every shard returned one, so this only guards the edge where
        # results were empty result sets
        pass
    return out


def _combine(state: List[Any], row, op: str, slot: int) -> None:
    current, incoming = state[slot], row[slot]
    if op == "count":
        state[slot] = (current or 0) + (incoming or 0)
    elif op == "sum":
        if incoming is None:
            return
        state[slot] = incoming if current is None else current + incoming
    elif op == "min":
        if incoming is None:
            return
        state[slot] = incoming if current is None else min(current, incoming)
    elif op == "max":
        if incoming is None:
            return
        state[slot] = incoming if current is None else max(current, incoming)


def _apply_order_and_limit(merge: _MergeSpec, rows: List[Tuple]):
    # stable right-to-left multi-key sort with the engine's own
    # null-aware key: NULLs first ascending, last descending — the
    # merged order is indistinguishable from single-node execution
    for position, ascending in reversed(merge.order):
        rows.sort(
            key=lambda row: _NullAwareKey(row[position]),
            reverse=not ascending,
        )
    if merge.offset:
        rows = rows[merge.offset:]
    if merge.limit is not None:
        rows = rows[:merge.limit]
    return rows


def _delete_row_sql(table: str, column_names: List[str], row, scope) -> str:
    """A compensating DELETE matching one inserted row by full image."""
    conjuncts: List[ast.Expression] = []
    for name, expression in zip(column_names, row):
        value = ExpressionCompiler(scope).compile(expression).fn([None])
        if value is None:
            conjuncts.append(
                ast.IsNull(ast.Identifier(name), negated=False)
            )
        else:
            conjuncts.append(ast.BinaryOp(
                "=", ast.Identifier(name), ast.Literal(value)
            ))
    where: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        where = conjunct if where is None else ast.BinaryOp(
            "AND", where, conjunct
        )
    return render_statement(ast.Delete(table, where))
