"""The shard map: hash slots, partition columns, co-partitioning rules.

Partitioning model (VoltDB's, which the paper's engine inherits):

* a table declared ``PARTITION BY col`` is **partitioned** — each row
  lives on exactly one shard, chosen by hashing the row's value in that
  column through an explicit slot table (``slot = hash(key) % SLOTS``,
  ``shard = slot_table[slot]``);
* a table without the clause is **broadcast** — every shard holds a
  full copy, so any shard can join against it locally;
* a graph view over partitioned sources must be **co-partitioned by
  source-vertex id**: the vertex table partitioned on the column mapped
  to the vertex ``ID`` attribute, and the edge table partitioned on the
  column mapped to the edge ``FROM`` attribute. Every edge then hashes
  with its source vertex, so single-source expansion stays addressable
  by one key. (Shard-local subgraphs are still not closed under
  traversal — an edge's *target* may live elsewhere — which is why the
  router executes multi-shard PATHS at its coordinator.)

The hash must be stable across processes and Python runs (``hash()`` is
salted per process), so keys hash through CRC-32 of a canonical
encoding. Partition keys are restricted to integers and strings — the
two types the paper's workloads key vertexes by.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CatalogError, PlanningError, ShardRedirectError
from ..planner.conjuncts import extract_column_equality, split_conjuncts
from ..sql import ast

#: Number of hash slots in the explicit slot table. A level of
#: indirection between keys and shards: rebalancing moves slots, not
#: re-hashes keys (this PR never moves them, but the wire format and
#: the map carry the table so a future rebalancer does not need a new
#: protocol).
DEFAULT_SLOTS = 64


def stable_hash(value: Any) -> int:
    """A process-stable hash for a partition key (int or str)."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise PlanningError(
            f"partition key must be an integer or a string, got "
            f"{type(value).__name__}"
        )
    if isinstance(value, int):
        encoded = b"i:" + str(value).encode("ascii")
    else:
        encoded = b"s:" + value.encode("utf-8")
    return zlib.crc32(encoded)


class ShardMap:
    """Which shard owns what: slot table + per-table partition columns.

    The map is versioned; every router→shard frame may carry the
    version, and a shard that knows a *newer* layout answers
    ``SHARD_REDIRECT`` so a stale router (or a directly-connected
    client) reroutes instead of misplacing rows.
    """

    def __init__(self, shard_count: int, slots: int = DEFAULT_SLOTS):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self.slots = slots
        #: slot -> shard index (round-robin initial layout).
        self.slot_table: List[int] = [
            slot % shard_count for slot in range(slots)
        ]
        self.version = 1
        #: lower-cased table name -> partition column (None = broadcast).
        self._tables: Dict[str, Optional[str]] = {}
        #: lower-cased graph view name -> (vertex_source, edge_source).
        self._graph_views: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # key -> shard
    # ------------------------------------------------------------------

    def slot_for_key(self, key: Any) -> int:
        return stable_hash(key) % self.slots

    def shard_for_key(self, key: Any) -> int:
        return self.slot_table[self.slot_for_key(key)]

    # ------------------------------------------------------------------
    # catalog bookkeeping
    # ------------------------------------------------------------------

    def register_table(self, statement: ast.CreateTable) -> None:
        """Record a CREATE TABLE's partition declaration (validating
        that the partition column exists is the engine's job)."""
        self._tables[statement.name.lower()] = statement.partition_by

    def drop_table(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def drop_graph_view(self, name: str) -> None:
        self._graph_views.pop(name.lower(), None)

    def knows_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def partition_column(self, table: str) -> Optional[str]:
        return self._tables.get(table.lower())

    def is_partitioned(self, table: str) -> bool:
        return self._tables.get(table.lower()) is not None

    def register_graph_view(self, statement: ast.CreateGraphView) -> None:
        """Validate co-partitioning and record the view.

        Legal shapes:

        * both sources broadcast — the view is replicated everywhere;
        * vertex source partitioned on the column mapped to the vertex
          ``ID`` and edge source partitioned on the column mapped to
          the edge ``FROM`` (partition-by-source-vertex).

        Anything else would scatter a vertex and its out-edges across
        shards with unrelated keys, so it is rejected at CREATE.
        """
        vertex_part = self.partition_column(statement.vertex_source)
        edge_part = self.partition_column(statement.edge_source)
        if vertex_part is None and edge_part is None:
            self._graph_views[statement.name.lower()] = (
                statement.vertex_source, statement.edge_source,
            )
            return
        vertex_id = _mapped_column(statement.vertex_mappings, "ID")
        edge_from = _mapped_column(statement.edge_mappings, "FROM")
        if vertex_part is None or edge_part is None:
            raise CatalogError(
                f"graph view {statement.name}: sources must be "
                f"co-partitioned (or both broadcast); "
                f"{statement.vertex_source} is "
                f"{'partitioned' if vertex_part else 'broadcast'} but "
                f"{statement.edge_source} is "
                f"{'partitioned' if edge_part else 'broadcast'}"
            )
        if vertex_id is None or vertex_part.lower() != vertex_id.lower():
            raise CatalogError(
                f"graph view {statement.name}: vertex source "
                f"{statement.vertex_source} must be partitioned by its "
                f"vertex ID column {vertex_id!r}, not {vertex_part!r}"
            )
        if edge_from is None or edge_part.lower() != edge_from.lower():
            raise CatalogError(
                f"graph view {statement.name}: edge source "
                f"{statement.edge_source} must be partitioned by its "
                f"FROM column {edge_from!r} (the source-vertex id), "
                f"not {edge_part!r}"
            )
        self._graph_views[statement.name.lower()] = (
            statement.vertex_source, statement.edge_source,
        )

    def graph_view_is_broadcast(self, name: str) -> bool:
        sources = self._graph_views.get(name.lower())
        if sources is None:
            return False
        return not self.is_partitioned(sources[0]) and not self.is_partitioned(
            sources[1]
        )

    # ------------------------------------------------------------------
    # wire / introspection
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "shard_count": self.shard_count,
            "slots": self.slots,
            "slot_table": list(self.slot_table),
            "tables": {
                name: {
                    "partition_by": column,
                    "broadcast": column is None,
                }
                for name, column in sorted(self._tables.items())
            },
            "graph_views": {
                name: {
                    "vertex_source": sources[0],
                    "edge_source": sources[1],
                    "broadcast": self.graph_view_is_broadcast(name),
                }
                for name, sources in sorted(self._graph_views.items())
            },
        }


def _mapped_column(
    mappings: List[Tuple[str, str]], attribute: str
) -> Optional[str]:
    for name, column in mappings:
        if name.upper() == attribute:
            return column
    return None


# ---------------------------------------------------------------------------
# partition-key extraction (shared by the router and the shard guard)
# ---------------------------------------------------------------------------


def _literal_value(expression: ast.Expression) -> Tuple[bool, Any]:
    """``(bound, value)`` for the non-column side of an equality: a
    literal, or a prepared-statement parameter that has a value bound
    right now (the router routes at EXECUTE time, after binding)."""
    if isinstance(expression, ast.Literal):
        return True, expression.value
    if isinstance(expression, ast.Parameter):
        return expression.value is not None, expression.value
    if isinstance(expression, ast.UnaryOp) and expression.op == "-":
        bound, value = _literal_value(expression.operand)
        if bound and isinstance(value, (int, float)):
            return True, -value
        return False, None
    return False, None


def _single_table_target(
    statement: ast.Statement,
) -> Optional[Tuple[str, str, Optional[ast.Expression]]]:
    """``(table, alias, where)`` when the statement targets exactly one
    plain table; None otherwise."""
    if isinstance(statement, ast.Select):
        if len(statement.from_items) != 1:
            return None
        item = statement.from_items[0]
        if not isinstance(item, ast.TableRef):
            return None
        return item.name, item.alias, statement.where
    if isinstance(statement, ast.Update):
        return statement.table, statement.table, statement.where
    if isinstance(statement, ast.Delete):
        return statement.table, statement.table, statement.where
    return None


def bound_partition_keys(
    statement: ast.Statement,
    partition_column_of,
    column_order_of=None,
) -> Optional[List[Any]]:
    """The partition key(s) this statement is provably confined to.

    ``partition_column_of(table_name)`` -> partition column or None.
    ``column_order_of(table_name)`` (optional) -> the table's declared
    column order, letting INSERTs without an explicit column list
    resolve the partition position from the schema.
    Returns a non-empty list of key values when every row the statement
    touches shares them (a WHERE equality on the partition column, or
    INSERT rows whose partition values are literals), else ``None``.
    """
    if isinstance(statement, ast.Insert) and statement.query is None:
        column = partition_column_of(statement.table)
        if column is None:
            return None
        position = _insert_partition_position(statement, column)
        if (
            position is None
            and statement.columns is None
            and column_order_of is not None
        ):
            order = column_order_of(statement.table) or []
            for index, name in enumerate(order):
                if name.lower() == column.lower():
                    position = index
                    break
        if position is None:
            return None
        keys = []
        for row in statement.rows:
            if position >= len(row):
                return None
            bound, value = _literal_value(row[position])
            if not bound:
                return None
            keys.append(value)
        return keys or None
    target = _single_table_target(statement)
    if target is None:
        return None
    table, alias, where = target
    column = partition_column_of(table)
    if column is None or where is None:
        return None
    for conjunct in split_conjuncts(where):
        match = _column_equality(conjunct, alias)
        if match is None and alias.lower() != table.lower():
            match = _column_equality(conjunct, table)
        if match is None:
            continue
        matched_column, other_side = match
        if matched_column.lower() != column.lower():
            continue
        bound, value = _literal_value(other_side)
        if bound:
            return [value]
    return None


def _column_equality(
    conjunct: ast.Expression, alias: str
) -> Optional[Tuple[str, ast.Expression]]:
    """``alias.column = expr`` — or a bare ``column = expr``, which is
    unambiguous here because every caller has already confined the
    statement to a single table."""
    match = extract_column_equality(conjunct, alias)
    if match is not None:
        return match
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        if isinstance(conjunct.left, ast.Identifier):
            return conjunct.left.name, conjunct.right
        if isinstance(conjunct.right, ast.Identifier):
            return conjunct.right.name, conjunct.left
    return None


def _insert_partition_position(
    statement: ast.Insert, column: str
) -> Optional[int]:
    """Index of the partition column within the VALUES rows (explicit
    column list or declaration order); None when it is not supplied —
    the caller must fall back to full evaluation against the schema."""
    if statement.columns is None:
        return None  # resolved against the schema by the caller
    for position, name in enumerate(statement.columns):
        if name.lower() == column.lower():
            return position
    return None


def check_shard_ownership(db, shard_info: Dict[str, Any], statement) -> None:
    """The shard-side ownership guard.

    A server started as shard ``index`` of ``count`` rejects any
    single-partition statement whose bound partition key hashes to a
    different shard — the sender's shard map is stale (or the client
    connected to a shard directly). The rejection happens **before
    execution**, so the wire contract matches ``NOT_PRIMARY``: rerouting
    and retrying is safe even for writes.
    """
    count = int(shard_info.get("count", 1))
    if count <= 1:
        return
    index = int(shard_info.get("index", 0))
    slots = int(shard_info.get("slots", DEFAULT_SLOTS))

    def partition_column_of(table_name: str) -> Optional[str]:
        if not db.catalog.has_table(table_name):
            return None
        return getattr(db.catalog.table(table_name), "partition_by", None)

    def column_order_of(table_name: str) -> Optional[List[str]]:
        if not db.catalog.has_table(table_name):
            return None
        return db.catalog.table(table_name).schema.column_names

    keys = bound_partition_keys(
        statement, partition_column_of, column_order_of
    )
    if not keys:
        return
    for key in keys:
        try:
            owner = (stable_hash(key) % slots) % count
        except PlanningError:
            return
        if owner != index:
            raise ShardRedirectError(
                f"partition key {key!r} belongs to shard {owner}, not "
                f"shard {index} (stale shard map?)",
                shard_hint={
                    "shard": owner,
                    "count": count,
                    "version": shard_info.get("version"),
                },
            )
