"""In-process bootstrap for a sharded deployment.

Tests, benchmarks, and ``repro --router`` all need the same thing: N
shard servers plus a router in front of them, wired together and torn
down cleanly. ``start_local_shards`` starts the shards (each a plain
:class:`~repro.server.server.Server` over its own empty database, with
the shard-ownership guard armed), ``start_sharded`` adds the router.

Everything binds ephemeral loopback ports; read the real addresses
from the returned objects.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.database import Database
from ..server.server import Server
from .router import Router
from .shard_map import DEFAULT_SLOTS


def start_local_shards(
    count: int,
    auth_token: Optional[str] = None,
    slots: int = DEFAULT_SLOTS,
    guard: bool = True,
) -> List[Server]:
    """Start ``count`` shard servers on ephemeral loopback ports.

    With ``guard=True`` (the default) each server knows its shard
    identity and answers ``SHARD_REDIRECT`` to any single-partition
    statement whose key hashes to a sibling — the defense against a
    stale shard map or a client that dialed a shard directly.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    shards: List[Server] = []
    for index in range(count):
        shard_info = None
        if guard:
            shard_info = {
                "index": index,
                "count": count,
                "slots": slots,
                "version": 1,
            }
        server = Server(
            Database(), port=0, auth_token=auth_token,
            shard_info=shard_info,
        )
        server.start()
        shards.append(server)
    return shards


def start_sharded(
    count: int,
    auth_token: Optional[str] = None,
    router_auth: Optional[str] = None,
    slots: int = DEFAULT_SLOTS,
    guard: bool = True,
) -> Tuple[Router, List[Server]]:
    """Start ``count`` shards plus a router; returns ``(router,
    shards)``. Shut the router down first, then the shards."""
    shards = start_local_shards(
        count, auth_token=auth_token, slots=slots, guard=guard,
    )
    router = Router(
        [shard.address for shard in shards],
        auth_token=router_auth,
        shard_auth=auth_token,
    )
    router.shard_map.slots = slots
    if slots != DEFAULT_SLOTS:
        router.shard_map.slot_table = [
            slot % count for slot in range(slots)
        ]
    router.start()
    return router, shards


def stop_sharded(router: Router, shards: List[Server]) -> None:
    """Tear a :func:`start_sharded` deployment down (router first, so
    in-flight fan-outs drain before the shards close)."""
    router.shutdown(drain=False, timeout=5.0)
    for shard in shards:
        shard.shutdown(drain=False, timeout=5.0)
