"""Horizontal sharding: hash-partitioned shards behind a query router.

The paper's engine is built on VoltDB, whose scale-out story is hash
partitioning with single-threaded execution per partition — exactly the
shape each node already has (the single-writer scheduler). This package
adds the missing tier between one HA cluster and a horizontally
scalable service:

* :class:`ShardMap` — the explicit hash-slot table: which shard owns a
  partition key, which column partitions each table, and the
  co-partitioning rules that keep a graph view's vertexes and edges
  addressable by the same key;
* :class:`Router` — a process speaking the wire protocol on both sides:
  clients connect to it exactly as to a server, and it fans statements
  out to the shard servers behind it (single-shard fast path,
  scatter-gather with router-side merge, coordinator execution for
  multi-shard graph traversals and joins);
* :func:`start_local_shards` / :func:`start_sharded` — in-process
  bootstrap helpers used by tests, benchmarks, and ``repro --router``.
"""

from .shard_map import (  # noqa: F401
    DEFAULT_SLOTS,
    ShardMap,
    bound_partition_keys,
    check_shard_ownership,
    stable_hash,
)
from .router import Router  # noqa: F401
from .bootstrap import (  # noqa: F401
    start_local_shards,
    start_sharded,
    stop_sharded,
)
