"""Resource governor: per-query budgets and cooperative cancellation.

The ``PATHS`` construct is lazy precisely because path enumeration is
combinatorial (Section 4 of the paper): over a cyclic graph an
unbounded ``SELECT ... FROM GV.Paths`` can explore an unbounded
frontier. This module provides the guardrails that keep one hostile or
mistaken query from taking the engine down:

* :class:`QueryBudget` — declarative limits (wall-clock timeout,
  output-row cap, traversal exploration caps, undo-log depth as a
  memory proxy for writes). Budgets can be attached per ``Database``
  (``db.set_budget(...)``), per :class:`~repro.planner.options.PlannerOptions`,
  and per statement (``db.execute(sql, budget=...)``); the effective
  budget is the element-wise **tightest** of all configured levels, so
  an admin-set ceiling cannot be loosened by a statement.
* :class:`CancellationToken` — the runtime counterpart, checked
  cooperatively at operator boundaries and inside traversal frontier
  loops. An exhausted budget raises
  :class:`~repro.errors.ResourceExhaustedError` (or
  :class:`~repro.errors.QueryTimeoutError` for the deadline);
  ``token.cancel()`` aborts from outside with
  :class:`~repro.errors.QueryCancelledError`.

Statement execution is serial *per thread* (single-partition, like the
VoltDB substrate), but the network server runs one session per thread
with reads executing concurrently, so the active token is kept in a
**thread-local** stack: operators look it up once per iteration start
via :func:`current_token` and pay one branch per row when no budget is
configured. Tokens never leak across threads — two sessions running
budgeted queries concurrently each observe only their own token.

Checks are amortized: resource counters compare on every tick (cheap
integer compares, deterministic), the clock is read every
``_CHECK_MASK + 1`` ticks so a tight frontier loop does not pay a
syscall per edge.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from .errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
)

_KNOBS = (
    "timeout_ms",
    "max_rows",
    "max_paths",
    "max_vertices",
    "max_edges",
    "max_undo_depth",
)


class QueryBudget:
    """Declarative resource limits for a statement, session or database.

    Every knob defaults to ``None`` (unlimited — the paper's semantics):

    ``timeout_ms``
        wall-clock limit for the whole statement, in milliseconds;
    ``max_rows``
        cap on rows returned by the top-level statement;
    ``max_paths``
        cap on paths emitted by the statement's path scans;
    ``max_vertices``
        cap on vertex expansions across all traversals;
    ``max_edges``
        cap on edges examined across all traversals (the traversal's
        deterministic unit of work);
    ``max_undo_depth``
        cap on undo-log entries recorded by a DML statement — a memory
        proxy bounding how much a single write statement may touch.
    """

    __slots__ = _KNOBS

    def __init__(
        self,
        timeout_ms: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_paths: Optional[int] = None,
        max_vertices: Optional[int] = None,
        max_edges: Optional[int] = None,
        max_undo_depth: Optional[int] = None,
    ):
        for name, value in (
            ("timeout_ms", timeout_ms),
            ("max_rows", max_rows),
            ("max_paths", max_paths),
            ("max_vertices", max_vertices),
            ("max_edges", max_edges),
            ("max_undo_depth", max_undo_depth),
        ):
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"{name} must be a number or None, got {value!r}"
                )
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        self.timeout_ms = timeout_ms
        self.max_rows = max_rows
        self.max_paths = max_paths
        self.max_vertices = max_vertices
        self.max_edges = max_edges
        self.max_undo_depth = max_undo_depth

    # ------------------------------------------------------------------

    def is_unlimited(self) -> bool:
        return all(getattr(self, knob) is None for knob in _KNOBS)

    def tightened(self, other: Optional["QueryBudget"]) -> "QueryBudget":
        """Element-wise minimum with ``other`` (``None`` = unlimited)."""
        if other is None:
            return self
        values = {}
        for knob in _KNOBS:
            mine, theirs = getattr(self, knob), getattr(other, knob)
            if mine is None:
                values[knob] = theirs
            elif theirs is None:
                values[knob] = mine
            else:
                values[knob] = min(mine, theirs)
        return QueryBudget(**values)

    @staticmethod
    def tightest(*budgets: Optional["QueryBudget"]) -> Optional["QueryBudget"]:
        """Combine the configured budget levels; ``None`` if none set."""
        effective: Optional[QueryBudget] = None
        for budget in budgets:
            if budget is None:
                continue
            effective = budget if effective is None else effective.tightened(budget)
        return effective

    def copy(self, **overrides: Any) -> "QueryBudget":
        values = {knob: getattr(self, knob) for knob in _KNOBS}
        values.update(overrides)
        return QueryBudget(**values)

    def start(
        self, clock: Callable[[], float] = time.monotonic
    ) -> "CancellationToken":
        """Begin enforcement: the deadline countdown starts now."""
        return CancellationToken(self, clock=clock)

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryBudget):
            return NotImplemented
        return all(
            getattr(self, knob) == getattr(other, knob) for knob in _KNOBS
        )

    def __repr__(self) -> str:
        parts = [
            f"{knob}={getattr(self, knob)!r}"
            for knob in _KNOBS
            if getattr(self, knob) is not None
        ]
        return f"QueryBudget({', '.join(parts) or 'unlimited'})"


# How many ticks between wall-clock reads (power of two minus one).
_CHECK_MASK = 63


class CancellationToken:
    """Runtime enforcement state for one statement execution.

    Operators call the ``tick_*`` methods as they make progress; each
    call is an integer compare against the relevant cap plus an
    amortized deadline/cancellation check. All counters are exposed so
    callers (and tests) can observe how much work a statement did.
    """

    __slots__ = (
        "budget",
        "started_at",
        "deadline",
        "rows_emitted",
        "paths_emitted",
        "vertices_explored",
        "edges_explored",
        "peak_undo_depth",
        "cancelled",
        "cancel_reason",
        "_clock",
        "_ticks",
    )

    def __init__(
        self,
        budget: Optional[QueryBudget] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget or QueryBudget()
        self._clock = clock
        self.started_at = clock()
        timeout_ms = self.budget.timeout_ms
        self.deadline = (
            self.started_at + timeout_ms / 1000.0
            if timeout_ms is not None
            else None
        )
        self.rows_emitted = 0
        self.paths_emitted = 0
        self.vertices_explored = 0
        self.edges_explored = 0
        self.peak_undo_depth = 0
        self.cancelled = False
        self.cancel_reason: Optional[str] = None
        self._ticks = 0

    # ------------------------------------------------------------------

    def elapsed_ms(self) -> float:
        return (self._clock() - self.started_at) * 1000.0

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cooperative cancellation; the running statement
        raises :class:`QueryCancelledError` at its next check point."""
        self.cancelled = True
        self.cancel_reason = reason

    def check(self) -> None:
        """Full check: externally cancelled, then past the deadline."""
        if self.cancelled:
            raise QueryCancelledError(
                self.cancel_reason or "query cancelled"
            )
        if self.deadline is not None and self._clock() >= self.deadline:
            raise QueryTimeoutError(
                f"query exceeded timeout_ms={self.budget.timeout_ms:g} "
                f"(elapsed: {self.elapsed_ms():.1f} ms)"
            )

    def tick(self, weight: int = 1) -> None:
        """Generic progress tick with an amortized deadline check.

        External cancellation (``token.cancel()`` — e.g. a client
        disconnect observed by the server's reader thread) is honoured
        on the *very next* tick: the cancelled flag is one attribute
        test, so only the clock read is amortized.
        """
        self._ticks += weight
        if self.cancelled or (self._ticks & _CHECK_MASK) == 0:
            self.check()

    # ---- counted resources -------------------------------------------

    def tick_rows(self, count: int = 1) -> None:
        self.rows_emitted += count
        cap = self.budget.max_rows
        if cap is not None and self.rows_emitted > cap:
            raise ResourceExhaustedError(
                f"query exceeded max_rows={cap} "
                f"(rows emitted: {self.rows_emitted})"
            )
        self.tick(count)

    def tick_path(self) -> None:
        self.paths_emitted += 1
        cap = self.budget.max_paths
        if cap is not None and self.paths_emitted > cap:
            raise ResourceExhaustedError(
                f"traversal exceeded max_paths={cap} "
                f"(paths emitted: {self.paths_emitted})"
            )
        self.tick()

    def tick_vertex(self) -> None:
        self.vertices_explored += 1
        cap = self.budget.max_vertices
        if cap is not None and self.vertices_explored > cap:
            raise ResourceExhaustedError(
                f"traversal exceeded max_vertices={cap} "
                f"(vertices explored: {self.vertices_explored})"
            )
        self.tick()

    def tick_edge(self) -> None:
        self.edges_explored += 1
        cap = self.budget.max_edges
        if cap is not None and self.edges_explored > cap:
            raise ResourceExhaustedError(
                f"traversal exceeded max_edges={cap} "
                f"(edges examined: {self.edges_explored})"
            )
        self.tick()

    def note_undo_depth(self, depth: int) -> None:
        if depth > self.peak_undo_depth:
            self.peak_undo_depth = depth
        cap = self.budget.max_undo_depth
        if cap is not None and depth > cap:
            raise ResourceExhaustedError(
                f"statement exceeded max_undo_depth={cap} "
                f"(undo entries: {depth}); the transaction rolls back"
            )
        self.tick()

    def __repr__(self) -> str:
        return (
            f"CancellationToken(rows={self.rows_emitted}, "
            f"paths={self.paths_emitted}, "
            f"vertices={self.vertices_explored}, "
            f"edges={self.edges_explored}, "
            f"undo={self.peak_undo_depth}, "
            f"elapsed={self.elapsed_ms():.1f}ms)"
        )


# ---------------------------------------------------------------------------
# ambient token (thread-local: one stack per executing thread)
# ---------------------------------------------------------------------------


class _AmbientStack(threading.local):
    """Per-thread stack of active tokens.

    ``threading.local`` calls ``__init__`` once per thread, so every
    thread (each server session, the single-writer executor, the main
    thread) starts with its own empty stack and can never observe —
    or pop — a token pushed by another thread.
    """

    def __init__(self):
        self.items: List[CancellationToken] = []


_AMBIENT = _AmbientStack()


def _stack() -> List[CancellationToken]:
    """This thread's token stack (tests introspect it)."""
    return _AMBIENT.items


def current_token() -> Optional[CancellationToken]:
    """The token governing this thread's innermost statement (or None)."""
    items = _AMBIENT.items
    return items[-1] if items else None


def deactivate(token: Optional[CancellationToken]) -> None:
    """Remove every occurrence of ``token`` from this thread's stack.

    Backstop for lazy consumers: a generator that pushed ``token`` for
    the duration of a pull uses this in a ``finally`` so that closing
    the generator early (or a pull that raises) can never strand the
    token and silently govern unrelated statements that run later.
    """
    if token is None:
        return
    items = _AMBIENT.items
    for index in range(len(items) - 1, -1, -1):
        if items[index] is token:
            del items[index]


class activate:
    """Context manager installing ``token`` as the ambient token.

    Removal is by identity (not strict stack discipline) so interleaved
    lazy consumers — two suspended ``Database.stream`` generators, say —
    cannot pop each other's token.
    """

    __slots__ = ("token",)

    def __init__(self, token: CancellationToken):
        self.token = token

    def __enter__(self) -> CancellationToken:
        _AMBIENT.items.append(self.token)
        return self.token

    def __exit__(self, exc_type, exc, tb) -> bool:
        items = _AMBIENT.items
        for index in range(len(items) - 1, -1, -1):
            if items[index] is self.token:
                del items[index]
                break
        return False
