"""CSV import/export utilities.

Real deployments of the paper's system load graphs from flat files, so
the library ships simple, typed CSV helpers:

* :func:`load_csv` — bulk-insert a CSV file into an existing table
  (values are coerced through the table schema, so graph-view
  maintenance and constraints all apply);
* :func:`dump_csv` — write a table or query result out;
* :func:`import_graph_csv` — one call from a vertex CSV + an edge CSV to
  a ready graph view.
"""

from __future__ import annotations

import csv
from typing import Any, List, Optional, Sequence

from .core.database import Database
from .core.result import ResultSet
from .errors import ExecutionError
from .types import SqlType


def _parse_value(text: str, sql_type: SqlType) -> Any:
    """CSV cell -> python value for the declared column type.

    Empty cells become NULL.
    """
    if text == "":
        return None
    if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
        return int(text)
    if sql_type in (SqlType.FLOAT, SqlType.DECIMAL):
        return float(text)
    if sql_type is SqlType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise ExecutionError(f"cannot parse boolean CSV value {text!r}")
    return text  # VARCHAR / TIMESTAMP strings coerce in the schema layer


def load_csv(
    database: Database,
    table_name: str,
    path: str,
    delimiter: str = ",",
    header: bool = True,
) -> int:
    """Load a CSV file into ``table_name``; returns the row count.

    With ``header=True`` the first line names the columns (any order,
    missing columns become NULL); otherwise columns are positional.
    """
    table = database.table(table_name)
    schema = table.schema
    count = 0
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        positions: Optional[List[int]] = None
        for line_number, record in enumerate(reader):
            if not record:
                continue
            if line_number == 0 and header:
                positions = [schema.position_of(name.strip()) for name in record]
                continue
            if positions is None:
                if len(record) != len(schema):
                    raise ExecutionError(
                        f"{path}:{line_number + 1}: expected "
                        f"{len(schema)} values, got {len(record)}"
                    )
                row = [
                    _parse_value(text, column.sql_type)
                    for text, column in zip(record, schema.columns)
                ]
            else:
                if len(record) != len(positions):
                    raise ExecutionError(
                        f"{path}:{line_number + 1}: expected "
                        f"{len(positions)} values, got {len(record)}"
                    )
                row = [None] * len(schema)
                for position, text in zip(positions, record):
                    row[position] = _parse_value(
                        text, schema.columns[position].sql_type
                    )
            table.insert(row)
            count += 1
    return count


def dump_csv(
    database: Database,
    target: str,
    path: str,
    delimiter: str = ",",
) -> int:
    """Write a table (by name) or the result of a SELECT to a CSV file.

    ``target`` is treated as SQL when it starts with ``SELECT``
    (case-insensitive); otherwise as a table/view name.
    """
    if target.strip().upper().startswith("SELECT"):
        result = database.execute(target)
        columns = result.columns
        rows: Sequence[Sequence[Any]] = result.rows
    else:
        table = database._resolve_readable_table(target)
        columns = table.schema.column_names
        rows = list(table.rows())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if v is None else v for v in row])
    return len(rows)


def import_graph_csv(
    database: Database,
    graph_name: str,
    vertex_csv: str,
    vertex_schema_sql: str,
    edge_csv: str,
    edge_schema_sql: str,
    vertex_id_column: str,
    edge_id_column: str,
    edge_from_column: str,
    edge_to_column: str,
    directed: bool = True,
) -> ResultSet:
    """Create tables from DDL snippets, load both CSVs, build the view.

    ``vertex_schema_sql`` / ``edge_schema_sql`` are the parenthesized
    column lists, e.g. ``"id INTEGER PRIMARY KEY, name VARCHAR"``.
    All non-identifier columns become graph attributes.
    """
    vertex_table = f"{graph_name}_vertices"
    edge_table = f"{graph_name}_edges"
    database.execute(f"CREATE TABLE {vertex_table} ({vertex_schema_sql})")
    database.execute(f"CREATE TABLE {edge_table} ({edge_schema_sql})")
    load_csv(database, vertex_table, vertex_csv)
    load_csv(database, edge_table, edge_csv)

    vertex_columns = database.table(vertex_table).schema.column_names
    edge_columns = database.table(edge_table).schema.column_names
    vertex_mappings = [f"ID = {vertex_id_column}"] + [
        f"{c} = {c}"
        for c in vertex_columns
        if c.lower() != vertex_id_column.lower()
    ]
    reserved = {
        edge_id_column.lower(),
        edge_from_column.lower(),
        edge_to_column.lower(),
    }
    edge_mappings = [
        f"ID = {edge_id_column}",
        f"FROM = {edge_from_column}",
        f"TO = {edge_to_column}",
    ] + [f"{c} = {c}" for c in edge_columns if c.lower() not in reserved]
    direction = "DIRECTED" if directed else "UNDIRECTED"
    return database.execute(
        f"CREATE {direction} GRAPH VIEW {graph_name} "
        f"VERTEXES({', '.join(vertex_mappings)}) FROM {vertex_table} "
        f"EDGES({', '.join(edge_mappings)}) FROM {edge_table}"
    )
