"""Network front end: wire protocol, sessions, single-writer scheduling.

See ``docs/server.md`` for the frame layout, the message flow, the
stable error codes, and the scheduling model.
"""

from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ROW_BATCH,
    encode_frame,
    error_code_for,
    read_frame,
    send_frame,
)
from .scheduler import ReadWriteLock, SingleWriterScheduler, WriteTicket
from .server import Server, Session

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ROW_BATCH",
    "ReadWriteLock",
    "Server",
    "Session",
    "SingleWriterScheduler",
    "WriteTicket",
    "encode_frame",
    "error_code_for",
    "read_frame",
    "send_frame",
]
