"""Single-writer scheduling: serialized writes, concurrent reads.

VoltDB executes every transaction of a partition on one thread — that
serial order *is* the isolation story, and it is what makes the command
log a faithful replay script (PR 1) and the replication stream a total
order (PR 2). The network server keeps that property while still
letting read-only statements overlap:

* **Writes** are submitted as tickets to a **bounded queue** consumed
  by a single executor thread. Queue order is commit order is
  command-log order is replication order. A full queue raises
  :class:`~repro.errors.OverloadedError` immediately (backpressure —
  the statement was never admitted, the client may retry), and a
  submitting session waits for its ticket under its own
  :class:`~repro.budget.QueryBudget` deadline, so time spent queued
  counts against the statement's timeout.
* **Reads** run on the calling session thread under the shared side of
  a readers-writer lock; the executor takes the exclusive side. Reads
  therefore see either all of a write or none of it, and writes never
  mutate a table an in-flight scan is iterating.
* **Drain** — shutdown stops admitting, lets queued tickets finish,
  and waits for in-flight readers, so "graceful" means exactly: every
  admitted statement completes, no new one starts.

The writer thread is writer-preferring: a waiting write blocks *new*
readers, so a stream of cheap point reads cannot starve the write
queue.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional

from ..budget import CancellationToken
from ..errors import (
    OverloadedError,
    QueryTimeoutError,
    ShuttingDownError,
)
from ..observability import context as observability_context
from ..observability import tracing as observability_tracing
from ..observability.metrics import recording_registry


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Multiple readers hold the lock together; a writer holds it alone.
    Once a writer is waiting, new readers queue behind it — the
    single-writer queue must not starve under read load.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side ------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side -----------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # -- introspection --------------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no reader or writer holds the lock."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._writer_active and self._readers == 0,
                timeout=timeout,
            )


class WriteTicket:
    """One queued write: the work, its owner, and the rendezvous."""

    __slots__ = (
        "fn",
        "token",
        "session",
        "done",
        "result",
        "error",
        "started",
        "trace",
        "node",
        "submitted_at",
    )

    def __init__(
        self,
        fn: Callable[[], Any],
        token: Optional[CancellationToken],
        session: str,
    ):
        self.fn = fn
        self.token = token
        self.session = session
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.started = False
        #: The submitting thread's ambient trace context + node label,
        #: carried across to the writer thread exactly like ``session``
        #: — so the executed write's spans join the statement's trace.
        self.trace = observability_tracing.current_trace()
        self.node = observability_tracing.current_node_label()
        self.submitted_at = time.perf_counter()


_STOP = object()


class SingleWriterScheduler:
    """The write queue, its executor thread, and the read gate."""

    def __init__(self, max_queue: int = 64):
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self.max_queue = max_queue
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._rwlock = ReadWriteLock()
        self._draining = False
        self._started = False
        #: Writes executed by the writer thread (monotone; tests poll it).
        self.writes_executed = 0
        self._thread = threading.Thread(
            target=self._writer_loop, name="repro-writer", daemon=True
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, finish what was admitted, stop the writer.

        Returns True when everything in flight completed within
        ``timeout`` (queued writes executed, active readers released).
        """
        self._draining = True
        finished = True
        if self._started:
            self._queue.put(_STOP)  # FIFO: runs after every queued ticket
            self._thread.join(timeout=timeout)
            finished = not self._thread.is_alive()
        finished = self._rwlock.wait_idle(timeout=timeout) and finished
        return finished

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # read path (session threads)
    # ------------------------------------------------------------------

    def run_read(self, fn: Callable[[], Any]) -> Any:
        """Run a read-only statement now, sharing the lock with other
        readers; excluded from any write the executor is applying."""
        if self._draining:
            raise ShuttingDownError("server is draining; no new statements")
        self._rwlock.acquire_read()
        self._reads_gauge(1)
        try:
            return fn()
        finally:
            self._reads_gauge(-1)
            self._rwlock.release_read()

    # ------------------------------------------------------------------
    # write path (session threads submit; the executor runs)
    # ------------------------------------------------------------------

    def submit_write(
        self,
        fn: Callable[[], Any],
        token: Optional[CancellationToken] = None,
        session: str = "",
    ) -> WriteTicket:
        """Enqueue a write; raises OverloadedError when the queue is full."""
        if self._draining:
            raise ShuttingDownError("server is draining; no new statements")
        if not self._started:
            self.start()
        ticket = WriteTicket(fn, token, session)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self._count_overload()
            raise OverloadedError(
                f"write queue is full ({self.max_queue} statements queued); "
                "the server is overloaded — retry after a backoff"
            )
        self._depth_gauge()
        return ticket

    def execute_write(
        self,
        fn: Callable[[], Any],
        token: Optional[CancellationToken] = None,
        session: str = "",
    ) -> Any:
        """Submit and wait. Queue time is charged to the statement's
        deadline: if the budget expires while queued, the ticket is
        cancelled and the caller gets :class:`QueryTimeoutError` —
        once a ticket *starts*, the wait is unbounded (the executor
        always completes a started statement, and the token's own
        deadline aborts it from inside if it runs long)."""
        ticket = self.submit_write(fn, token, session)
        deadline = token.deadline if token is not None else None
        if deadline is None:
            ticket.done.wait()
        else:
            remaining = deadline - token._clock()
            if not ticket.done.wait(timeout=max(0.0, remaining)):
                if not ticket.started:
                    # never ran: cancel so the executor skips it outright
                    token.cancel("queued past its deadline")
                    raise QueryTimeoutError(
                        "statement spent its whole "
                        f"timeout_ms={token.budget.timeout_ms:g} budget "
                        "waiting in the write queue"
                    )
                ticket.done.wait()  # started: let the token's deadline abort it
        if ticket.error is not None:
            raise ticket.error
        return ticket.result

    # ------------------------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is _STOP:
                return
            self._depth_gauge()
            token = ticket.token
            if token is not None and token.cancelled:
                # the client vanished (or timed out) while this waited
                ticket.error = _cancelled_error(token)
                ticket.done.set()
                continue
            ticket.started = True
            if ticket.trace is not None:
                # queue wait: submit -> start, attributed to the trace
                observability_tracing.record_span(
                    "queue.wait",
                    (time.perf_counter() - ticket.submitted_at) * 1000.0,
                    context=ticket.trace,
                    node=ticket.node,
                    session=ticket.session,
                )
            self._rwlock.acquire_write()
            try:
                with observability_context.session_label(ticket.session), \
                        observability_tracing.node_label(ticket.node), \
                        observability_tracing.activate(ticket.trace):
                    ticket.result = ticket.fn()
            except BaseException as error:  # delivered to the submitter
                ticket.error = error
            finally:
                self._rwlock.release_write()
                self.writes_executed += 1
                ticket.done.set()

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------

    def _depth_gauge(self) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.gauge(
                "repro_server_write_queue_depth",
                help="Writes waiting for the single-writer executor.",
            ).set(self._queue.qsize())

    def _reads_gauge(self, delta: int) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.gauge(
                "repro_server_active_reads",
                help="Read statements currently executing on session threads.",
            ).inc(delta)

    def _count_overload(self) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_server_overload_total",
                help="Write submissions rejected because the queue was full.",
            ).inc()


def _cancelled_error(token: CancellationToken):
    from ..errors import QueryCancelledError

    return QueryCancelledError(token.cancel_reason or "query cancelled")
