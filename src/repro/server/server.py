"""The network server: sessions, dispatch, and disconnect cancellation.

Threading model (two threads per connection, plus the single writer):

* the **worker** thread owns the session — it reads nothing from the
  socket; it pops requests from the session's inbox, executes them
  (reads inline under the scheduler's shared lock, writes via the
  single-writer queue) and sends every response frame;
* the **reader** thread owns the socket's receive side — it parses
  frames into the inbox, and because it is *always* parked in
  ``recv()`` (even while a statement runs), a client disconnect is
  noticed immediately and translated into ``token.cancel()`` on
  whatever that session is executing. The cancelled traversal unwinds
  at its next budget tick; nothing server-side waits on a dead peer.

Every statement runs under a :class:`~repro.budget.CancellationToken`
— when no budget level is configured the token is unlimited, but it
still gives the reader thread a cancellation point, so "kill the
client" always stops the query.

Sessions die cleanly: worker exit removes the session from the
registry, closes the socket (unblocking the reader), rolls back any
transaction the session left open, and drops its prepared statements.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any, Dict, Optional, Tuple

from ..budget import CancellationToken, QueryBudget
from ..core.database import Database, sql_is_write
from ..errors import (
    DatabaseError,
    NotPrimaryError,
    ProtocolError,
    ShuttingDownError,
)
from ..observability import context as observability_context
from ..observability import events as observability_events
from ..observability import tracing as observability_tracing
from ..observability.metrics import get_registry, recording_registry
from . import protocol
from .protocol import ROW_BATCH, error_code_for
from .scheduler import SingleWriterScheduler

_POISON = object()  # inbox sentinel: reader is gone, worker must exit


class Session:
    """One authenticated connection: its socket, budget, and statements."""

    def __init__(self, name: str, sock: socket.socket, address):
        self.name = name
        self.sock = sock
        self.address = address
        #: Frames parsed by the reader, consumed by the worker.
        self.inbox: "queue.Queue" = queue.Queue()
        #: Session-level budget (SET_BUDGET), tightened into every statement.
        self.budget: Optional[QueryBudget] = None
        #: Token of the statement this session is executing right now —
        #: the reader cancels it when the client disconnects.
        self.active_token: Optional[CancellationToken] = None
        self.disconnected = False
        #: handle -> PreparedQuery, handles minted by PREPARE.
        self.prepared: Dict[str, Any] = {}
        self._next_handle = 0
        self.statements = 0

    def mint_handle(self) -> str:
        self._next_handle += 1
        return f"s{self._next_handle}"

    def __repr__(self) -> str:
        return f"Session({self.name!r}, peer={self.address!r})"


class Server:
    """A TCP front end for one :class:`~repro.core.database.Database`.

    ::

        server = Server(db, host="127.0.0.1", port=7070)
        server.start()
        ...
        server.shutdown(drain=True)

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`address` (tests do exactly this).
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
        max_queue: int = 64,
        backlog: int = 32,
        supervisor=None,
        cluster=None,
        shard_info=None,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.scheduler = SingleWriterScheduler(max_queue=max_queue)
        self.backlog = backlog
        #: Optional :class:`~repro.resilience.supervisor.Supervisor`;
        #: when set, HEALTH responses include its full status and its
        #: self-heal runs through this server's write scheduler.
        self.supervisor = supervisor
        if supervisor is not None:
            supervisor.scheduler = self.scheduler
        #: Optional cluster hook (a :class:`~repro.replication.node.
        #: ClusterNode`). When set: writes are gated on being the
        #: current primary (``NOT_PRIMARY`` + leader hint otherwise),
        #: acknowledged only after the cluster's semi-sync barrier,
        #: and ``CLUSTER_STATE`` / ``HEALTH`` expose replication state.
        self.cluster = cluster
        #: Optional shard identity (``{"index", "count", "slots",
        #: "version"}``). When set, this server is one shard of a
        #: partitioned deployment: single-partition statements whose
        #: bound key hashes to a *different* shard are rejected with
        #: ``SHARD_REDIRECT`` before execution (see
        #: :func:`~repro.sharding.shard_map.check_shard_ownership`).
        self.shard_info = shard_info
        self.sessions: Dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._session_threads: list = []
        self._draining = False
        self._closed = False
        self._next_session = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — authoritative once started."""
        if self._listener is None:
            return (self.host, self.port)
        return self._listener.getsockname()[:2]

    def start(self) -> "Server":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.backlog)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self.scheduler.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (for ``repro --serve``)."""
        if self._accept_thread is None:
            self.start()
        self._accept_thread.join()

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> bool:
        """Stop the server.

        With ``drain=True`` (graceful): stop accepting, let every
        admitted statement finish (new ones get ``SHUTTING_DOWN``),
        then close the sessions. With ``drain=False``: cancel what is
        running and tear down. Returns True when everything stopped
        within ``timeout``.
        """
        self._draining = True
        if self._listener is not None:
            # closing the fd does not reliably unblock a thread parked
            # in accept(); shutdown() does on Linux, and the self-connect
            # poke covers platforms where it raises ENOTCONN instead
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                self._poke_listener()
            try:
                self._listener.close()
            except OSError:
                pass
        if not drain:
            with self._sessions_lock:
                live = list(self.sessions.values())
            for session in live:
                token = session.active_token
                if token is not None:
                    token.cancel("server shutting down")
        finished = self.scheduler.drain(timeout=timeout)
        with self._sessions_lock:
            live = list(self.sessions.values())
        for session in live:
            self._close_socket(session)
        for thread in list(self._session_threads):
            thread.join(timeout=timeout)
            finished = finished and not thread.is_alive()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
            finished = finished and not self._accept_thread.is_alive()
        self._closed = True
        return finished

    def _poke_listener(self) -> None:
        try:
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass

    # ------------------------------------------------------------------
    # accept / handshake
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, address = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            if self._draining:
                sock.close()
                continue
            # small request/response frames must not sit in Nagle's
            # buffer waiting for the peer's delayed ACK
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._handshake,
                args=(sock, address),
                name="repro-handshake",
                daemon=True,
            ).start()

    def _handshake(self, sock: socket.socket, address) -> None:
        """Run HELLO/AUTH on a fresh connection, then promote it to a
        session with its reader and worker threads."""
        try:
            hello = protocol.read_frame(sock)
        except ProtocolError as error:
            self._send_safely(sock, threading.Lock(), {
                "type": "ERROR", "code": "PROTOCOL_ERROR", "message": str(error),
            })
            sock.close()
            return
        if hello is None:
            sock.close()
            return
        lock = threading.Lock()
        if hello.get("type") != "HELLO":
            self._send_safely(sock, lock, {
                "type": "ERROR",
                "code": "PROTOCOL_ERROR",
                "message": "first frame must be HELLO",
            })
            sock.close()
            return
        if self.auth_token is not None and hello.get("auth") != self.auth_token:
            self._count_error("AUTH_FAILED")
            self._send_safely(sock, lock, {
                "type": "ERROR",
                "code": "AUTH_FAILED",
                "message": "authentication token rejected",
            })
            sock.close()
            return
        session = self._register_session(hello, sock, address)
        hello_ok = {
            "type": "HELLO_OK",
            "protocol": protocol.PROTOCOL_VERSION,
            "session": session.name,
            "role": self.db.role,
            "health": self.db.health.state,
        }
        if self.cluster is not None:
            hello_ok["node"] = self.cluster.name
            hello_ok["leader"] = self.cluster.leader_hint()
        self._send_safely(sock, lock, hello_ok)
        reader = threading.Thread(
            target=self._reader_loop,
            args=(session,),
            name=f"repro-read-{session.name}",
            daemon=True,
        )
        worker = threading.Thread(
            target=self._worker_loop,
            args=(session, lock),
            name=f"repro-work-{session.name}",
            daemon=True,
        )
        self._session_threads.extend((reader, worker))
        reader.start()
        worker.start()

    def _register_session(self, hello, sock, address) -> Session:
        with self._sessions_lock:
            self._next_session += 1
            base = str(hello.get("session") or f"conn-{self._next_session}")
            name = base
            suffix = 1
            while name in self.sessions:
                suffix += 1
                name = f"{base}#{suffix}"
            session = Session(name, sock, address)
            self.sessions[name] = session
            self._set_gauge("repro_server_sessions", len(self.sessions))
        self._inc_counter("repro_server_connections_total")
        return session

    # ------------------------------------------------------------------
    # reader: socket -> inbox, disconnect -> cancel
    # ------------------------------------------------------------------

    def _reader_loop(self, session: Session) -> None:
        try:
            while True:
                message = protocol.read_frame(session.sock)
                if message is None:
                    break  # clean EOF
                session.inbox.put(message)
                if message.get("type") == "CLOSE":
                    return  # worker closes the socket after GOODBYE
        except (ProtocolError, OSError):
            pass
        # The peer is gone (or sent garbage). Cancel whatever this
        # session is executing and tell the worker to wind down.
        session.disconnected = True
        token = session.active_token
        if token is not None:
            token.cancel("client disconnected")
        session.inbox.put(_POISON)

    # ------------------------------------------------------------------
    # worker: inbox -> execute -> response frames
    # ------------------------------------------------------------------

    def _worker_loop(self, session: Session, lock: threading.Lock) -> None:
        # every statement this thread runs inline (the read path) is
        # attributed to this session in the slow-query log, and every
        # span it records carries this node's name
        observability_context.set_session_label(session.name)
        observability_tracing.set_node_label(self._node_name() or "")
        try:
            while True:
                request = session.inbox.get()
                if request is _POISON or session.disconnected:
                    return
                if not self._dispatch(session, lock, request):
                    return
        finally:
            self._teardown(session)

    def _dispatch(self, session, lock, request) -> bool:
        """Handle one request; False ends the session."""
        kind = request.get("type")
        self._inc_counter("repro_server_requests_total", type=str(kind))
        if kind in ("QUERY", "EXECUTE"):
            return self._handle_statement(session, lock, request)
        if kind == "PREPARE":
            return self._handle_prepare(session, lock, request)
        if kind == "SET_BUDGET":
            return self._handle_set_budget(session, lock, request)
        if kind == "METRICS":
            text = get_registry().render_prometheus(request.get("filter"))
            return self._send_safely(session.sock, lock, {
                "type": "METRICS", "text": text,
            })
        if kind == "HEALTH":
            return self._send_safely(
                session.sock, lock, self._health_message(request.get("id"))
            )
        if kind == "CLUSTER_STATE":
            return self._send_safely(
                session.sock, lock, self._cluster_state_message(request.get("id"))
            )
        if kind == "TRACES":
            return self._send_safely(session.sock, lock, {
                "type": "TRACES",
                "id": request.get("id"),
                "node": self._node_name(),
                "spans": observability_tracing.get_collector().export(
                    trace_id=_wire_str(request.get("trace_id")),
                    limit=_wire_int(request.get("limit")),
                ),
            })
        if kind == "EVENTS":
            return self._send_safely(session.sock, lock, {
                "type": "EVENTS",
                "id": request.get("id"),
                "node": self._node_name(),
                "events": observability_events.get_journal().export(
                    kind=_wire_str(request.get("kind")),
                    limit=_wire_int(request.get("limit")),
                ),
            })
        if kind == "SLOWLOG":
            slow = self.db.slow_queries
            return self._send_safely(session.sock, lock, {
                "type": "SLOWLOG",
                "id": request.get("id"),
                "node": self._node_name(),
                "threshold_ms": slow.threshold_ms,
                "entries": [entry.as_dict() for entry in slow.entries()],
            })
        if kind == "SHARD_STATE":
            # a plain server is not a router: it answers with its own
            # shard identity (or none), so probes need no special case
            return self._send_safely(session.sock, lock, {
                "type": "SHARD_STATE",
                "id": request.get("id"),
                "sharded": False,
                "shard": self.shard_info,
            })
        if kind == "PING":
            return self._send_safely(session.sock, lock, {"type": "PONG"})
        if kind == "CLOSE":
            self._send_safely(session.sock, lock, {"type": "GOODBYE"})
            return False
        self._count_error("UNSUPPORTED")
        return self._send_safely(session.sock, lock, {
            "type": "ERROR",
            "id": request.get("id"),
            "code": "UNSUPPORTED",
            "message": f"unsupported request type: {kind!r}",
        })

    # -- statements -----------------------------------------------------

    def _handle_statement(self, session, lock, request) -> bool:
        request_id = request.get("id")
        try:
            result = self._run_statement(session, request)
        except BaseException as error:
            return self._send_error(session, lock, request_id, error)
        return self._send_result(session, lock, request_id, result)

    def _run_statement(self, session: Session, request):
        cluster = self.cluster
        statement_budget = protocol.budget_from_wire(request.get("budget"))
        effective = QueryBudget.tightest(
            self.db.planner_options.budget,
            self.db.budget,
            session.budget,
            statement_budget,
        )
        # Always a token — an unlimited one still carries the reader
        # thread's disconnect cancellation into the operator loops.
        token = effective.start() if effective is not None else CancellationToken()
        if request.get("type") == "EXECUTE":
            runner, is_write = self._prepared_runner(session, request, token)
        else:
            sql = request.get("sql")
            if not isinstance(sql, str):
                raise ProtocolError("QUERY requires a string 'sql' field")
            is_write = sql_is_write(sql)
            if self.shard_info is not None:
                self._check_shard_ownership(sql)
            # the (possibly command-log-patched) bound method, so server
            # writes are logged and shipped exactly like embedded ones
            runner = lambda: self.db.execute(sql, token=token)  # noqa: E731
        if session.disconnected:
            raise ShuttingDownError("client disconnected")
        # Adopt the client's trace context: the statement's server-side
        # spans (queue wait, execution, fsync, replication) all parent
        # under this session span, which parents under the client span.
        server_trace = None
        if observability_tracing.recording_collector() is not None:
            stamped = observability_tracing.TraceContext.from_wire(
                request.get("trace")
            )
            if stamped is not None and stamped.sampled:
                server_trace = stamped.child()
        session.active_token = token
        session.statements += 1
        try:
            with observability_tracing.activate(server_trace), \
                    observability_tracing.span(
                        "server.statement",
                        context=server_trace,
                        own=True,
                        session=session.name,
                        write=is_write,
                    ):
                if is_write and cluster is not None and not cluster.is_primary():
                    observability_events.emit(
                        "not_primary",
                        node=cluster.name,
                        session=session.name,
                        leader=cluster.leader_hint(),
                    )
                    raise NotPrimaryError(
                        f"{cluster.name} is not the primary; "
                        "writes go to the current leader",
                        leader_hint=cluster.leader_hint(),
                    )
                if is_write:
                    result = self.scheduler.execute_write(
                        runner, token=token, session=session.name
                    )
                    if cluster is not None:
                        # semi-sync: the client's acknowledgement is held
                        # until the cluster's ack quorum has the write
                        cluster.after_write()
                    return result
                return self.scheduler.run_read(runner)
        finally:
            session.active_token = None

    def _check_shard_ownership(self, sql: str) -> None:
        """Reject a statement whose bound partition key belongs to a
        sibling shard — before execution, so retrying elsewhere is safe
        even for writes (same contract as NOT_PRIMARY)."""
        # local import: repro.sharding imports this module (the router
        # subclasses Server)
        from ..sharding.shard_map import check_shard_ownership
        from ..sql.parser import parse_statement
        try:
            statement = parse_statement(sql)
        except DatabaseError:
            return  # execution will report the parse error itself
        check_shard_ownership(self.db, self.shard_info, statement)

    def _prepared_runner(self, session: Session, request, token):
        handle = request.get("statement")
        prepared = session.prepared.get(handle)
        if prepared is None:
            raise ProtocolError(f"unknown prepared statement: {handle!r}")
        params = request.get("params") or []
        if not isinstance(params, list):
            raise ProtocolError("EXECUTE 'params' must be an array")
        # only SELECTs can be prepared, so EXECUTE is always a read
        return (lambda: prepared.execute(*params, token=token)), False

    def _send_result(self, session, lock, request_id, result) -> bool:
        columns = list(result.columns or [])
        rows = result.rows or []
        if not self._send_safely(session.sock, lock, {
            "type": "RESULT_HEAD", "id": request_id, "columns": columns,
        }):
            return False
        for start in range(0, len(rows), ROW_BATCH):
            batch = rows[start:start + ROW_BATCH]
            if not self._send_safely(session.sock, lock, {
                "type": "ROWS",
                "id": request_id,
                "rows": [protocol.jsonable_row(row) for row in batch],
            }):
                return False
        return self._send_safely(session.sock, lock, {
            "type": "RESULT_END",
            "id": request_id,
            "rows": len(rows),
            "rowcount": result.rowcount,
        })

    def _send_error(self, session, lock, request_id, error) -> bool:
        code = error_code_for(error)
        self._count_error(code)
        if not isinstance(error, (DatabaseError, ProtocolError)):
            # an engine bug, not a user error — keep serving, but say so
            code = "INTERNAL_ERROR"
        frame = {
            "type": "ERROR",
            "id": request_id,
            "code": code,
            "message": str(error),
        }
        hint = getattr(error, "leader_hint", None)
        if hint is not None:
            frame["leader_hint"] = hint
        shard_hint = getattr(error, "shard_hint", None)
        if shard_hint is not None:
            frame["shard_hint"] = shard_hint
        return self._send_safely(session.sock, lock, frame)

    def _health_message(self, request_id=None) -> Dict[str, Any]:
        """The HEALTH response: the engine's health state plus, when a
        supervisor is attached, its liveness/readiness and counters."""
        health = self.db.health
        message: Dict[str, Any] = {
            "type": "HEALTH",
            "id": request_id,
            "state": health.state,
            "reason": health.reason,
            "last_error": health.last_error,
            "role": self.db.role,
            "liveness": health.state != "failed",
            "readiness": {
                "reads": health.allows_reads(),
                "writes": health.allows_writes(),
            },
        }
        if self.supervisor is not None:
            message["supervisor"] = self.supervisor.status()
        if self.cluster is not None:
            message["replication"] = self.cluster.replication_status()
        return message

    def _cluster_state_message(self, request_id=None) -> Dict[str, Any]:
        """The CLUSTER_STATE response. Standalone servers answer with
        their role and no topology, so probes never need a special
        case; cluster nodes answer with the full node state."""
        if self.cluster is not None:
            message = self.cluster.state_message()
        else:
            message = {
                "node": None,
                "role": self.db.role,
                "epoch": None,
                "sequence": None,
                "lag": None,
                "health": self.db.health.state,
                "leader": None,
                "peers": [],
            }
        message["type"] = "CLUSTER_STATE"
        message["id"] = request_id
        return message

    # -- small requests -------------------------------------------------

    def _handle_prepare(self, session, lock, request) -> bool:
        request_id = request.get("id")
        sql = request.get("sql")
        try:
            if not isinstance(sql, str):
                raise ProtocolError("PREPARE requires a string 'sql' field")
            # planning reads the catalog, so it takes the read lock too
            prepared = self.scheduler.run_read(lambda: self.db.prepare(sql))
        except BaseException as error:
            return self._send_error(session, lock, request_id, error)
        handle = session.mint_handle()
        session.prepared[handle] = prepared
        return self._send_safely(session.sock, lock, {
            "type": "PREPARED",
            "id": request_id,
            "statement": handle,
            "params": prepared.parameter_count,
            "columns": prepared.column_names,
        })

    def _handle_set_budget(self, session, lock, request) -> bool:
        request_id = request.get("id")
        try:
            session.budget = protocol.budget_from_wire(request.get("budget"))
        except ProtocolError as error:
            return self._send_error(session, lock, request_id, error)
        return self._send_safely(session.sock, lock, {
            "type": "OK",
            "id": request_id,
            "budget": protocol.budget_to_wire(session.budget),
        })

    # ------------------------------------------------------------------
    # teardown and plumbing
    # ------------------------------------------------------------------

    def _teardown(self, session: Session) -> None:
        with self._sessions_lock:
            self.sessions.pop(session.name, None)
            self._set_gauge("repro_server_sessions", len(self.sessions))
        session.prepared.clear()
        self._close_socket(session)
        # a disconnected client must not pin a transaction open forever;
        # rollback routes through the writer so it cannot interleave
        # with a write in flight
        if self.db.transactions.in_transaction and not self._draining:
            try:
                self.scheduler.execute_write(
                    self.db.rollback, session=session.name
                )
            except DatabaseError:
                pass

    @staticmethod
    def _close_socket(session: Session) -> None:
        try:
            session.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            session.sock.close()
        except OSError:
            pass

    def _send_safely(self, sock, lock, message) -> bool:
        """Send one frame; False (not an exception) when the peer died —
        the caller winds the session down."""
        try:
            with lock:
                protocol.send_frame(sock, message)
            return True
        except OSError:
            return False

    # -- metrics --------------------------------------------------------

    def _inc_counter(self, name: str, **labels) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.counter(name, **labels).inc()

    def _set_gauge(self, name: str, value: float) -> None:
        registry = recording_registry()
        if registry is not None:
            registry.gauge(name, help="Live server sessions.").set(value)

    def _count_error(self, code: str) -> None:
        self._inc_counter("repro_server_errors_total", code=code)

    def _node_name(self) -> Optional[str]:
        return self.cluster.name if self.cluster is not None else None


def _wire_str(value: Any) -> Optional[str]:
    """An optional string filter from a request field (else None)."""
    return value if isinstance(value, str) and value else None


def _wire_int(value: Any) -> Optional[int]:
    """An optional int limit from a request field (else None)."""
    return value if isinstance(value, int) and not isinstance(value, bool) else None
