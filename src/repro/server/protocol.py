"""The wire protocol: length-prefixed JSON frames with stable error codes.

One frame is::

    +-------------------------------+------------------------------+
    | 4-byte big-endian payload len | UTF-8 JSON object (payload)  |
    +-------------------------------+------------------------------+

Every payload is a JSON object with a ``type`` field. The connection
life cycle is::

    client                               server
    ------                               ------
    HELLO {protocol, auth?, session?} ->
                                      <- HELLO_OK {session, role, ...}
                                      <- ERROR {code: AUTH_FAILED} + close
    QUERY {id, sql, budget?, trace?}  ->
                                      <- RESULT_HEAD {id, columns}
                                      <- ROWS {id, rows}          (0..n)
                                      <- RESULT_END {id, rowcount, ...}
                                      <- ERROR {id, code, message}
    PREPARE {id, sql, trace?}         ->
                                      <- PREPARED {id, statement, params}
    EXECUTE {id, statement, params,
             trace?}                  ->
                                      <- result-set frames as above
    SET_BUDGET {budget|null}          ->
                                      <- OK
    METRICS {filter?}                 ->
                                      <- METRICS {text}
    HEALTH                            ->
                                      <- HEALTH {state, liveness, ...}
    CLUSTER_STATE                     ->
                                      <- CLUSTER_STATE {node, role, epoch,
                                                        sequence, lag,
                                                        leader?, peers?}
    SHARD_STATE                       ->
                                      <- SHARD_STATE {sharded, ...}
    TRACES {trace_id?, limit?}        ->
                                      <- TRACES {node, spans}
    EVENTS {kind?, limit?}            ->
                                      <- EVENTS {node, events}
    SLOWLOG                           ->
                                      <- SLOWLOG {node, threshold_ms,
                                                  entries}
    PING                              ->
                                      <- PONG
    CLOSE                             ->
                                      <- GOODBYE + close

``trace`` is an optional W3C-traceparent-style stamp
(``00-<trace_id>-<span_id>-<flags>``, see
:mod:`repro.observability.tracing`); the server adopts it so the
statement's server-side spans join the client's trace. ``TRACES``,
``EVENTS`` and ``SLOWLOG`` read this node's span collector, event
journal and slow-query log — the same documents the per-node HTTP
endpoint serves at ``/traces``, ``/events`` and (for the slow-query
log) the shell's ``\\slow show``.

``SHARD_STATE`` is answered by *every* server, so probes need no
special case: a plain server replies ``{sharded: false}`` (plus its
shard identity when it was started as one shard of a sharded
deployment); a :class:`~repro.sharding.router.Router` replies
``{sharded: true}`` with the shard map, per-table partition columns,
per-shard health, and the router's routing counters.

Result sets stream in bounded ``ROWS`` frames (``ROW_BATCH`` rows per
frame) so a large ``PATHS`` enumeration never requires a monster frame.

Error codes are **stable**: clients dispatch on the code, never on the
message text. The mapping from engine exceptions lives here
(:func:`error_code_for`) so the server and the docs cannot drift.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    CatalogError,
    ConstraintViolation,
    DatabaseError,
    DegradedError,
    DivergenceError,
    DurabilityError,
    ExecutionError,
    FencedError,
    IntegrityError,
    NotPrimaryError,
    OverloadedError,
    PlanningError,
    ProtocolError,
    QueryCancelledError,
    QueryTimeoutError,
    ReadOnlyError,
    ReplicationError,
    ResourceExhaustedError,
    ShardRedirectError,
    ShardUnavailableError,
    CrossShardAbortError,
    CrossShardPartialError,
    ShuttingDownError,
    SqlSyntaxError,
    TransactionError,
    TypeMismatchError,
)

#: Protocol revision; HELLO carries the client's, HELLO_OK the server's.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's payload (guards against a corrupt or hostile
#: length prefix allocating unbounded memory).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Rows per ROWS frame.
ROW_BATCH = 256

_LENGTH = struct.Struct(">I")

# ---------------------------------------------------------------------------
# stable error codes
# ---------------------------------------------------------------------------

#: ``(exception type, code)`` — order matters: subclasses come before
#: their bases so the most specific stable code wins.
_ERROR_CODE_TABLE: Tuple[Tuple[type, str], ...] = (
    (QueryTimeoutError, "TIMEOUT"),
    (ResourceExhaustedError, "BUDGET_EXCEEDED"),
    (QueryCancelledError, "CANCELLED"),
    (ReadOnlyError, "READ_ONLY"),
    (DegradedError, "DEGRADED"),
    (DurabilityError, "DURABILITY_ERROR"),
    (IntegrityError, "CONSTRAINT_VIOLATION"),
    (ConstraintViolation, "CONSTRAINT_VIOLATION"),
    (TypeMismatchError, "TYPE_MISMATCH"),
    (SqlSyntaxError, "PARSE_ERROR"),
    (CatalogError, "CATALOG_ERROR"),
    (PlanningError, "PLANNING_ERROR"),
    (TransactionError, "TRANSACTION_ERROR"),
    (ShardRedirectError, "SHARD_REDIRECT"),
    (ShardUnavailableError, "SHARD_UNAVAILABLE"),
    (CrossShardAbortError, "CROSS_SHARD_ABORT"),
    (CrossShardPartialError, "CROSS_SHARD_PARTIAL"),
    (OverloadedError, "OVERLOADED"),
    (ShuttingDownError, "SHUTTING_DOWN"),
    (ProtocolError, "PROTOCOL_ERROR"),
    (NotPrimaryError, "NOT_PRIMARY"),
    (FencedError, "FENCED"),
    (DivergenceError, "DIVERGED"),
    (ReplicationError, "REPLICATION_ERROR"),
    (ExecutionError, "EXECUTION_ERROR"),
    (DatabaseError, "DATABASE_ERROR"),
)

#: code -> human description (the docs render exactly this table).
ERROR_CODES: Dict[str, str] = {
    "TIMEOUT": "statement exceeded its wall-clock budget",
    "BUDGET_EXCEEDED": "statement exceeded a resource-governor cap",
    "CANCELLED": "statement cancelled (client disconnect or kill)",
    "READ_ONLY": "write rejected: this server is a read-only replica",
    "DEGRADED": "write rejected: a durable-write failure put the engine "
    "in read-only degraded mode (reads still flow)",
    "DURABILITY_ERROR": "the durable-write path failed; the statement was "
    "not acknowledged and the engine degraded",
    "CONSTRAINT_VIOLATION": "primary-key / not-null / graph integrity violation",
    "TYPE_MISMATCH": "value cannot be coerced to the declared column type",
    "PARSE_ERROR": "SQL failed to lex or parse",
    "CATALOG_ERROR": "unknown or duplicate table / view / index",
    "PLANNING_ERROR": "statement cannot be planned",
    "TRANSACTION_ERROR": "invalid transaction state transition",
    "OVERLOADED": "write queue full; back off and retry",
    "SHUTTING_DOWN": "server is draining; no new statements",
    "PROTOCOL_ERROR": "malformed frame or message",
    "AUTH_FAILED": "authentication token rejected",
    "UNSUPPORTED": "request type not supported by this server",
    "NOT_PRIMARY": "write sent to a non-primary cluster node; follow the "
    "ERROR frame's leader_hint (the statement was never executed, so the "
    "redirected retry is safe)",
    "FENCED": "node was deposed by a failover; writes go to the new primary",
    "SHARD_REDIRECT": "statement sent to a shard that does not own its "
    "partition key (stale shard map); rejected before execution, so the "
    "rerouted retry is safe even for writes",
    "SHARD_UNAVAILABLE": "a shard this statement needs cannot be reached; "
    "no partial results were returned",
    "CROSS_SHARD_ABORT": "a multi-partition write failed and was rolled "
    "back everywhere; no shard retains any effect",
    "CROSS_SHARD_PARTIAL": "a multi-partition write applied on some shards "
    "but a failed shard could not be compensated; do not retry blindly",
    "DIVERGED": "replica quarantined itself after a digest mismatch",
    "REPLICATION_ERROR": "replication protocol or topology problem",
    "EXECUTION_ERROR": "runtime failure while executing the statement",
    "DATABASE_ERROR": "unclassified engine error",
    "INTERNAL_ERROR": "unexpected server-side failure (bug)",
}


def error_code_for(error: BaseException) -> str:
    """The stable wire code for an engine exception."""
    for exc_type, code in _ERROR_CODE_TABLE:
        if isinstance(error, exc_type):
            return code
    return "INTERNAL_ERROR"


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Encode and transmit one frame (callers serialize access)."""
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on a clean EOF at a frame
    boundary. EOF *inside* a frame is a protocol error (torn frame)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF before a length prefix.

    Raises :class:`~repro.errors.ProtocolError` for a torn frame, an
    oversized length prefix, invalid JSON, or a non-object payload.
    """
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exactly(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between length and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}")
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame payload must be an object with a 'type'")
    return message


# ---------------------------------------------------------------------------
# value plumbing
# ---------------------------------------------------------------------------


def jsonable_row(row) -> list:
    """A result row with every value JSON-representable.

    Engine values are SQL scalars (int/float/str/bool/None) already;
    anything exotic (a Path object leaking through a projection, say)
    degrades to ``str`` rather than killing the connection.
    """
    out = []
    for value in row:
        if value is None or isinstance(value, (bool, int, float, str)):
            out.append(value)
        else:
            out.append(str(value))
    return out


def budget_from_wire(spec: Optional[Dict[str, Any]]):
    """Decode a budget object from a message (None passes through).

    Unknown knobs and invalid values are protocol errors — the caps a
    client *thinks* it set must actually be the caps in force.
    """
    from ..budget import QueryBudget

    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ProtocolError("budget must be an object of budget knobs")
    try:
        return QueryBudget(**spec)
    except TypeError as error:
        raise ProtocolError(f"bad budget: {error}")
    except ValueError as error:
        raise ProtocolError(f"bad budget: {error}")


def budget_to_wire(budget) -> Optional[Dict[str, Any]]:
    """Encode a QueryBudget as its non-None knobs (None stays None)."""
    if budget is None:
        return None
    from ..budget import _KNOBS

    return {
        knob: getattr(budget, knob)
        for knob in _KNOBS
        if getattr(budget, knob) is not None
    }
