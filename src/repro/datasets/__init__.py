"""Synthetic dataset generators and loaders (system S12).

The paper evaluates on four real graphs (Table 2): the Tiger road
network, the String protein-interaction network, the DBLP co-authorship
network, and the Twitter follower graph. Those datasets are not
redistributable here, so each is substituted by a deterministic
generator producing a graph of the same *structural class* at laptop
scale — grid-like planar (roads), dense power-law (PPI), community
overlap (co-authorship), heavy-tailed directed (followers). See
DESIGN.md for why the substitution preserves the evaluated behaviour.
"""

from .generators import (
    GraphDataset,
    road_network,
    protein_network,
    coauthorship_network,
    follower_network,
    DATASET_BUILDERS,
    standard_datasets,
)
from .loader import (
    load_into_grfusion,
    load_into_sqlgraph,
    load_into_grail,
    load_into_property_graph,
)

__all__ = [
    "GraphDataset",
    "road_network",
    "protein_network",
    "coauthorship_network",
    "follower_network",
    "DATASET_BUILDERS",
    "standard_datasets",
    "load_into_grfusion",
    "load_into_sqlgraph",
    "load_into_grail",
    "load_into_property_graph",
]
