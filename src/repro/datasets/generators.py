"""Deterministic synthetic graph generators.

Every generator returns a :class:`GraphDataset` with uniform row shapes:

* vertices: ``(vid, vlabel, vsel)``
* edges: ``(eid, src, dst, w, elabel, esel)``

``vsel`` / ``esel`` are integers uniform in ``[0, 100)`` so a predicate
``sel < s`` selects an ``s``-percent subgraph — the mechanism behind the
paper's 5%-50% sub-graph selectivity sweeps (Section 7.1).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Tuple

VertexRow = Tuple[Any, str, int]
EdgeRow = Tuple[Any, Any, Any, float, str, int]


class GraphDataset:
    """A generated graph plus its provenance."""

    def __init__(
        self,
        name: str,
        directed: bool,
        vertices: List[VertexRow],
        edges: List[EdgeRow],
        paper_analogue: str,
        description: str,
    ):
        self.name = name
        self.directed = directed
        self.vertices = vertices
        self.edges = edges
        self.paper_analogue = paper_analogue
        self.description = description

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def average_degree(self) -> float:
        if not self.vertices:
            return 0.0
        return len(self.edges) / len(self.vertices)

    def __repr__(self) -> str:
        return (
            f"GraphDataset({self.name}, |V|={self.vertex_count}, "
            f"|E|={self.edge_count})"
        )


_ROAD_LABELS = ("local", "highway", "toll")
_PPI_LABELS = ("covalent", "stable", "weak", "transient")
_COAUTHOR_LABELS = ("journal", "conference", "workshop")
_FOLLOW_LABELS = ("follows",)


def road_network(
    width: int = 32, height: int = 32, seed: int = 7
) -> GraphDataset:
    """Tiger-analogue: a planar grid of road intersections.

    Degree is bounded by 4 and the diameter is large — the regime where
    deep traversals are long chains (road-network reachability in
    Figure 7a).
    """
    rng = random.Random(seed)
    vertices: List[VertexRow] = []
    edges: List[EdgeRow] = []
    def vid(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            vertices.append((vid(x, y), "intersection", rng.randrange(100)))
    eid = 0
    for y in range(height):
        for x in range(width):
            # connect rightwards and downwards; undirected edges
            for dx, dy in ((1, 0), (0, 1)):
                nx, ny = x + dx, y + dy
                if nx >= width or ny >= height:
                    continue
                # occasionally drop an edge so the grid is not perfect
                if rng.random() < 0.03:
                    continue
                length = round(rng.uniform(0.2, 3.0), 3)
                label = rng.choices(_ROAD_LABELS, weights=(80, 15, 5))[0]
                edges.append(
                    (eid, vid(x, y), vid(nx, ny), length, label, rng.randrange(100))
                )
                eid += 1
    return GraphDataset(
        "road",
        directed=False,
        vertices=vertices,
        edges=edges,
        paper_analogue="Tiger (continental US road network)",
        description=f"{width}x{height} planar road grid",
    )


def protein_network(
    n: int = 1200, attach: int = 6, seed: int = 11
) -> GraphDataset:
    """String-analogue: dense power-law protein-interaction network
    grown by preferential attachment (Barabási-Albert)."""
    rng = random.Random(seed)
    vertices: List[VertexRow] = [
        (i, f"P{i:05d}", rng.randrange(100)) for i in range(n)
    ]
    edges: List[EdgeRow] = []
    eid = 0
    # endpoint pool: vertices repeated once per incident edge (BA trick)
    endpoint_pool: List[int] = list(range(min(attach + 1, n)))
    seen = set()
    for new in range(len(endpoint_pool), n):
        targets = set()
        while len(targets) < min(attach, new):
            candidate = rng.choice(endpoint_pool)
            if candidate != new:
                targets.add(candidate)
        for target in targets:
            key = (min(new, target), max(new, target))
            if key in seen:
                continue
            seen.add(key)
            label = rng.choices(_PPI_LABELS, weights=(10, 30, 40, 20))[0]
            confidence = round(rng.uniform(0.15, 1.0), 3)
            edges.append(
                (eid, new, target, confidence, label, rng.randrange(100))
            )
            eid += 1
            endpoint_pool.extend((new, target))
    return GraphDataset(
        "protein",
        directed=False,
        vertices=vertices,
        edges=edges,
        paper_analogue="String (protein-interaction network)",
        description=f"BA power-law PPI, n={n}, attach={attach}",
    )


def coauthorship_network(
    n: int = 1500,
    communities: int = 40,
    collaborators: int = 5,
    cross_probability: float = 0.08,
    seed: int = 13,
) -> GraphDataset:
    """DBLP-analogue: community-structured undirected co-authorship."""
    rng = random.Random(seed)
    vertices: List[VertexRow] = []
    community_members: List[List[int]] = [[] for _ in range(communities)]
    for author in range(n):
        community = rng.randrange(communities)
        community_members[community].append(author)
        vertices.append((author, f"author{author}", rng.randrange(100)))
    edges: List[EdgeRow] = []
    seen = set()
    eid = 0
    community_of: Dict[int, int] = {}
    for c, members in enumerate(community_members):
        for member in members:
            community_of[member] = c
    for author in range(n):
        community = community_of[author]
        pool = community_members[community]
        for _ in range(collaborators):
            if rng.random() < cross_probability or len(pool) < 2:
                other = rng.randrange(n)
            else:
                other = rng.choice(pool)
            if other == author:
                continue
            key = (min(author, other), max(author, other))
            if key in seen:
                continue
            seen.add(key)
            papers = rng.randint(1, 12)
            label = rng.choice(_COAUTHOR_LABELS)
            edges.append(
                (eid, author, other, float(papers), label, rng.randrange(100))
            )
            eid += 1
    return GraphDataset(
        "dblp",
        directed=False,
        vertices=vertices,
        edges=edges,
        paper_analogue="DBLP (co-authorship network)",
        description=(
            f"community co-authorship, n={n}, communities={communities}"
        ),
    )


def follower_network(
    n: int = 2000, out_degree: int = 12, seed: int = 17
) -> GraphDataset:
    """Twitter-analogue: directed follower graph with heavy-tailed
    in-degree (preferential attachment on the followee side).

    This is the graph class where join-based traversal blows up
    (Figure 7d): a few celebrity vertices concentrate most edges.
    """
    rng = random.Random(seed)
    vertices: List[VertexRow] = [
        (i, f"user{i}", rng.randrange(100)) for i in range(n)
    ]
    edges: List[EdgeRow] = []
    eid = 0
    followee_pool: List[int] = list(range(min(out_degree + 1, n)))
    seen = set()
    for user in range(n):
        follows = set()
        budget = min(out_degree, n - 1)
        attempts = 0
        while len(follows) < budget and attempts < budget * 8:
            attempts += 1
            if rng.random() < 0.25:
                candidate = rng.randrange(n)
            else:
                candidate = rng.choice(followee_pool)
            if candidate == user or (user, candidate) in seen:
                continue
            follows.add(candidate)
            seen.add((user, candidate))
        for followee in follows:
            edges.append(
                (eid, user, followee, 1.0, "follows", rng.randrange(100))
            )
            eid += 1
            followee_pool.append(followee)
    return GraphDataset(
        "twitter",
        directed=True,
        vertices=vertices,
        edges=edges,
        paper_analogue="Twitter (follower graph)",
        description=f"preferential-attachment follower graph, n={n}",
    )


DATASET_BUILDERS: Dict[str, Callable[..., GraphDataset]] = {
    "road": road_network,
    "protein": protein_network,
    "dblp": coauthorship_network,
    "twitter": follower_network,
}


def standard_datasets(scale: float = 1.0, seed: int = 23) -> List[GraphDataset]:
    """The four Table-2 datasets at a given scale factor."""
    side = max(8, int(32 * scale**0.5))
    return [
        road_network(width=side, height=side, seed=seed),
        protein_network(n=max(100, int(1200 * scale)), seed=seed + 1),
        coauthorship_network(n=max(100, int(1500 * scale)), seed=seed + 2),
        follower_network(n=max(100, int(2000 * scale)), seed=seed + 3),
    ]
