"""Loaders: put a :class:`GraphDataset` into each system under test."""

from __future__ import annotations

from typing import Optional, Tuple

from ..baselines.grail import GrailEngine
from ..baselines.graphdb import PropertyGraph
from ..baselines.sqlgraph import SqlGraphStore
from ..core.database import Database
from .generators import GraphDataset


def load_into_grfusion(
    dataset: GraphDataset,
    database: Optional[Database] = None,
    graph_name: Optional[str] = None,
) -> Tuple[Database, str]:
    """Create vertex/edge tables, load rows, and build the graph view.

    Returns ``(database, graph_view_name)``. Table names are derived
    from the dataset name (``<name>_v`` / ``<name>_e``).
    """
    db = database or Database()
    name = graph_name or dataset.name.capitalize()
    vertex_table = f"{dataset.name}_v"
    edge_table = f"{dataset.name}_e"
    db.execute(
        f"CREATE TABLE {vertex_table} (vid INTEGER PRIMARY KEY, "
        "vlabel VARCHAR, vsel INTEGER)"
    )
    db.execute(
        f"CREATE TABLE {edge_table} (eid INTEGER PRIMARY KEY, src INTEGER, "
        "dst INTEGER, w FLOAT, elabel VARCHAR, esel INTEGER)"
    )
    db.load_rows(vertex_table, dataset.vertices)
    db.load_rows(edge_table, dataset.edges)
    direction = "DIRECTED" if dataset.directed else "UNDIRECTED"
    db.execute(
        f"CREATE {direction} GRAPH VIEW {name} "
        f"VERTEXES(ID = vid, vlabel = vlabel, vsel = vsel) FROM {vertex_table} "
        f"EDGES(ID = eid, FROM = src, TO = dst, w = w, elabel = elabel, "
        f"esel = esel) FROM {edge_table}"
    )
    return db, name


def load_into_sqlgraph(dataset: GraphDataset) -> SqlGraphStore:
    store = SqlGraphStore(directed=dataset.directed)
    store.load_vertices(dataset.vertices)
    store.load_edges(dataset.edges)
    return store


def load_into_grail(dataset: GraphDataset) -> GrailEngine:
    engine = GrailEngine(directed=dataset.directed)
    engine.load_edges(
        (eid, src, dst, w) for eid, src, dst, w, _label, _sel in dataset.edges
    )
    return engine


def load_into_property_graph(dataset: GraphDataset) -> PropertyGraph:
    graph = PropertyGraph(directed=dataset.directed)
    for vid, vlabel, vsel in dataset.vertices:
        graph.add_vertex(vid, vlabel=vlabel, vsel=vsel)
    for eid, src, dst, w, elabel, esel in dataset.edges:
        graph.add_edge(eid, src, dst, w=w, elabel=elabel, esel=esel)
    return graph
