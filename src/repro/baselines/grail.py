"""Grail-style baseline: graph queries as iterative SQL scripts [25].

Grail translates vertex-centric graph computations (shortest paths,
reachability) into *procedural SQL*: a driver loop issuing set-oriented
statements over frontier / distance tables until a fixpoint. This module
is that driver. All heavy lifting happens in SQL on the same relational
engine GRFusion runs on, matching the paper's methodology of
implementing Grail on top of in-memory VoltDB.

* :meth:`GrailEngine.reachability` — level-synchronous BFS with a
  ``frontier`` and a ``visited`` table; one ``INSERT ... SELECT`` join
  per level.
* :meth:`GrailEngine.shortest_path_distance` — Bellman-Ford style
  relaxation over a ``dist`` table; each round joins ``dist`` with the
  edge table, keeps improved candidates, and merges them back.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

from ..core.database import Database


class GrailEngine:
    """Iterative-SQL graph query driver over a relational edge table."""

    _sequence = itertools.count()

    def __init__(self, directed: bool = True, database: Optional[Database] = None):
        self.directed = directed
        self.db = database or Database()
        self.db.execute(
            "CREATE TABLE gr_edges (eid INTEGER PRIMARY KEY, src INTEGER, "
            "dst INTEGER, w FLOAT)"
        )

    # ------------------------------------------------------------------

    def load_edges(self, rows) -> int:
        """Rows: ``(eid, src, dst, weight)`` — undirected graphs get the
        reverse direction materialized, as in the SQLGraph store."""
        prepared = []
        for eid, src, dst, w in rows:
            prepared.append((eid, src, dst, w))
            if not self.directed:
                prepared.append((-eid - 1, dst, src, w))
        return self.db.load_rows("gr_edges", prepared)

    # ------------------------------------------------------------------
    # reachability: level-synchronous BFS in SQL
    # ------------------------------------------------------------------

    def reachability(
        self, source: Any, target: Any, max_iterations: int = 64
    ) -> Tuple[bool, int]:
        """Returns ``(reachable, iterations_used)``."""
        run = next(self._sequence)
        visited = f"gr_visited_{run}"
        frontier = f"gr_frontier_{run}"
        next_frontier = f"gr_next_{run}"
        db = self.db
        db.execute(f"CREATE TABLE {visited} (vid INTEGER PRIMARY KEY)")
        db.execute(f"CREATE TABLE {frontier} (vid INTEGER PRIMARY KEY)")
        db.execute(f"CREATE TABLE {next_frontier} (vid INTEGER PRIMARY KEY)")
        try:
            db.execute(f"INSERT INTO {visited} VALUES ({source})")
            db.execute(f"INSERT INTO {frontier} VALUES ({source})")
            iterations = 0
            while iterations < max_iterations:
                iterations += 1
                grown = db.execute(
                    f"INSERT INTO {next_frontier} (vid) "
                    f"SELECT DISTINCT e.dst FROM {frontier} f, gr_edges e "
                    f"WHERE e.src = f.vid AND e.dst NOT IN "
                    f"(SELECT vid FROM {visited})"
                ).rowcount
                if not grown:
                    return False, iterations
                hit = db.execute(
                    f"SELECT 1 FROM {next_frontier} WHERE vid = {target} "
                    "LIMIT 1"
                ).rows
                db.execute(
                    f"INSERT INTO {visited} (vid) SELECT vid FROM "
                    f"{next_frontier}"
                )
                if hit:
                    return True, iterations
                db.execute(f"TRUNCATE TABLE {frontier}")
                db.execute(
                    f"INSERT INTO {frontier} (vid) SELECT vid FROM "
                    f"{next_frontier}"
                )
                db.execute(f"TRUNCATE TABLE {next_frontier}")
            return False, iterations
        finally:
            for name in (visited, frontier, next_frontier):
                db.execute(f"DROP TABLE {name}")

    # ------------------------------------------------------------------
    # single-source shortest path: Bellman-Ford relaxation in SQL
    # ------------------------------------------------------------------

    def shortest_path_distance(
        self, source: Any, target: Any, max_iterations: int = 64
    ) -> Tuple[Optional[float], int]:
        """Returns ``(distance_or_None, relaxation_rounds)``."""
        distance, rounds, _path = self._relax(
            source, target, max_iterations, reconstruct=False
        )
        return distance, rounds

    def shortest_path(
        self, source: Any, target: Any, max_iterations: int = 64
    ) -> Tuple[Optional[float], list]:
        """Returns ``(distance_or_None, vertex_id_list)``.

        Path reconstruction is itself a sequence of SQL probes walking
        predecessors backwards from the target — staying inside the
        iterative-SQL computational model.
        """
        distance, _rounds, path = self._relax(
            source, target, max_iterations, reconstruct=True
        )
        return distance, path

    def _relax(
        self,
        source: Any,
        target: Any,
        max_iterations: int,
        reconstruct: bool,
    ) -> Tuple[Optional[float], int, list]:
        run = next(self._sequence)
        dist = f"gr_dist_{run}"
        cand = f"gr_cand_{run}"
        improved = f"gr_improved_{run}"
        db = self.db
        db.execute(f"CREATE TABLE {dist} (vid INTEGER PRIMARY KEY, d FLOAT)")
        db.execute(f"CREATE TABLE {cand} (vid INTEGER PRIMARY KEY, d FLOAT)")
        db.execute(f"CREATE TABLE {improved} (vid INTEGER PRIMARY KEY, d FLOAT)")
        try:
            db.execute(f"INSERT INTO {dist} VALUES ({source}, 0.0)")
            rounds = 0
            while rounds < max_iterations:
                rounds += 1
                db.execute(f"TRUNCATE TABLE {cand}")
                db.execute(
                    f"INSERT INTO {cand} (vid, d) "
                    f"SELECT e.dst, MIN(dd.d + e.w) FROM {dist} dd, "
                    "gr_edges e WHERE e.src = dd.vid GROUP BY e.dst"
                )
                db.execute(f"TRUNCATE TABLE {improved}")
                changed = db.execute(
                    f"INSERT INTO {improved} (vid, d) "
                    f"SELECT c.vid, c.d FROM {cand} c "
                    f"LEFT JOIN {dist} dd ON c.vid = dd.vid "
                    "WHERE dd.vid IS NULL OR c.d < dd.d"
                ).rowcount
                if not changed:
                    break
                db.execute(
                    f"DELETE FROM {dist} WHERE vid IN "
                    f"(SELECT vid FROM {improved})"
                )
                db.execute(
                    f"INSERT INTO {dist} (vid, d) SELECT vid, d FROM "
                    f"{improved}"
                )
            distance = db.execute(
                f"SELECT d FROM {dist} WHERE vid = {target}"
            ).scalar()
            path: list = []
            if reconstruct and distance is not None:
                path = self._reconstruct(dist, source, target)
            return distance, rounds, path
        finally:
            for name in (dist, cand, improved):
                db.execute(f"DROP TABLE {name}")

    def _reconstruct(self, dist_table: str, source: Any, target: Any) -> list:
        """Walk predecessors backwards: a vertex ``p`` precedes ``v`` on
        a shortest path iff ``dist(p) + w(p, v) = dist(v)``."""
        db = self.db
        path = [target]
        current = target
        guard = 0
        while current != source and guard < 10_000:
            guard += 1
            predecessor = db.execute(
                f"SELECT dd.vid FROM {dist_table} dd, gr_edges e "
                f"WHERE e.dst = {current} AND e.src = dd.vid "
                f"AND ABS(dd.d + e.w - (SELECT d FROM {dist_table} "
                f"WHERE vid = {current})) < 0.000001 LIMIT 1"
            ).scalar()
            if predecessor is None:
                return []  # inconsistent state; give up gracefully
            path.append(predecessor)
            current = predecessor
        path.reverse()
        return path
