"""Specialized graph database simulators (the Native Graph-Core side).

The paper compares GRFusion with Neo4j (running on a RAM disk) and Titan
(in-memory backend) and attributes its wins over them to "implementation
factors and not to a fundamental change in the computational model"
(Section 7.2): both specialized systems pay per-hop indirection —
record-store traversal, string-keyed property maps, transaction
wrappers, and (for Titan) serialized property payloads — that GRFusion's
raw adjacency lists plus tuple pointers do not.

This module builds exactly that: :class:`PropertyGraph` is a clean
native graph store, and :class:`GraphDatabaseSim` wraps it with a
configurable overhead profile. ``neo4j_sim`` applies record/property/txn
indirection; ``titan_sim`` additionally serializes edge properties so
every filtered hop pays a deserialization, emulating its storage-backend
round trip. The *computational model* (native traversal, no joins) is
identical to GRFusion's — only the constant factors differ, matching the
paper's explanation.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import ExecutionError


class PropertyGraph:
    """A standalone in-memory property graph (dict-of-dicts storage)."""

    def __init__(self, directed: bool = True):
        self.directed = directed
        self.vertex_properties: Dict[Any, Dict[str, Any]] = {}
        self.edge_properties: Dict[Any, Dict[str, Any]] = {}
        # adjacency: vertex -> list of (edge_id, neighbor)
        self.adjacency: Dict[Any, List[Tuple[Any, Any]]] = {}

    def add_vertex(self, vertex_id: Any, **properties: Any) -> None:
        if vertex_id in self.vertex_properties:
            raise ExecutionError(f"duplicate vertex {vertex_id!r}")
        self.vertex_properties[vertex_id] = dict(properties)
        self.adjacency[vertex_id] = []

    def add_edge(self, edge_id: Any, src: Any, dst: Any, **properties: Any) -> None:
        if edge_id in self.edge_properties:
            raise ExecutionError(f"duplicate edge {edge_id!r}")
        if src not in self.adjacency or dst not in self.adjacency:
            raise ExecutionError(f"edge {edge_id!r} references missing vertex")
        self.edge_properties[edge_id] = dict(properties)
        self.adjacency[src].append((edge_id, dst))
        if not self.directed and src != dst:
            self.adjacency[dst].append((edge_id, src))

    @property
    def vertex_count(self) -> int:
        return len(self.vertex_properties)

    @property
    def edge_count(self) -> int:
        return len(self.edge_properties)


class _RelationshipRecord:
    """Per-hop wrapper object (the Neo4j record-store indirection)."""

    __slots__ = ("edge_id", "other", "_store")

    def __init__(self, edge_id: Any, other: Any, store: "GraphDatabaseSim"):
        self.edge_id = edge_id
        self.other = other
        self._store = store

    def get_property(self, name: str) -> Any:
        return self._store._read_edge_property(self.edge_id, name)


class _Transaction:
    """Per-query transaction wrapper (held open during traversal)."""

    __slots__ = ("state",)

    def __init__(self):
        self.state = "open"

    def success(self) -> None:
        self.state = "success"

    def close(self) -> None:
        self.state = "closed"


class GraphDatabaseSim:
    """A property graph behind a Neo4j/Titan-like access layer.

    ``serialize_properties``: store edge property maps pickled and pay a
    deserialization per property read (Titan's storage-backend behaviour).
    """

    def __init__(
        self,
        graph: PropertyGraph,
        name: str = "graphdb",
        serialize_properties: bool = False,
        serialize_adjacency: bool = False,
    ):
        self.name = name
        self.graph = graph
        self.serialize_properties = serialize_properties
        self.serialize_adjacency = serialize_adjacency
        self._serialized_edges: Dict[Any, bytes] = {}
        self._serialized_adjacency: Dict[Any, bytes] = {}
        if serialize_properties:
            for edge_id, properties in graph.edge_properties.items():
                self._serialized_edges[edge_id] = pickle.dumps(properties)
        if serialize_adjacency:
            for vertex_id, neighbors in graph.adjacency.items():
                self._serialized_adjacency[vertex_id] = pickle.dumps(neighbors)

    # ------------------------------------------------------------------
    # loading (keeps serialized store in sync)
    # ------------------------------------------------------------------

    def add_vertex(self, vertex_id: Any, **properties: Any) -> None:
        self.graph.add_vertex(vertex_id, **properties)

    def add_edge(self, edge_id: Any, src: Any, dst: Any, **properties: Any) -> None:
        self.graph.add_edge(edge_id, src, dst, **properties)
        if self.serialize_properties:
            self._serialized_edges[edge_id] = pickle.dumps(properties)
        if self.serialize_adjacency:
            self._serialized_adjacency[src] = pickle.dumps(
                self.graph.adjacency[src]
            )
            if not self.graph.directed:
                self._serialized_adjacency[dst] = pickle.dumps(
                    self.graph.adjacency[dst]
                )

    # ------------------------------------------------------------------
    # access layer with the per-hop overheads
    # ------------------------------------------------------------------

    def _read_edge_property(self, edge_id: Any, name: str) -> Any:
        if self.serialize_properties:
            return pickle.loads(self._serialized_edges[edge_id]).get(name)
        return self.graph.edge_properties[edge_id].get(name)

    def _relationships_of(self, vertex_id: Any):
        if self.serialize_adjacency:
            # the storage backend hands back a serialized relation list
            # per vertex (Titan's columnar adjacency round trip)
            neighbors = pickle.loads(self._serialized_adjacency[vertex_id])
        else:
            neighbors = self.graph.adjacency[vertex_id]
        for edge_id, other in neighbors:
            yield _RelationshipRecord(edge_id, other, self)

    def vertex_property(self, vertex_id: Any, name: str) -> Any:
        return self.graph.vertex_properties[vertex_id].get(name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def reachability(
        self,
        source: Any,
        target: Any,
        max_hops: Optional[int] = None,
        edge_filter: Optional[Callable[[_RelationshipRecord], bool]] = None,
    ) -> Tuple[bool, int]:
        """BFS existence check; returns ``(reachable, hops_of_witness)``."""
        if source not in self.graph.adjacency:
            return False, 0
        transaction = _Transaction()
        try:
            visited: Set[Any] = {source}
            queue = deque([(source, 0)])
            while queue:
                vertex, depth = queue.popleft()
                if vertex == target and depth > 0:
                    transaction.success()
                    return True, depth
                if max_hops is not None and depth >= max_hops:
                    continue
                for relationship in self._relationships_of(vertex):
                    if edge_filter is not None and not edge_filter(relationship):
                        continue
                    other = relationship.other
                    if other not in visited:
                        visited.add(other)
                        queue.append((other, depth + 1))
            transaction.success()
            return False, 0
        finally:
            transaction.close()

    def dijkstra(
        self,
        source: Any,
        target: Any,
        weight_property: str = "w",
        edge_filter: Optional[Callable[[_RelationshipRecord], bool]] = None,
    ) -> Optional[float]:
        """Shortest-path distance by weight property (None if unreachable)."""
        if source not in self.graph.adjacency:
            return None
        transaction = _Transaction()
        try:
            counter = itertools.count()
            heap: List[Tuple[float, int, Any]] = [(0.0, next(counter), source)]
            settled: Set[Any] = set()
            while heap:
                cost, _tiebreak, vertex = heapq.heappop(heap)
                if vertex in settled:
                    continue
                settled.add(vertex)
                if vertex == target:
                    transaction.success()
                    return cost
                for relationship in self._relationships_of(vertex):
                    if edge_filter is not None and not edge_filter(relationship):
                        continue
                    other = relationship.other
                    if other in settled:
                        continue
                    weight = relationship.get_property(weight_property)
                    weight = 0.0 if weight is None else float(weight)
                    heapq.heappush(heap, (cost + weight, next(counter), other))
            transaction.success()
            return None
        finally:
            transaction.close()

    def khop_neighbors(self, source: Any, hops: int) -> Set[Any]:
        frontier = {source}
        seen = {source}
        for _ in range(hops):
            next_frontier: Set[Any] = set()
            for vertex in frontier:
                for relationship in self._relationships_of(vertex):
                    if relationship.other not in seen:
                        seen.add(relationship.other)
                        next_frontier.add(relationship.other)
            frontier = next_frontier
        return frontier

    def triangle_count(
        self,
        edge_filter: Optional[Callable[[_RelationshipRecord], bool]] = None,
    ) -> int:
        """Count directed triangles (each rotation counted once)."""
        count = 0
        for first in self.graph.adjacency:
            for rel_ab in self._relationships_of(first):
                if edge_filter is not None and not edge_filter(rel_ab):
                    continue
                second = rel_ab.other
                if second == first:
                    continue
                for rel_bc in self._relationships_of(second):
                    if edge_filter is not None and not edge_filter(rel_bc):
                        continue
                    third = rel_bc.other
                    if third in (first, second):
                        continue
                    for rel_ca in self._relationships_of(third):
                        if rel_ca.other != first:
                            continue
                        if edge_filter is not None and not edge_filter(rel_ca):
                            continue
                        count += 1
        return count


def neo4j_sim(graph: PropertyGraph) -> GraphDatabaseSim:
    """Record-store + property-map + transaction indirection."""
    return GraphDatabaseSim(graph, name="neo4j_sim", serialize_properties=False)


def titan_sim(graph: PropertyGraph) -> GraphDatabaseSim:
    """Like Neo4j plus serialized adjacency per vertex visit and
    serialized edge payloads per property read."""
    return GraphDatabaseSim(
        graph,
        name="titan_sim",
        serialize_properties=True,
        serialize_adjacency=True,
    )


def extract_property_graph(
    database,
    vertex_table: str,
    vertex_id_column: str,
    edge_table: str,
    edge_id_column: str,
    edge_from_column: str,
    edge_to_column: str,
    directed: bool = True,
) -> PropertyGraph:
    """The Native Graph-Core extraction step (Figure 1b): pull a graph
    out of relational tables into a standalone property graph.

    Note the approach's documented weakness (Table 1): the extracted
    graph is a snapshot — relational updates require re-extraction.
    """
    graph = PropertyGraph(directed)
    vertices = database.table(vertex_table)
    id_position = vertices.schema.position_of(vertex_id_column)
    names = vertices.schema.column_names
    for _slot, row in vertices.scan():
        vertex_id = row[id_position]
        # column names may collide with add_vertex parameters, so the
        # property map is installed directly
        graph.add_vertex(vertex_id)
        graph.vertex_properties[vertex_id].update(zip(names, row))
    edges = database.table(edge_table)
    eid_position = edges.schema.position_of(edge_id_column)
    from_position = edges.schema.position_of(edge_from_column)
    to_position = edges.schema.position_of(edge_to_column)
    edge_names = edges.schema.column_names
    for _slot, row in edges.scan():
        edge_id = row[eid_position]
        graph.add_edge(edge_id, row[from_position], row[to_position])
        graph.edge_properties[edge_id].update(zip(edge_names, row))
    return graph
