"""SQLGraph-style baseline: graphs in relational tables, traversals as
relational self-joins (the Native Relational-Core approach, Figure 1a).

SQLGraph [46] stores property graphs in a storage-optimized relational
schema and compiles Gremlin traversals into SQL. The property the
paper's evaluation isolates — and the one reproduced here — is that
**every traversal hop costs one relational join**: a reachability query
whose answer path has length *l* becomes an *l*-way self-join of the
edge table, so query time grows with path length and the intermediate
join results blow up on high-degree graphs (Section 7.2). We use a
plain normalized edge-table encoding rather than SQLGraph's hashed
multi-column layout; both share the join-per-hop behaviour (see
DESIGN.md, substitutions).

The baseline runs on the same relational engine as GRFusion, mirroring
the paper's methodology of implementing SQLGraph inside VoltDB.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from ..core.database import Database
from ..errors import ExecutionError


class BudgetExceeded(ExecutionError):
    """Raised when a guarded query touches more rows than its budget.

    Models the paper's observation that SQLGraph's intermediate join
    results can exceed the memory VoltDB allows (Twitter graph,
    Figure 7d): the benchmark harness reports such runs as DNF.
    """


class SqlGraphStore:
    """A graph encoded relationally, queried via self-joins."""

    def __init__(self, directed: bool = True, database: Optional[Database] = None):
        self.directed = directed
        self.db = database or Database()
        self.db.execute(
            "CREATE TABLE sg_vertices (vid INTEGER PRIMARY KEY, "
            "vlabel VARCHAR, vsel INTEGER)"
        )
        self.db.execute(
            "CREATE TABLE sg_edges (eid INTEGER PRIMARY KEY, src INTEGER, "
            "dst INTEGER, w FLOAT, elabel VARCHAR, esel INTEGER)"
        )
        self.db.execute("CREATE INDEX sg_edges_src ON sg_edges (src)")

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def load_vertices(
        self, rows: Iterable[Tuple[Any, str, int]]
    ) -> int:
        """Rows: ``(vid, label, selectivity_column)``."""
        return self.db.load_rows("sg_vertices", rows)

    def load_edges(
        self, rows: Iterable[Tuple[Any, Any, Any, float, str, int]]
    ) -> int:
        """Rows: ``(eid, src, dst, weight, label, selectivity_column)``.

        For undirected graphs each edge is stored in both directions
        (the standard relational encoding; the reverse row's id is the
        negated original id).
        """
        count = 0
        prepared: List[Tuple] = []
        for eid, src, dst, w, label, sel in rows:
            prepared.append((eid, src, dst, w, label, sel))
            if not self.directed:
                prepared.append((-eid - 1, dst, src, w, label, sel))
            count += 1
        self.db.load_rows("sg_edges", prepared)
        return count

    @property
    def vertex_count(self) -> int:
        return self.db.table("sg_vertices").row_count

    @property
    def edge_count(self) -> int:
        return self.db.table("sg_edges").row_count

    # ------------------------------------------------------------------
    # query generation: one join per hop
    # ------------------------------------------------------------------

    def reachability_sql(
        self,
        source: Any,
        target: Any,
        hops: int,
        edge_predicate: Optional[str] = None,
    ) -> str:
        """SQL checking for a path of exactly ``hops`` edges.

        ``edge_predicate`` is a template like ``"{alias}.esel < 20"``
        applied to every hop (the constrained-reachability workload).
        """
        if hops < 1:
            raise ExecutionError("reachability needs at least one hop")
        aliases = [f"e{i}" for i in range(hops)]
        from_clause = ", ".join(f"sg_edges {a}" for a in aliases)
        conditions = [f"e0.src = {_sql_value(source)}"]
        for previous, current in zip(aliases, aliases[1:]):
            conditions.append(f"{current}.src = {previous}.dst")
        conditions.append(f"{aliases[-1]}.dst = {_sql_value(target)}")
        if edge_predicate:
            for alias in aliases:
                conditions.append(edge_predicate.format(alias=alias))
        where_clause = " AND ".join(conditions)
        return f"SELECT 1 FROM {from_clause} WHERE {where_clause} LIMIT 1"

    def reachable_within(
        self,
        source: Any,
        target: Any,
        max_hops: int,
        edge_predicate: Optional[str] = None,
    ) -> bool:
        """Iteratively deepen: one self-join query per candidate length,
        exactly how a SQL translation layer answers reachability."""
        for hops in range(1, max_hops + 1):
            sql = self.reachability_sql(source, target, hops, edge_predicate)
            if self.db.execute(sql).rows:
                return True
        return False

    def reachable_at(
        self,
        source: Any,
        target: Any,
        hops: int,
        edge_predicate: Optional[str] = None,
    ) -> bool:
        """Single fixed-length probe (the Figure-7 measurement point)."""
        sql = self.reachability_sql(source, target, hops, edge_predicate)
        return bool(self.db.execute(sql).rows)

    def khop_neighbors_sql(self, source: Any, hops: int) -> str:
        aliases = [f"e{i}" for i in range(hops)]
        from_clause = ", ".join(f"sg_edges {a}" for a in aliases)
        conditions = [f"e0.src = {_sql_value(source)}"]
        for previous, current in zip(aliases, aliases[1:]):
            conditions.append(f"{current}.src = {previous}.dst")
        where_clause = " AND ".join(conditions)
        return (
            f"SELECT DISTINCT {aliases[-1]}.dst FROM {from_clause} "
            f"WHERE {where_clause}"
        )

    def khop_neighbors(self, source: Any, hops: int) -> List[Any]:
        return self.db.execute(self.khop_neighbors_sql(source, hops)).column(0)

    # ------------------------------------------------------------------
    # pattern matching: triangles as a 3-way self-join (Figure 10)
    # ------------------------------------------------------------------

    def triangle_count_sql(self, edge_predicate: Optional[str] = None) -> str:
        conditions = [
            "e1.src = e0.dst",
            "e2.src = e1.dst",
            "e2.dst = e0.src",
        ]
        if edge_predicate:
            for alias in ("e0", "e1", "e2"):
                conditions.append(edge_predicate.format(alias=alias))
        where_clause = " AND ".join(conditions)
        return (
            "SELECT COUNT(*) FROM sg_edges e0, sg_edges e1, sg_edges e2 "
            f"WHERE {where_clause}"
        )

    def triangle_count(self, edge_predicate: Optional[str] = None) -> int:
        return self.db.execute(self.triangle_count_sql(edge_predicate)).scalar()


def _sql_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
