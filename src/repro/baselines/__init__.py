"""Baseline systems the paper compares against (Section 7).

* :mod:`repro.baselines.sqlgraph` — **SQLGraph** [46], the Native
  Relational-Core representative: the graph lives in relational tables
  and every traversal hop is a relational self-join.
* :mod:`repro.baselines.grail` — **Grail** [25]: graph queries compiled
  to iterative (frontier-table) SQL scripts run by a driver.
* :mod:`repro.baselines.graphdb` — the Native Graph-Core representatives:
  a standalone property-graph database with overhead profiles emulating
  **Neo4j** and **Titan**, plus the extract-from-RDBMS pipeline.

All three run against the same engine / process as GRFusion, mirroring
the paper's setup where every baseline was configured to run in memory.
"""

from .sqlgraph import SqlGraphStore
from .grail import GrailEngine
from .graphdb import PropertyGraph, GraphDatabaseSim, neo4j_sim, titan_sim, extract_property_graph

__all__ = [
    "SqlGraphStore",
    "GrailEngine",
    "PropertyGraph",
    "GraphDatabaseSim",
    "neo4j_sim",
    "titan_sim",
    "extract_property_graph",
]
