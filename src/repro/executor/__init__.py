"""Iterator-model (Volcano) executor (system S5).

Operators are lazily-iterated producers of *combined rows*: lists with
one slot per from-clause item. Relational slots hold stored tuples;
graph slots hold Vertex / Edge / Path objects — the unified interface
that lets relational and graph operators co-exist in one QEP
(Section 5.2 of the paper).
"""

from .operators import (
    Operator,
    SeqScanOp,
    IndexLookupOp,
    FilterOp,
    ProjectOp,
    LimitOp,
    DistinctOp,
    SingleRowOp,
)
from .joins import NestedLoopJoinOp, HashJoinOp, ProbeJoinOp
from .aggregates import AggregateOp, SortOp

__all__ = [
    "Operator",
    "SeqScanOp",
    "IndexLookupOp",
    "FilterOp",
    "ProjectOp",
    "LimitOp",
    "DistinctOp",
    "SingleRowOp",
    "NestedLoopJoinOp",
    "HashJoinOp",
    "ProbeJoinOp",
    "AggregateOp",
    "SortOp",
]
