"""Core relational operators: scans, filter, project, limit, distinct.

Every source operator (and each join, which can multiply cardinality)
captures the ambient :class:`~repro.budget.CancellationToken` at
iteration start and ticks it per row — the cooperative check points of
the resource governor. Without a budget this costs one ``None`` check
per row.

Tracing follows the same ambient pattern one level up: the shared
``Operator.__iter__`` checks for an active
:class:`~repro.observability.tracer.QueryTracer` once per iteration
start and, when none is installed (the normal case), returns the
subclass's raw ``_rows()`` generator untouched — EXPLAIN ANALYZE pays
for per-operator metering only while it runs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence

from ..budget import current_token
from ..expr.compile import CompiledExpression
from ..observability.tracer import current_tracer
from ..storage.index import Index
from ..storage.table import Table

Row = List[Any]


class Operator:
    """Base class: an operator is a restartable iterable of combined rows.

    Subclasses implement :meth:`_rows`; it may be called more than once
    (e.g. as the inner side of a nested-loop join) and must build a
    fresh iterator per call. ``__iter__`` is shared: it is the tracing
    hook — one ambient check when tracing is off, a metering wrapper
    (rows, ``next()`` calls, loops, inclusive time) when a tracer is
    active.
    """

    def __iter__(self) -> Iterator[Row]:
        tracer = current_tracer()
        if tracer is None:
            return self._rows()
        return tracer.wrap(self, self._rows())

    def _rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """One-line-per-operator plan rendering (for EXPLAIN-style output)."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> Sequence["Operator"]:
        return ()


class SeqScanOp(Operator):
    """Full scan of a table into one slot of a fresh combined row."""

    def __init__(self, table: Table, slot: int, width: int):
        self.table = table
        self.slot = slot
        self.width = width

    def _rows(self) -> Iterator[Row]:
        slot, width = self.slot, self.width
        token = current_token()
        for _slot_number, stored in self.table.scan():
            if token is not None:
                token.tick()
            row: Row = [None] * width
            row[slot] = stored
            yield row

    def describe(self) -> str:
        return f"SeqScan({self.table.name})"


class IndexLookupOp(Operator):
    """Point lookup through a secondary index.

    ``key`` is either a constant tuple or a zero-argument callable
    producing the key tuple — the latter defers evaluation to execution
    time, which is what prepared statements with ``?`` parameters need.
    """

    def __init__(
        self,
        table: Table,
        index: Index,
        key: Any,
        slot: int,
        width: int,
    ):
        self.table = table
        self.index = index
        self.key = key if callable(key) else tuple(key)
        self.slot = slot
        self.width = width

    def _rows(self) -> Iterator[Row]:
        key = self.key() if callable(self.key) else self.key
        for slot_number in self.index.lookup(key):
            row: Row = [None] * self.width
            row[self.slot] = self.table.row_at(slot_number)
            yield row

    def describe(self) -> str:
        return f"IndexLookup({self.table.name}.{self.index.name})"


class IndexRangeScanOp(Operator):
    """Range scan over an ordered index's leading column.

    ``low`` / ``high`` are constant values or zero-argument callables
    (evaluated per execution for prepared statements); either bound may
    be ``None`` (open).
    """

    def __init__(
        self,
        table: Table,
        index: Index,
        low: Any,
        high: Any,
        low_inclusive: bool,
        high_inclusive: bool,
        slot: int,
        width: int,
    ):
        self.table = table
        self.index = index
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.slot = slot
        self.width = width

    def _rows(self) -> Iterator[Row]:
        low = self.low() if callable(self.low) else self.low
        high = self.high() if callable(self.high) else self.high
        if (self.low is not None and low is None) or (
            self.high is not None and high is None
        ):
            return  # a bound evaluated to NULL: the predicate is UNKNOWN
        token = current_token()
        for slot_number in self.index.range_scan(
            (low,) if low is not None else None,
            (high,) if high is not None else None,
            self.low_inclusive,
            self.high_inclusive,
        ):
            if token is not None:
                token.tick()
            row: Row = [None] * self.width
            row[self.slot] = self.table.row_at(slot_number)
            yield row

    def describe(self) -> str:
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return (
            f"IndexRangeScan({self.table.name}.{self.index.name} "
            f"{left}low..high{right})"
        )


class SingleRowOp(Operator):
    """Produces exactly one empty combined row (constant-only queries)."""

    def __init__(self, width: int):
        self.width = width

    def _rows(self) -> Iterator[Row]:
        yield [None] * self.width

    def describe(self) -> str:
        return "SingleRow"


class FilterOp(Operator):
    """Keeps rows whose predicate evaluates to SQL TRUE."""

    def __init__(self, child: Operator, predicate: CompiledExpression):
        self.child = child
        self.predicate = predicate

    def _rows(self) -> Iterator[Row]:
        predicate = self.predicate.fn
        for row in self.child:
            if predicate(row) is True:
                yield row

    def describe(self) -> str:
        return "Filter"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class ProjectOp(Operator):
    """Terminal projection: evaluates the select list into output tuples."""

    def __init__(
        self, child: Operator, expressions: Sequence[CompiledExpression]
    ):
        self.child = child
        self.expressions = list(expressions)

    def _rows(self) -> Iterator[Row]:
        fns = [e.fn for e in self.expressions]
        for row in self.child:
            yield [fn(row) for fn in fns]

    def describe(self) -> str:
        return f"Project({len(self.expressions)} exprs)"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class LimitOp(Operator):
    """LIMIT / OFFSET; pulls no more than needed from its child."""

    def __init__(
        self,
        child: Operator,
        limit: Optional[int],
        offset: Optional[int] = None,
    ):
        self.child = child
        self.limit = limit
        self.offset = offset or 0

    def _rows(self) -> Iterator[Row]:
        if self.limit is not None and self.limit <= 0:
            return
        produced = 0
        skipped = 0
        for row in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            produced += 1
            yield row
            if self.limit is not None and produced >= self.limit:
                return  # stop before pulling a row we would discard

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


def _hashable(value: Any) -> Any:
    """Make a projected value usable as a dict key."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


class DistinctOp(Operator):
    """Duplicate elimination over fully-projected rows."""

    def __init__(self, child: Operator):
        self.child = child

    def _rows(self) -> Iterator[Row]:
        seen = set()
        for row in self.child:
            key = tuple(_hashable(v) for v in row)
            if key not in seen:
                seen.add(key)
                yield row

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class DerivedTableOp(Operator):
    """Streams a planned subquery's output rows into one slot.

    The subquery's projected rows (value lists) become stored-tuple-like
    tuples, so the outer plan treats a derived table exactly like a base
    relation.
    """

    def __init__(self, subplan: Operator, slot: int, width: int, label: str):
        self.subplan = subplan
        self.slot = slot
        self.width = width
        self.label = label

    def _rows(self) -> Iterator[Row]:
        slot, width = self.slot, self.width
        token = current_token()
        for values in self.subplan:
            if token is not None:
                token.tick()
            row: Row = [None] * width
            row[slot] = tuple(values)
            yield row

    def describe(self) -> str:
        return f"DerivedTable({self.label})"

    def children(self) -> Sequence["Operator"]:
        return (self.subplan,)


class CallbackScanOp(Operator):
    """Adapter turning any row-producing callable into an operator."""

    def __init__(self, factory: Callable[[], Iterator[Row]], label: str = "Callback"):
        self.factory = factory
        self.label = label

    def _rows(self) -> Iterator[Row]:
        return self.factory()

    def describe(self) -> str:
        return self.label
