"""Grouping / aggregation and sorting operators."""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..expr.compile import CompiledExpression
from ..expr.functions import make_accumulator
from .operators import Operator, Row, _hashable


class AggregateSpec:
    """One aggregate call: function name, argument, DISTINCT flag.

    ``argument is None`` encodes ``COUNT(*)``.
    """

    __slots__ = ("name", "argument", "distinct")

    def __init__(
        self,
        name: str,
        argument: Optional[CompiledExpression],
        distinct: bool = False,
    ):
        self.name = name.upper()
        self.argument = argument
        self.distinct = distinct


class AggregateOp(Operator):
    """Hash aggregation.

    Consumes combined rows; produces rows in a **new single-slot layout**:
    ``row[0] = (group_value_0, ..., agg_value_0, ...)``. The planner
    projects the final select list against a synthetic schema over this
    tuple.

    With no GROUP BY, exactly one output row is produced even over empty
    input (SQL scalar-aggregate semantics).
    """

    def __init__(
        self,
        child: Operator,
        group_expressions: Sequence[CompiledExpression],
        aggregates: Sequence[AggregateSpec],
    ):
        self.child = child
        self.group_expressions = list(group_expressions)
        self.aggregates = list(aggregates)

    def _rows(self) -> Iterator[Row]:
        group_fns = [g.fn for g in self.group_expressions]
        groups: dict = {}
        order: List[Any] = []
        for row in self.child:
            raw_key = tuple(fn(row) for fn in group_fns)
            key = tuple(_hashable(part) for part in raw_key)
            state = groups.get(key)
            if state is None:
                state = (
                    raw_key,
                    [
                        make_accumulator(
                            spec.name,
                            spec.distinct,
                            count_rows=spec.argument is None,
                        )
                        for spec in self.aggregates
                    ],
                )
                groups[key] = state
                order.append(key)
            _raw, accumulators = state
            for spec, accumulator in zip(self.aggregates, accumulators):
                if spec.argument is None:
                    accumulator.add(1)
                else:
                    accumulator.add(spec.argument.fn(row))
        if not groups and not self.group_expressions:
            empties = [
                make_accumulator(
                    spec.name, spec.distinct, count_rows=spec.argument is None
                )
                for spec in self.aggregates
            ]
            yield [tuple(a.result() for a in empties)]
            return
        for key in order:
            raw_key, accumulators = groups[key]
            yield [tuple(raw_key) + tuple(a.result() for a in accumulators)]

    def describe(self) -> str:
        return (
            f"Aggregate(groups={len(self.group_expressions)}, "
            f"aggs={len(self.aggregates)})"
        )

    def children(self) -> Sequence[Operator]:
        return (self.child,)


class _NullAwareKey:
    """Ordering wrapper: NULLs sort first ascending, last descending."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_NullAwareKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullAwareKey) and self.value == other.value


class SortOp(Operator):
    """ORDER BY: materializes its input and sorts by multiple keys."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[Tuple[CompiledExpression, bool]],
    ):
        self.child = child
        self.keys = list(keys)  # (expression, ascending)

    def _rows(self) -> Iterator[Row]:
        rows = list(self.child)
        # stable multi-key sort: apply keys right-to-left
        for expression, ascending in reversed(self.keys):
            fn = expression.fn
            rows.sort(key=lambda row: _NullAwareKey(fn(row)), reverse=not ascending)
        return iter(rows)

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def children(self) -> Sequence[Operator]:
        return (self.child,)
