"""Join operators.

Combined rows are slot-disjoint between the two sides of a join, so
merging is a per-slot coalesce. :class:`ProbeJoinOp` is the engine's
index-nested-loop shape: the inner side is a *factory* re-instantiated
per outer row — this is also how a relational outer feeds start vertexes
into a PathScan (Figure 6 of the paper).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..budget import current_token
from ..expr.compile import CompiledExpression
from .operators import Operator, Row


def merge_rows(left: Row, right: Row) -> Row:
    """Coalesce two slot-disjoint combined rows into a fresh row."""
    return [a if a is not None else b for a, b in zip(left, right)]


class NestedLoopJoinOp(Operator):
    """Plain nested-loop join with an optional residual predicate.

    The right side is materialized once (it is re-iterated per outer
    row); with ``left_outer`` unmatched outer rows survive with the inner
    slots left as NULL.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Optional[CompiledExpression] = None,
        left_outer: bool = False,
    ):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.left_outer = left_outer

    def _rows(self) -> Iterator[Row]:
        inner_rows = list(self.right)
        predicate = self.predicate.fn if self.predicate is not None else None
        token = current_token()
        for outer in self.left:
            matched = False
            for inner in inner_rows:
                if token is not None:
                    token.tick()  # joins multiply cardinality
                merged = merge_rows(outer, inner)
                if predicate is None or predicate(merged) is True:
                    matched = True
                    yield merged
            if self.left_outer and not matched:
                yield list(outer)

    def describe(self) -> str:
        kind = "LeftOuterNestedLoopJoin" if self.left_outer else "NestedLoopJoin"
        return kind

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class HashJoinOp(Operator):
    """Equi-join: build a hash table on the right side, probe with left.

    Key expressions evaluate against the *combined* row of their own
    side. NULL keys never match (SQL semantics). A residual predicate
    filters merged rows.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[CompiledExpression],
        right_keys: Sequence[CompiledExpression],
        residual: Optional[CompiledExpression] = None,
        left_outer: bool = False,
    ):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.left_outer = left_outer

    def _rows(self) -> Iterator[Row]:
        buckets: dict = {}
        right_fns = [k.fn for k in self.right_keys]
        token = current_token()
        for inner in self.right:
            key = tuple(fn(inner) for fn in right_fns)
            if any(part is None for part in key):
                continue
            buckets.setdefault(key, []).append(inner)
        left_fns = [k.fn for k in self.left_keys]
        residual = self.residual.fn if self.residual is not None else None
        for outer in self.left:
            key = tuple(fn(outer) for fn in left_fns)
            matched = False
            if not any(part is None for part in key):
                for inner in buckets.get(key, ()):
                    if token is not None:
                        token.tick()
                    merged = merge_rows(outer, inner)
                    if residual is None or residual(merged) is True:
                        matched = True
                        yield merged
            if self.left_outer and not matched:
                yield list(outer)

    def describe(self) -> str:
        return f"HashJoin({len(self.left_keys)} keys)"

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)


class ProbeJoinOp(Operator):
    """Correlated join: re-instantiate the inner side per outer row.

    ``inner_factory(outer_row)`` returns an iterator of inner combined
    rows already merged-ready (slot-disjoint from the outer). This is
    the shape used for index-nested-loop joins and for probing
    PathScan with start vertexes produced by relational operators
    (Section 5.1.2 / Figure 6 of the paper).
    """

    def __init__(
        self,
        outer: Operator,
        inner_factory: Callable[[Row], Iterator[Row]],
        label: str = "ProbeJoin",
        residual: Optional[CompiledExpression] = None,
    ):
        self.outer = outer
        self.inner_factory = inner_factory
        self.label = label
        self.residual = residual

    def _rows(self) -> Iterator[Row]:
        residual = self.residual.fn if self.residual is not None else None
        token = current_token()
        for outer in self.outer:
            for inner in self.inner_factory(outer):
                if token is not None:
                    token.tick()
                merged = merge_rows(outer, inner)
                if residual is None or residual(merged) is True:
                    yield merged

    def describe(self) -> str:
        return self.label

    def children(self) -> Sequence[Operator]:
        return (self.outer,)
