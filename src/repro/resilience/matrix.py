"""The crash-point matrix: every storage fault site × kind × seed.

The acknowledged-commit guarantee is only as strong as its weakest
crash site, so this harness enumerates all of them. For every named
storage fault site, every fault kind valid there, and every seed in
the schedule, one **cell** runs:

1. start a :class:`~repro.resilience.supervisor.Supervisor` over a
   fresh directory; create a relational + graph schema (kv table,
   nodes, edges, a graph view — so the digests cover topology too);
2. arm exactly one fault (seeded position for command-log sites, the
   mid-workload checkpoint for snapshot/checkpoint sites) and run a
   seeded workload of writes with a checkpoint in the middle,
   recording every statement that was **acknowledged** (returned
   without raising);
3. classify what happened — ``crashed`` (the simulated process died),
   ``degraded`` (the engine refused the write and went read-only; the
   cell then *proves the degraded contract*: reads still flow, the
   next write raises ``DegradedError``), or ``absorbed`` (the engine
   rode through, e.g. a failed checkpoint that will simply be retried);
4. "repair the disk" (uninstall the injector), restart through a fresh
   supervisor, and verify with the replication digests that the
   recovered state equals the acknowledged prefix — the in-flight
   statement is allowed to appear (written and flushed but not yet
   acknowledged is *more* durable than promised, never less), but no
   acknowledged statement may be missing and nothing else may differ;
5. prove the recovered node accepts new writes.

A cell fails on any unhandled exception, a digest mismatch, a fault
that never fired (the site was not reached — a harness bug, not an
engine pass), or a degraded node that would not serve reads. The CLI
prints every failing ``(site, kind, seed)`` with a one-line repro
command and exits non-zero::

    PYTHONPATH=src python -m repro.resilience.matrix --seeds 0,1,2
    PYTHONPATH=src python -m repro.resilience.matrix --site commandlog.fsync --seeds 7
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from ..errors import DegradedError, DurabilityError
from ..replication.digest import database_digest
from ..replication.fault_injection import SimulatedCrash
from .faults import (
    SITE_PROBE_FSYNC,
    SITE_PROBE_WRITE,
    STORAGE_SITES,
    FaultyIO,
    injected,
)
from .health import DEGRADED
from .supervisor import Supervisor

#: Sites the matrix covers: the data path. Probe sites are exercised by
#: the unit tests; a probe fault endangers no data.
MATRIX_SITES = [
    site
    for site in STORAGE_SITES
    if site not in (SITE_PROBE_WRITE, SITE_PROBE_FSYNC)
]

_DDL = [
    "CREATE TABLE kv (k INTEGER PRIMARY KEY, v VARCHAR)",
    "CREATE TABLE nodes (nId INTEGER PRIMARY KEY, label VARCHAR)",
    "CREATE TABLE edges (eId INTEGER PRIMARY KEY, src INTEGER, "
    "dst INTEGER, w INTEGER)",
    "CREATE DIRECTED GRAPH VIEW MatrixGraph "
    "VERTEXES(ID = nId, label = label) FROM nodes "
    "EDGES(ID = eId, FROM = src, TO = dst, weight = w) FROM edges",
]


def _workload(seed: int, steps: int = 20) -> List[str]:
    """The seeded write workload: kv churn plus graph growth (nodes
    first, then edges between existing nodes, so integrity holds)."""
    rng = random.Random(seed)
    statements: List[str] = []
    node_ids: List[int] = []
    for i in range(steps):
        statements.append(f"INSERT INTO kv VALUES ({i}, 'v{seed}.{i}')")
        statements.append(f"INSERT INTO nodes VALUES ({i}, 'n{i}')")
        node_ids.append(i)
        if len(node_ids) >= 2:
            src = rng.choice(node_ids[:-1])
            statements.append(
                f"INSERT INTO edges VALUES ({i}, {src}, {i}, "
                f"{rng.randint(1, 9)})"
            )
    return statements


def _reference_digest(statements: List[str]) -> str:
    from ..core.database import Database

    db = Database()
    for sql in _DDL:
        db.execute(sql)
    for sql in statements:
        db.execute(sql)
    return database_digest(db)["combined"]


def run_cell(
    site: str,
    kind: str,
    seed: int,
    data_dir: Optional[str] = None,
    steps: int = 20,
) -> Dict[str, Any]:
    """Run one (site, kind, seed) cell; returns its report dict with
    ``"passed"`` and, on failure, ``"failure"`` explaining why."""
    cell: Dict[str, Any] = {
        "site": site,
        "kind": kind,
        "seed": seed,
        "passed": False,
        "outcome": None,
        "failure": None,
    }
    own_dir = data_dir is None
    directory = data_dir or tempfile.mkdtemp(prefix="repro-matrix-")
    try:
        _run_cell_inner(cell, site, kind, seed, directory, steps)
    except Exception as error:  # anything uncaught is exactly the bug
        cell["failure"] = (
            f"unhandled {type(error).__name__}: {error}"
        )
    finally:
        if own_dir:
            shutil.rmtree(directory, ignore_errors=True)
    return cell


def _run_cell_inner(
    cell: Dict[str, Any],
    site: str,
    kind: str,
    seed: int,
    directory: str,
    steps: int,
) -> None:
    rng = random.Random(seed * 7919 + 17)
    supervisor = Supervisor(directory)
    db = supervisor.start()
    for sql in _DDL:
        db.execute(sql)
    # DDL is acknowledged before the fault is armed; the fault hits the
    # workload, never the schema.
    acked: List[str] = list(_DDL[:0])  # workload statements only
    statements = _workload(seed, steps)
    checkpoint_at = len(statements) // 2
    io = FaultyIO(seed=seed)
    persistent = kind in ("eio", "enospc")
    if site.startswith("commandlog.") and site != "commandlog.truncate":
        # Hit a seeded write somewhere in the first half so the
        # checkpoint (and the second half) can also be in play.
        io.inject(site, kind, after=rng.randint(1, max(1, checkpoint_at)),
                  persistent=persistent)
    else:
        # snapshot.* / checkpoint.* / commandlog.truncate are only
        # reached through the checkpoint call.
        io.inject(site, kind, after=1, persistent=persistent)
    inflight: Optional[str] = None
    with injected(io):
        try:
            for index, sql in enumerate(statements):
                if index == checkpoint_at:
                    supervisor.checkpoint()
                inflight = sql
                db.execute(sql)
                acked.append(sql)
                inflight = None
            cell["outcome"] = "absorbed"
        except SimulatedCrash:
            cell["outcome"] = "crashed"
        except DurabilityError:
            cell["outcome"] = "degraded"
            failure = _verify_degraded(db)
            if failure is not None:
                cell["failure"] = failure
                return
    cell["fault_fired"] = list(io.injected_log)
    if not io.injected_log:
        cell["failure"] = (
            f"fault never fired (site {site} not reached by the workload)"
        )
        return
    if cell["outcome"] == "absorbed" and db.health.state != "healthy":
        cell["failure"] = (
            f"no error surfaced but health is {db.health.state}"
        )
        return
    # --- the disk is repaired; the process restarts -------------------
    supervisor.stop(final_sync=False)
    recovered_sup = Supervisor(directory)
    recovered = recovered_sup.start()
    recovered_digest = database_digest(recovered)["combined"]
    allowed = {_reference_digest(acked): "acked prefix"}
    if inflight is not None:
        allowed[_reference_digest(acked + [inflight])] = (
            "acked prefix + in-flight statement"
        )
    if recovered_digest not in allowed:
        cell["failure"] = (
            f"digest mismatch after recovery: {recovered_digest} not in "
            f"{allowed} — an acknowledged commit was lost or state "
            "diverged"
        )
        return
    cell["recovered_as"] = allowed[recovered_digest]
    # the recovered node must be writable again
    recovered.execute("INSERT INTO kv VALUES (9991, 'post-recovery')")
    count = recovered.execute("SELECT COUNT(*) FROM kv").rows[0][0]
    if count < 1:
        cell["failure"] = "post-recovery write did not land"
        return
    recovered_sup.stop()
    cell["passed"] = True


def _verify_degraded(db) -> Optional[str]:
    """The degraded contract: reads flow, writes are refused with
    DegradedError, health reads DEGRADED."""
    if db.health.state != DEGRADED:
        return f"DurabilityError raised but health is {db.health.state}"
    try:
        db.execute("SELECT COUNT(*) FROM kv")
    except Exception as error:
        return f"degraded node refused a read: {error}"
    try:
        db.execute("INSERT INTO kv VALUES (9990, 'should-fail')")
    except DegradedError:
        pass
    except Exception as error:
        return (
            f"degraded write rejected with {type(error).__name__}, "
            "expected DegradedError"
        )
    else:
        return "degraded node accepted a write"
    return None


def run_matrix(
    seeds: List[int],
    sites: Optional[List[str]] = None,
    steps: int = 20,
) -> Dict[str, Any]:
    """Run the full matrix; returns the report document."""
    chosen = sites or MATRIX_SITES
    cells: List[Dict[str, Any]] = []
    started = time.time()
    for site in chosen:
        _description, kinds = STORAGE_SITES[site]
        for kind in kinds:
            for seed in seeds:
                cells.append(run_cell(site, kind, seed, steps=steps))
    failures = [cell for cell in cells if not cell["passed"]]
    return {
        "seeds": seeds,
        "sites": chosen,
        "steps": steps,
        "cells": len(cells),
        "passed": len(cells) - len(failures),
        "failed": len(failures),
        "duration_seconds": round(time.time() - started, 3),
        "outcomes": _tally(cells),
        "failures": failures,
        "results": cells,
    }


def _tally(cells: List[Dict[str, Any]]) -> Dict[str, int]:
    tally: Dict[str, int] = {}
    for cell in cells:
        key = cell["outcome"] or "error"
        tally[key] = tally.get(key, 0) + 1
    return tally


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.matrix",
        description="Run the storage crash-point matrix.",
    )
    parser.add_argument(
        "--seeds", default="0,1,2",
        help="comma-separated seeds (default: 0,1,2)",
    )
    parser.add_argument(
        "--site", action="append", default=None,
        help="restrict to one site (repeatable; default: all data-path "
        f"sites: {', '.join(MATRIX_SITES)})",
    )
    parser.add_argument(
        "--steps", type=int, default=20,
        help="workload length per cell (default: 20)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here",
    )
    options = parser.parse_args(argv)
    seeds = [int(part) for part in options.seeds.split(",") if part.strip()]
    report = run_matrix(seeds, sites=options.site, steps=options.steps)
    if options.out:
        with open(options.out, "w") as handle:
            json.dump(report, handle, indent=2)
    print(
        f"crash-point matrix: {report['passed']}/{report['cells']} cells "
        f"passed in {report['duration_seconds']}s "
        f"(outcomes: {report['outcomes']})"
    )
    if report["failed"]:
        print(f"\n{report['failed']} FAILING cell(s):", file=sys.stderr)
        for cell in report["failures"]:
            print(
                f"  site={cell['site']} kind={cell['kind']} "
                f"seed={cell['seed']}: {cell['failure']}\n"
                "    repro: PYTHONPATH=src python -m repro.resilience.matrix "
                f"--site {cell['site']} --seeds {cell['seed']}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
