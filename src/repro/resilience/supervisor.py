"""The supervisor: restart recovery, checkpoints, probes, self-heal.

A :class:`Supervisor` owns one database's *process lifecycle* the way
the replication manager owns a cluster's membership. It is the piece
that turns the durability primitives (command log + snapshots) and the
health state machine into an operable node:

* **Recovery on start.** ``start()`` sweeps stale ``*.tmp`` snapshot
  temp files (leftovers of a crash mid-snapshot), restores the
  snapshot if one exists, and replays the command log *from the
  snapshot's embedded replication position* — the detail that makes a
  crash between "snapshot renamed" and "log truncated" safe instead of
  a double-apply. The engine is RECOVERING throughout (write gate
  closed) and HEALTHY only once a fresh command log is attached.
* **Checkpoints.** ``checkpoint()`` writes an atomic snapshot stamped
  with the log position it covers, then truncates the log. A failed
  checkpoint is *not* a durability failure — the log is intact, so
  nothing acknowledged is at risk; it is counted and retried later.
* **Health probes.** ``probe()`` exercises the data directory (write +
  fsync + unlink of a probe file). Consecutive successes while
  DEGRADED trigger self-heal.
* **Self-heal.** ``try_heal()`` — gated by a :class:`CircuitBreaker`
  so a node that keeps failing to heal stops thrashing its disk —
  moves DEGRADED → RECOVERING, snapshots the intact in-memory state to
  the recovered disk, attaches a fresh command log, and returns to
  HEALTHY. In-memory effects of the never-acknowledged failed write
  become durable in that snapshot; the contract (*acknowledged ⇒
  durable*) only requires acknowledged writes to survive, and making
  an unacknowledged one durable does not violate it.
* **Liveness / readiness.** ``liveness()`` is "the process is worth
  keeping" (everything but FAILED); ``readiness()`` splits reads from
  writes, because a DEGRADED node is exactly a node that is ready for
  reads and not for writes.

The server exposes all of this over the wire as the ``HEALTH`` message
and the shell as ``\\health``.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import Any, Callable, Dict, List, Optional

from ..core.command_log import CommandLog, enable_command_log
from ..core.database import Database
from ..core.snapshot import save_snapshot
from ..errors import RecoveryError
from ..observability import events as events_module
from ..observability.metrics import recording_registry
from .faults import (
    SITE_CHECKPOINT_TRUNCATE,
    SITE_PROBE_FSYNC,
    SITE_PROBE_WRITE,
    FaultyIO,
    check_site,
)
from .health import DEGRADED, FAILED, HEALTHY, RECOVERING
from .retry import CircuitBreaker, RetryPolicy

PROBE_FILENAME = "health.probe"


class Supervisor:
    """Process-lifecycle manager for one durable database."""

    def __init__(
        self,
        data_dir: str,
        snapshot_name: str = "snapshot.json",
        log_name: str = "commands.log",
        sync: str = "commit",
        epoch: int = 1,
        probe_interval: float = 5.0,
        heal_after_probes: int = 2,
        heal_breaker: Optional[CircuitBreaker] = None,
        fsync_retry: Optional[RetryPolicy] = None,
        io: Optional[FaultyIO] = None,
        scheduler=None,
    ):
        self.data_dir = pathlib.Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.data_dir / snapshot_name
        self.log_path = self.data_dir / log_name
        self.sync = sync
        self.epoch = epoch
        self.probe_interval = probe_interval
        self.heal_after_probes = max(1, heal_after_probes)
        self.heal_breaker = heal_breaker or CircuitBreaker(
            failure_threshold=3, cooldown=30.0
        )
        self._fsync_retry = fsync_retry
        self._io = io
        #: Optional :class:`~repro.server.scheduler.SingleWriterScheduler`;
        #: when set, self-heal runs as a queued write so it serializes
        #: with client statements instead of racing them.
        self.scheduler = scheduler
        self.database: Optional[Database] = None
        self.log: Optional[CommandLog] = None
        #: Stale temp files removed by the startup sweep.
        self.removed_temp_files: List[str] = []
        self.checkpoints_taken = 0
        self.checkpoints_failed = 0
        self.probes_run = 0
        self.probes_failed = 0
        self.consecutive_probe_ok = 0
        self.heals_attempted = 0
        self.heals_succeeded = 0
        self._probe_thread: Optional[threading.Thread] = None
        self._probe_stop = threading.Event()

    # ------------------------------------------------------------------
    # startup / recovery
    # ------------------------------------------------------------------

    def start(self) -> Database:
        """Recover (or bootstrap) the database and attach its log.

        Raises :class:`~repro.errors.RecoveryError` (after moving to
        FAILED) when the durable state is corrupt beyond the replay
        policies — that needs an operator, not a retry loop.
        """
        self._sweep_temp_files()
        database = Database()
        self.database = database
        database.health.transition(RECOVERING, "supervisor startup recovery")
        try:
            recovered = Database.recover(
                snapshot=str(self.snapshot_path)
                if self.snapshot_path.exists()
                else None,
                command_log=str(self.log_path)
                if self.log_path.exists()
                else None,
            )
        except (RecoveryError, OSError) as error:
            database.health.transition(
                FAILED, "startup recovery failed", error=error
            )
            raise
        # Adopt the recovered state wholesale; the health monitor (with
        # its RECOVERING state and history) stays ours.
        health = database.health
        recovered.health = health
        self.database = recovered
        position = recovered.snapshot_replication or {}
        report = recovered.recovery_report
        epoch = int(position.get("epoch", 0) or 0)
        if report is not None and report.last_epoch:
            epoch = max(epoch, report.last_epoch)
        self.epoch = max(self.epoch, epoch)
        self.log = enable_command_log(
            recovered,
            str(self.log_path),
            sync=self.sync,
            epoch=self.epoch,
            io=self._io,
            fsync_retry=self._fsync_retry,
        )
        # Resume the global sequence from the snapshot position: after
        # a checkpoint truncation the file alone under-counts.
        base = int(position.get("sequence", 0) or 0)
        self.log.last_sequence = max(self.log.last_sequence, base)
        self.log.base_sequence = base
        health.transition(HEALTHY, "recovery complete")
        return recovered

    def _sweep_temp_files(self) -> None:
        """Remove stale snapshot temp files left by crashes mid-write.

        Repeated crash-during-snapshot must not leak disk: the staged
        file is garbage by definition (it was never renamed into
        place), so removing it is always safe.
        """
        for stale in sorted(self.data_dir.glob("*.tmp")):
            try:
                stale.unlink()
                self.removed_temp_files.append(stale.name)
            except OSError:
                pass  # a sweep must never block startup

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> bool:
        """Snapshot the database and truncate the log. Returns True on
        success; False when the disk refused (the log is still intact,
        so no acknowledged write is at risk — just try again later)."""
        if self.database is None or self.log is None:
            raise RuntimeError("supervisor is not started")
        try:
            save_snapshot(
                self.database,
                str(self.snapshot_path),
                replication={
                    "epoch": self.epoch,
                    "sequence": self.log.last_sequence,
                },
                io=self._io,
            )
            check_site(SITE_CHECKPOINT_TRUNCATE, io=self._io)
            self.log.truncate()
        except OSError as error:
            self.checkpoints_failed += 1
            registry = recording_registry()
            if registry is not None:
                registry.counter(
                    "repro_checkpoint_failures_total",
                    help="Checkpoints that failed and will be retried.",
                ).inc()
            health = self.database.health
            if health.last_error is None:
                health.last_error = f"{type(error).__name__}: {error}"
            events_module.emit(
                "checkpoint", ok=False, error=f"{type(error).__name__}: {error}"
            )
            return False
        self.checkpoints_taken += 1
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_checkpoints_total", help="Checkpoints completed."
            ).inc()
        events_module.emit(
            "checkpoint", ok=True, sequence=self.log.last_sequence
        )
        return True

    # ------------------------------------------------------------------
    # probes and self-heal
    # ------------------------------------------------------------------

    def probe(self) -> bool:
        """One health probe: can the data directory take a durable
        write right now? Feeds the self-heal trigger."""
        self.probes_run += 1
        probe_path = self.data_dir / PROBE_FILENAME
        try:
            with open(probe_path, "w") as handle:
                check_site(
                    SITE_PROBE_WRITE, handle=handle, data="ok", io=self._io
                )
                handle.write("ok")
                handle.flush()
                check_site(SITE_PROBE_FSYNC, io=self._io)
                os.fsync(handle.fileno())
            probe_path.unlink()
        except OSError:
            self.probes_failed += 1
            self.consecutive_probe_ok = 0
            return False
        self.consecutive_probe_ok += 1
        if (
            self.database is not None
            and self.database.health.state == DEGRADED
            and self.consecutive_probe_ok >= self.heal_after_probes
        ):
            self.try_heal()
        return True

    def try_heal(self) -> bool:
        """Attempt DEGRADED → RECOVERING → HEALTHY, breaker-gated.

        The heal is a checkpoint in disguise: snapshot the intact
        in-memory state to the (apparently recovered) disk, then attach
        a fresh command log over a truncated file. If any step fails
        the breaker records it and the node drops back to DEGRADED.
        """
        if self.database is None:
            return False
        health = self.database.health
        if health.state != DEGRADED:
            return False
        if not self.heal_breaker.allow():
            return False
        self.heals_attempted += 1
        if self.scheduler is not None:
            try:
                return self.scheduler.execute_write(
                    self._heal_locked, session="supervisor"
                )
            except Exception:
                return False
        return self._heal_locked()

    def _heal_locked(self) -> bool:
        health = self.database.health
        if health.state != DEGRADED:  # raced with another healer
            return health.state == HEALTHY
        health.transition(RECOVERING, "self-heal: re-establishing durability")
        try:
            if self.log is not None:
                sequence = self.log.last_sequence
                self.log.detach()
            else:
                sequence = 0
            save_snapshot(
                self.database,
                str(self.snapshot_path),
                replication={"epoch": self.epoch, "sequence": sequence},
                io=self._io,
            )
            self.log = enable_command_log(
                self.database,
                str(self.log_path),
                sync=self.sync,
                epoch=self.epoch,
                io=self._io,
                fsync_retry=self._fsync_retry,
            )
            self.log.last_sequence = max(self.log.last_sequence, sequence)
            self.log.truncate()
        except OSError as error:
            self.heal_breaker.record_failure()
            health.transition(
                DEGRADED, "self-heal failed; disk still refusing writes",
                error=error,
            )
            events_module.emit(
                "heal", ok=False, error=f"{type(error).__name__}: {error}"
            )
            return False
        self.heal_breaker.record_success()
        self.heals_succeeded += 1
        health.transition(HEALTHY, "self-heal complete")
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_self_heals_total",
                help="Successful DEGRADED -> HEALTHY self-heals.",
            ).inc()
        events_module.emit("heal", ok=True)
        return True

    # ------------------------------------------------------------------
    # background probing
    # ------------------------------------------------------------------

    def start_probes(self, interval: Optional[float] = None) -> None:
        """Run :meth:`probe` every ``interval`` seconds on a daemon
        thread until :meth:`stop`."""
        if self._probe_thread is not None:
            return
        period = self.probe_interval if interval is None else interval
        self._probe_stop.clear()

        def loop() -> None:
            while not self._probe_stop.wait(period):
                try:
                    self.probe()
                except Exception:
                    self.probes_failed += 1

        self._probe_thread = threading.Thread(
            target=loop, name="repro-supervisor-probe", daemon=True
        )
        self._probe_thread.start()

    def stop(self, final_sync: bool = True) -> None:
        """Stop probing and detach the log (fsync'ing it first when the
        disk still allows)."""
        if self._probe_thread is not None:
            self._probe_stop.set()
            self._probe_thread.join(timeout=5.0)
            self._probe_thread = None
        if self.log is not None:
            if final_sync:
                try:
                    self.log.sync_now()
                except OSError:
                    pass
            self.log.detach()
            self.log = None

    # ------------------------------------------------------------------
    # liveness / readiness / status
    # ------------------------------------------------------------------

    def liveness(self) -> bool:
        """Is this process worth keeping? False only for FAILED."""
        if self.database is None:
            return True  # not started yet: still booting, not dead
        return self.database.health.state != FAILED

    def readiness(self) -> Dict[str, bool]:
        """Reads and writes answered separately — a DEGRADED node is
        ready for reads and not for writes, by design."""
        if self.database is None:
            return {"reads": False, "writes": False}
        health = self.database.health
        return {
            "reads": health.allows_reads(),
            "writes": health.allows_writes(),
        }

    def status(self) -> Dict[str, Any]:
        health = (
            self.database.health.status()
            if self.database is not None
            else {"state": "not_started"}
        )
        return {
            "health": health,
            "data_dir": str(self.data_dir),
            "epoch": self.epoch,
            "sequence": self.log.last_sequence if self.log is not None else None,
            "sync": self.sync,
            "liveness": self.liveness(),
            "readiness": self.readiness(),
            "checkpoints": {
                "taken": self.checkpoints_taken,
                "failed": self.checkpoints_failed,
            },
            "probes": {
                "run": self.probes_run,
                "failed": self.probes_failed,
                "consecutive_ok": self.consecutive_probe_ok,
            },
            "heal": {
                "attempted": self.heals_attempted,
                "succeeded": self.heals_succeeded,
                "breaker": self.heal_breaker.status(),
            },
            "fsync_retries": self.log.fsync_retries if self.log else 0,
            "last_durable_error": (
                self.log.last_durable_error if self.log is not None else None
            ),
            "removed_temp_files": list(self.removed_temp_files),
        }

    def __repr__(self) -> str:
        state = self.database.health.state if self.database else "not_started"
        return f"Supervisor({self.data_dir}, {state}, e{self.epoch})"


def run_supervised(
    data_dir: str,
    sync: str = "commit",
    setup: Optional[Callable[[Database], None]] = None,
) -> Supervisor:
    """Convenience: start a supervisor over ``data_dir`` and return it
    (``supervisor.database`` is the recovered engine)."""
    supervisor = Supervisor(data_dir, sync=sync)
    database = supervisor.start()
    if setup is not None:
        setup(database)
    return supervisor
