"""Resilience: storage fault injection, degraded modes, self-healing.

Four pieces, layered so the core engine can import the light ones:

* :mod:`~repro.resilience.faults` — seeded filesystem fault injector
  (:class:`FaultyIO`) consulted by the storage layer at named sites.
* :mod:`~repro.resilience.retry` — the shared :class:`RetryPolicy`
  (jittered exponential backoff) and :class:`CircuitBreaker`.
* :mod:`~repro.resilience.health` — the HEALTHY → DEGRADED →
  RECOVERING → FAILED state machine every :class:`Database` carries.
* :mod:`~repro.resilience.supervisor` — process-lifecycle manager:
  recovery on restart, checkpoints, health probes, self-heal. Import it
  as a submodule (``from repro.resilience.supervisor import
  Supervisor``); it depends on the core engine, so it is *not*
  re-exported here — that would make ``core.database`` →
  ``resilience.health`` a circular import.
* :mod:`~repro.resilience.matrix` — the crash-point matrix harness
  (also a submodule, runnable as ``python -m repro.resilience.matrix``).
"""

from .faults import (
    FAULT_KINDS,
    STORAGE_SITES,
    FaultyIO,
    ambient_io,
    check_site,
    injected,
    install,
    register_storage_site,
    uninstall,
)
from .health import (
    DEGRADED,
    FAILED,
    HEALTHY,
    RECOVERING,
    STATES,
    HealthMonitor,
)
from .retry import CircuitBreaker, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "STORAGE_SITES",
    "FaultyIO",
    "ambient_io",
    "check_site",
    "injected",
    "install",
    "register_storage_site",
    "uninstall",
    "HEALTHY",
    "DEGRADED",
    "RECOVERING",
    "FAILED",
    "STATES",
    "HealthMonitor",
    "CircuitBreaker",
    "RetryPolicy",
]
