"""The cluster chaos matrix: whole-cluster faults × seeds, digest-verified.

The storage matrix (:mod:`repro.resilience.matrix`) proves one node's
acknowledged-commit guarantee across every storage crash site. This
harness proves the *cluster-wide* version of the same contract: *no
acknowledged write is ever lost across any sequence of failovers.* For
every fault scenario and every seed, one **cell** runs:

1. start a real 3-node :class:`~repro.replication.node.ClusterNode`
   cluster (TCP replication, TCP client ports, fast failover timings)
   in a fresh directory; create the relational + graph schema through a
   cluster-aware :class:`~repro.client.Client` (seed list, leader
   chasing);
2. run a seeded workload of unique-key writes, and at a seeded step
   inject the scenario's fault mid-workload — ``kill -9`` the primary,
   kill and later restart the primary (rejoin-as-replica path), kill
   and restart a replica, or partition the primary and later heal it
   (deposed-primary fencing path). Every statement is driven to
   **resolution**: retried until it either succeeds (acknowledged) or
   ends in a primary-key conflict (ambiguous — an earlier attempt with
   unknown outcome may or may not have applied);
3. wait for the cluster to converge (a primary exists; every live
   replica has applied up to its head), then resolve each ambiguous
   statement by *reading it back* — present means applied, absent means
   it never happened. This is the storage matrix's "acked prefix ∪
   in-flight" rule generalized: acknowledged writes MUST be present,
   ambiguous ones may go either way, and nothing else may exist;
4. verify with the replication digests that the final primary's state
   equals the resolved reference exactly — and that **every** live
   replica's digest matches the primary's (the cluster converged to one
   history, not three);
5. prove the survivors still take writes.

A cell fails on a lost acknowledged write, any digest divergence, a
statement that cannot be resolved before its deadline (availability
hole), or an unhandled exception. The CLI mirrors the storage matrix::

    PYTHONPATH=src python -m repro.resilience.cluster_matrix --seeds 0,1,2
    PYTHONPATH=src python -m repro.resilience.cluster_matrix \\
        --scenario kill_primary --seeds 7
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import socket
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from ..client import Client
from ..errors import ClientConnectionError, RemoteError
from ..replication.digest import database_digest
from ..replication.node import ClusterNode, PeerSpec
from ..resilience.retry import RetryPolicy

#: scenario name -> one-line description (rendered by --help and docs).
SCENARIOS: Dict[str, str] = {
    "kill_primary": "kill -9 the primary mid-workload; it stays dead",
    "restart_primary": "kill -9 the primary, restart it after a delay; "
    "it must rejoin as a replica of the new primary",
    "kill_replica": "kill -9 one replica, restart it after a delay; it "
    "must catch back up",
    "partition_primary": "partition the primary from its peers, heal "
    "after a delay; the deposed primary must fence and rejoin",
}

_DDL = [
    "CREATE TABLE kv (k INTEGER PRIMARY KEY, v VARCHAR)",
    "CREATE TABLE nodes (nId INTEGER PRIMARY KEY, label VARCHAR)",
    "CREATE TABLE edges (eId INTEGER PRIMARY KEY, src INTEGER, "
    "dst INTEGER, w INTEGER)",
    "CREATE DIRECTED GRAPH VIEW ClusterGraph "
    "VERTEXES(ID = nId, label = label) FROM nodes "
    "EDGES(ID = eId, FROM = src, TO = dst, weight = w) FROM edges",
]

#: Wall-clock bound for resolving one statement across a failover.
_STATEMENT_DEADLINE = 30.0
#: Wall-clock bound for post-workload cluster convergence.
_CONVERGE_DEADLINE = 30.0


def _free_ports(count: int) -> List[int]:
    """``count`` currently-free ports (bind-and-release; the usual
    small race is acceptable for a test harness)."""
    socks = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            socks.append(sock)
        return [sock.getsockname()[1] for sock in socks]
    finally:
        for sock in socks:
            sock.close()


def _workload(seed: int, steps: int) -> List[Dict[str, str]]:
    """The seeded write workload as *resolvable* statements: each one
    carries the probe query that detects (after convergence) whether an
    ambiguous attempt actually applied. Unique keys per statement make
    every write idempotent-detectable: a duplicate attempt can only end
    in a primary-key conflict, never a silent double-apply."""
    rng = random.Random(seed)
    statements: List[Dict[str, str]] = []
    node_ids: List[int] = []
    for i in range(steps):
        statements.append({
            "sql": f"INSERT INTO kv VALUES ({i}, 'v{seed}.{i}')",
            "probe": f"SELECT k FROM kv WHERE k = {i}",
        })
        statements.append({
            "sql": f"INSERT INTO nodes VALUES ({i}, 'n{i}')",
            "probe": f"SELECT nId FROM nodes WHERE nId = {i}",
        })
        node_ids.append(i)
        if len(node_ids) >= 2:
            src = rng.choice(node_ids[:-1])
            statements.append({
                "sql": f"INSERT INTO edges VALUES ({i}, {src}, {i}, "
                f"{rng.randint(1, 9)})",
                "probe": f"SELECT eId FROM edges WHERE eId = {i}",
            })
    return statements


def _reference_digest(applied_sql: List[str]) -> str:
    from ..core.database import Database

    db = Database()
    for sql in _DDL:
        db.execute(sql)
    for sql in applied_sql:
        db.execute(sql)
    return database_digest(db)["combined"]


class _Cluster:
    """One cell's 3-node cluster plus its fault levers."""

    NAMES = ("n1", "n2", "n3")

    def __init__(self, directory: str):
        self.directory = directory
        ports = _free_ports(6)
        self.peers = {
            name: PeerSpec(name, "127.0.0.1", ports[2 * i], ports[2 * i + 1])
            for i, name in enumerate(self.NAMES)
        }
        self.nodes: Dict[str, ClusterNode] = {}
        for name in self.NAMES:
            self.nodes[name] = self._build(name).start()

    def _build(self, name: str) -> ClusterNode:
        return ClusterNode(
            name,
            self.peers,
            data_dir=os.path.join(self.directory, name),
            initial_primary="n1",
            heartbeat_timeout=0.4,
            pump_interval=0.02,
            ack_replicas=1,
            ack_timeout=1.0,
            probe_timeout=0.25,
        )

    @property
    def seeds(self) -> List[str]:
        return [
            f"{spec.host}:{spec.client_port}"
            for spec in self.peers.values()
        ]

    def live(self) -> List[ClusterNode]:
        return [n for n in self.nodes.values() if n is not None]

    def primary(self) -> Optional[ClusterNode]:
        for node in self.live():
            if node.is_primary():
                return node
        return None

    def kill(self, name: str) -> None:
        node = self.nodes.get(name)
        if node is not None:
            node.kill()
            self.nodes[name] = None

    def restart(self, name: str) -> None:
        self.nodes[name] = self._build(name).start()

    def converged(self) -> bool:
        primary = self.primary()
        if primary is None:
            return False
        for node in self.live():
            if node is primary:
                continue
            if node.role != "replica":
                return False  # two primaries: mid-demotion, keep waiting
            replica = node.replica
            if replica is None or replica.quarantined:
                return False
            if replica.lag != 0 or replica.last_primary_tick <= 0:
                return False
        return True

    def wait_converged(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.converged():
                # converged twice in a row, a pump apart — a digest
                # taken here cannot race a ship still in flight
                time.sleep(0.1)
                if self.converged():
                    return True
            time.sleep(0.05)
        return False

    def stop(self) -> None:
        for name, node in self.nodes.items():
            if node is not None:
                node.stop(drain=False, timeout=2.0)
                self.nodes[name] = None


class _FaultPlan:
    """When and what to break (and heal), for one scenario."""

    def __init__(self, scenario: str, fire_at_step: int):
        self.scenario = scenario
        self.fire_at_step = fire_at_step
        self.fired = False
        self.heal_at: Optional[float] = None
        self.healed = False
        self.victim: Optional[str] = None
        self.events: List[str] = []

    def maybe_fire(self, step: int, cluster: _Cluster) -> None:
        if self.fired or step < self.fire_at_step:
            return
        self.fired = True
        now = time.monotonic()
        if self.scenario in ("kill_primary", "restart_primary"):
            primary = cluster.primary()
            self.victim = primary.name if primary else "n1"
            cluster.kill(self.victim)
            self.events.append(f"killed primary {self.victim} at step {step}")
            if self.scenario == "restart_primary":
                self.heal_at = now + 1.5
        elif self.scenario == "kill_replica":
            primary = cluster.primary()
            primary_name = primary.name if primary else "n1"
            self.victim = next(
                name for name in cluster.NAMES if name != primary_name
            )
            cluster.kill(self.victim)
            self.events.append(f"killed replica {self.victim} at step {step}")
            self.heal_at = now + 1.0
        elif self.scenario == "partition_primary":
            primary = cluster.primary()
            self.victim = primary.name if primary else "n1"
            node = cluster.nodes.get(self.victim)
            if node is not None:
                node.set_partitioned(True)
            self.events.append(
                f"partitioned primary {self.victim} at step {step}"
            )
            self.heal_at = now + 2.0

    def maybe_heal(self, cluster: _Cluster) -> None:
        if (
            self.healed
            or self.heal_at is None
            or time.monotonic() < self.heal_at
        ):
            return
        self.healed = True
        if self.scenario in ("restart_primary", "kill_replica"):
            cluster.restart(self.victim)
            self.events.append(f"restarted {self.victim}")
        elif self.scenario == "partition_primary":
            node = cluster.nodes.get(self.victim)
            if node is not None:
                node.set_partitioned(False)
            self.events.append(f"healed partition of {self.victim}")

    def finish(self, cluster: _Cluster) -> None:
        """Force any pending heal so convergence is possible."""
        if self.heal_at is not None and not self.healed:
            self.heal_at = 0.0
            self.maybe_heal(cluster)


def _matrix_client(seeds: List[str]) -> Client:
    return Client(
        seeds=seeds,
        timeout=10.0,
        connect_timeout=1.0,
        retry_policy=RetryPolicy(
            base_delay=0.05, max_delay=0.4, multiplier=2.0, jitter=0.25,
            max_attempts=6,
        ),
    )


def run_cell(
    scenario: str,
    seed: int,
    data_dir: Optional[str] = None,
    steps: int = 12,
) -> Dict[str, Any]:
    """Run one (scenario, seed) cell; returns its report dict with
    ``"passed"`` and, on failure, ``"failure"`` explaining why."""
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; pick from {sorted(SCENARIOS)}"
        )
    cell: Dict[str, Any] = {
        "scenario": scenario,
        "seed": seed,
        "steps": steps,
        "passed": False,
        "failure": None,
        "events": [],
        "acked": 0,
        "ambiguous": 0,
        "final_epoch": None,
    }
    own_dir = data_dir is None
    directory = data_dir or tempfile.mkdtemp(prefix="repro-cluster-matrix-")
    started = time.time()
    cluster: Optional[_Cluster] = None
    client: Optional[Client] = None
    try:
        cluster = _Cluster(directory)
        client = _matrix_client(cluster.seeds)
        _run_cell_inner(cell, cluster, client, scenario, seed, steps)
    except Exception as error:  # anything uncaught is exactly the bug
        cell["failure"] = f"unhandled {type(error).__name__}: {error}"
    finally:
        if client is not None:
            try:
                client.close()
            except Exception:
                pass
        if cluster is not None:
            cluster.stop()
        if own_dir:
            shutil.rmtree(directory, ignore_errors=True)
        cell["duration_seconds"] = round(time.time() - started, 3)
    return cell


def _run_cell_inner(
    cell: Dict[str, Any],
    cluster: _Cluster,
    client: Client,
    scenario: str,
    seed: int,
    steps: int,
) -> None:
    if not cluster.nodes["n1"].wait_for_role("primary", 10.0):
        cell["failure"] = "initial primary never came up"
        return
    for name in ("n2", "n3"):
        if not cluster.nodes[name].wait_caught_up(10.0):
            cell["failure"] = f"replica {name} never attached"
            return
    client.connect()
    for sql in _DDL:
        client.execute(sql)
    statements = _workload(seed, steps)
    rng = random.Random(seed * 7919 + 17)
    # fire somewhere in the middle third: after enough acked writes for
    # the loss check to have teeth, with enough left to stress recovery
    plan = _FaultPlan(
        scenario,
        rng.randint(len(statements) // 3, 2 * len(statements) // 3),
    )
    acked: List[Dict[str, str]] = []
    ambiguous: List[Dict[str, str]] = []
    rejected: List[Dict[str, str]] = []
    for step, statement in enumerate(statements):
        plan.maybe_fire(step, cluster)
        outcome = _resolve_statement(client, statement, plan, cluster)
        if outcome == "acked":
            acked.append(statement)
        elif outcome == "ambiguous":
            ambiguous.append(statement)
        elif outcome == "rejected":
            rejected.append(statement)
        else:
            cell["failure"] = (
                f"statement {step} ({statement['sql']!r}) unresolved "
                f"within {_STATEMENT_DEADLINE}s: {outcome}"
            )
            cell["events"] = plan.events
            return
    plan.finish(cluster)
    cell["events"] = plan.events
    cell["acked"] = len(acked)
    cell["ambiguous"] = len(ambiguous)
    if not plan.fired:
        cell["failure"] = "fault never fired (harness bug)"
        return
    # --- convergence --------------------------------------------------
    if not cluster.wait_converged(_CONVERGE_DEADLINE):
        cell["failure"] = (
            f"cluster did not converge within {_CONVERGE_DEADLINE}s "
            f"(roles: { {n.name: n.role for n in cluster.live()} })"
        )
        return
    primary = cluster.primary()
    cell["final_epoch"] = primary.epoch
    # --- resolve the ambiguous writes by reading them back ------------
    applied_sql: List[str] = []
    ambiguous_applied = 0
    ambiguous_set = {id(s) for s in ambiguous}
    for statement in statements:
        if id(statement) in ambiguous_set:
            present = bool(client.execute(statement["probe"]).rows)
            if present:
                applied_sql.append(statement["sql"])
                ambiguous_applied += 1
        else:
            applied_sql.append(statement["sql"])
    cell["ambiguous_applied"] = ambiguous_applied
    # --- the digest verdict -------------------------------------------
    reference = _reference_digest(applied_sql)
    primary_digest = database_digest(primary.db)["combined"]
    if primary_digest != reference:
        cell["failure"] = (
            f"primary digest {primary_digest} != reference {reference} — "
            "an acknowledged write was lost or a phantom write appeared"
        )
        return
    for node in cluster.live():
        if node is primary:
            continue
        replica_digest = database_digest(node.db)["combined"]
        if replica_digest != primary_digest:
            cell["failure"] = (
                f"replica {node.name} digest {replica_digest} diverged "
                f"from primary {primary_digest} after convergence"
            )
            return
    # --- the survivors still take writes ------------------------------
    probe = {
        "sql": "INSERT INTO kv VALUES (999991, 'post-fault')",
        "probe": "SELECT k FROM kv WHERE k = 999991",
    }
    if _resolve_statement(client, probe, plan, cluster) not in (
        "acked", "ambiguous"
    ):
        cell["failure"] = "post-fault write did not land"
        return
    if not client.execute(probe["probe"]).rows:
        cell["failure"] = "post-fault write not readable back"
        return
    cell["passed"] = True


def _resolve_statement(
    client: Client,
    statement: Dict[str, str],
    plan: _FaultPlan,
    cluster: _Cluster,
) -> str:
    """Drive one write to resolution: ``"acked"`` (a clean server
    acknowledgement), ``"ambiguous"`` (some attempt's outcome is
    unknown and a later attempt hit its primary-key shadow), or the
    last error (deadline exceeded — an availability failure).

    The retry loop is the *client's documented contract* acted out:
    ``NOT_PRIMARY``/``OVERLOADED`` retries happen inside the client;
    connection drops and unknown-outcome replication errors surface
    here, where the workload (which knows its writes are unique-keyed)
    may safely re-submit.
    """
    deadline = time.monotonic() + _STATEMENT_DEADLINE
    saw_unknown_outcome = False
    last_error = "no attempt"
    while time.monotonic() < deadline:
        plan.maybe_heal(cluster)
        try:
            client.execute(statement["sql"])
            return "acked"
        except RemoteError as error:
            if error.code == "CONSTRAINT_VIOLATION" and saw_unknown_outcome:
                # an earlier unknown-outcome attempt DID apply (its key
                # is occupied); whether it survives the failover is for
                # the read-back resolution to decide
                return "ambiguous"
            if error.code == "CONSTRAINT_VIOLATION":
                raise  # a genuine conflict would be a workload bug
            last_error = f"{error.code}: {error}"
            if error.code in ("REPLICATION_ERROR", "INTERNAL_ERROR"):
                saw_unknown_outcome = True
        except ClientConnectionError as error:
            # the socket died with the request possibly delivered
            last_error = f"connection: {error}"
            saw_unknown_outcome = True
        time.sleep(0.1)
    return last_error


def run_matrix(
    seeds: List[int],
    scenarios: Optional[List[str]] = None,
    steps: int = 12,
) -> Dict[str, Any]:
    """Run the full cluster matrix; returns the report document."""
    chosen = scenarios or sorted(SCENARIOS)
    cells: List[Dict[str, Any]] = []
    started = time.time()
    for scenario in chosen:
        for seed in seeds:
            cells.append(run_cell(scenario, seed, steps=steps))
    failures = [cell for cell in cells if not cell["passed"]]
    return {
        "seeds": seeds,
        "scenarios": chosen,
        "steps": steps,
        "cells": len(cells),
        "passed": len(cells) - len(failures),
        "failed": len(failures),
        "duration_seconds": round(time.time() - started, 3),
        "failures": failures,
        "results": cells,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.cluster_matrix",
        description="Run the whole-cluster chaos matrix.",
    )
    parser.add_argument(
        "--seeds", default="0,1,2",
        help="comma-separated seeds (default: 0,1,2)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None,
        help="restrict to one scenario (repeatable; default: all of "
        f"{', '.join(sorted(SCENARIOS))})",
    )
    parser.add_argument(
        "--steps", type=int, default=12,
        help="workload rounds per cell (default: 12)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here",
    )
    options = parser.parse_args(argv)
    seeds = [int(part) for part in options.seeds.split(",") if part.strip()]
    report = run_matrix(seeds, scenarios=options.scenario, steps=options.steps)
    if options.out:
        with open(options.out, "w") as handle:
            json.dump(report, handle, indent=2)
    print(
        f"cluster chaos matrix: {report['passed']}/{report['cells']} cells "
        f"passed in {report['duration_seconds']}s"
    )
    if report["failed"]:
        print(f"\n{report['failed']} FAILING cell(s):", file=sys.stderr)
        for cell in report["failures"]:
            print(
                f"  scenario={cell['scenario']} seed={cell['seed']}: "
                f"{cell['failure']}\n"
                "    repro: PYTHONPATH=src python -m "
                "repro.resilience.cluster_matrix "
                f"--scenario {cell['scenario']} --seeds {cell['seed']}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
