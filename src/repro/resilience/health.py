"""The engine health state machine: HEALTHY → DEGRADED → RECOVERING → FAILED.

The fsyncgate lesson: a failed fsync may have silently dropped
page-cache data, so an engine that shrugs and keeps acknowledging
writes is lying about durability. When the durable-write path fails
(after its bounded retry), this engine instead flips into **degraded**
mode — a read-only stance where the guarantee "acknowledged ⇒ durable"
is preserved by refusing to acknowledge anything new:

* reads keep flowing (the in-memory state is intact);
* writes are rejected with :class:`~repro.errors.DegradedError`
  (wire code ``DEGRADED`` — stable, machine-matchable);
* replicas can still be promoted (replication reads the log, and a
  healthy replica's disk is not this node's disk).

States and legal transitions::

    healthy ────────→ degraded      durable write failed
       ↑  ↖              │
       │    ╲            ▼
       │     recovering ←┘          supervisor replaying / self-healing
       │          │
       └──────────┤
                  ▼
                failed              recovery itself failed; needs operator

:class:`HealthMonitor` is the one mutable object: thread-safe, keeps a
bounded transition history, notifies listeners (the server uses this to
refresh gauges), and mirrors its state into the metrics registry
(``repro_health_state``: healthy=0 degraded=1 recovering=2 failed=3).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

HEALTHY = "healthy"
DEGRADED = "degraded"
RECOVERING = "recovering"
FAILED = "failed"

STATES = (HEALTHY, DEGRADED, RECOVERING, FAILED)

#: Legal transitions. Same-state "transitions" are always allowed (and
#: are no-ops); anything else raises — an illegal health transition is
#: a bug, not a condition to limp through.
TRANSITIONS: Dict[str, tuple] = {
    HEALTHY: (DEGRADED, RECOVERING, FAILED),
    DEGRADED: (RECOVERING, FAILED),
    RECOVERING: (HEALTHY, DEGRADED, FAILED),
    FAILED: (RECOVERING,),
}

_STATE_CODES = {HEALTHY: 0, DEGRADED: 1, RECOVERING: 2, FAILED: 3}

_HISTORY_LIMIT = 64


class HealthMonitor:
    """Tracks one engine's health state, thread-safely."""

    def __init__(self, state: str = HEALTHY, clock: Callable[[], float] = time.time):
        if state not in STATES:
            raise ValueError(f"unknown health state {state!r}")
        self._lock = threading.RLock()
        self._state = state
        self._clock = clock
        self._reason: Optional[str] = None
        #: The exception that degraded us, kept for ``\health`` / HEALTH.
        self.last_error: Optional[str] = None
        self.last_error_at: Optional[float] = None
        #: Bounded ``(timestamp, from, to, reason)`` history.
        self.history: List[tuple] = []
        self._listeners: List[Callable[[str, str, str], None]] = []
        self._record_gauge(state)

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def reason(self) -> Optional[str]:
        with self._lock:
            return self._reason

    def allows_writes(self) -> bool:
        """Writes are acknowledged only while fully healthy."""
        with self._lock:
            return self._state == HEALTHY

    def allows_reads(self) -> bool:
        """Reads flow in every state but FAILED (where in-memory state
        is not trustworthy — recovery itself went wrong)."""
        with self._lock:
            return self._state != FAILED

    def add_listener(self, listener: Callable[[str, str, str], None]) -> None:
        """``listener(old_state, new_state, reason)`` after each change."""
        with self._lock:
            self._listeners.append(listener)

    # ------------------------------------------------------------------

    def transition(
        self,
        to: str,
        reason: str = "",
        error: Optional[BaseException] = None,
    ) -> str:
        """Move to state ``to``. Same-state is a no-op; an illegal edge
        raises ``ValueError``. Returns the new state."""
        if to not in STATES:
            raise ValueError(f"unknown health state {to!r}")
        with self._lock:
            old = self._state
            if to == old:
                return old
            if to not in TRANSITIONS[old]:
                raise ValueError(
                    f"illegal health transition {old} -> {to} ({reason})"
                )
            self._state = to
            self._reason = reason or None
            if error is not None:
                self.last_error = f"{type(error).__name__}: {error}"
                self.last_error_at = self._clock()
            self.history.append((self._clock(), old, to, reason))
            del self.history[:-_HISTORY_LIMIT]
            listeners = list(self._listeners)
        self._record_gauge(to)
        self._count_transition(to)
        self._emit_event(old, to, reason)
        for listener in listeners:
            listener(old, to, reason)
        return to

    def mark_degraded(
        self, reason: str, error: Optional[BaseException] = None
    ) -> None:
        """Durable-write failure: drop to read-only. Idempotent — a
        second failure while already degraded just refreshes the error."""
        with self._lock:
            if self._state == DEGRADED:
                if error is not None:
                    self.last_error = f"{type(error).__name__}: {error}"
                    self.last_error_at = self._clock()
                return
            if self._state == FAILED:
                return  # already worse than degraded
        self.transition(DEGRADED, reason, error)

    # ------------------------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "reason": self._reason,
                "last_error": self.last_error,
                "last_error_at": self.last_error_at,
                "transitions": len(self.history),
            }

    # ------------------------------------------------------------------

    def _record_gauge(self, state: str) -> None:
        from ..observability.metrics import recording_registry

        registry = recording_registry()
        if registry is not None:
            registry.gauge(
                "repro_health_state",
                help="Engine health (0 healthy, 1 degraded, 2 recovering, "
                "3 failed).",
            ).set(_STATE_CODES[state])

    def _count_transition(self, to: str) -> None:
        from ..observability.metrics import recording_registry

        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_health_transitions_total",
                help="Health state transitions, by destination state.",
                to=to,
            ).inc()

    @staticmethod
    def _emit_event(old: str, to: str, reason: str) -> None:
        from ..observability import events as events_module
        from ..observability import tracing as tracing_module

        events_module.emit(
            "health",
            node=tracing_module.current_node_label(),
            **{"from": old, "to": to, "reason": reason or None},
        )

    def __repr__(self) -> str:
        with self._lock:
            return f"HealthMonitor({self._state}, reason={self._reason!r})"
