"""Shared retry machinery: jittered exponential backoff + circuit breaker.

Three independent subsystems grew three ad-hoc retry loops — the
client's single blind redial, the replication manager's
``base * 2**attempt`` reconnect schedule, and (until this PR) *no*
retry at all around fsync. This module is the one implementation they
now share:

* :class:`RetryPolicy` — ``delay(attempt) = min(base * mult**(attempt-1),
  max_delay)``, shrunk by up to ``jitter`` fraction of itself using a
  **seeded** RNG so tests replay exactly. ``call()`` wraps a function in
  the retry loop with an injectable ``sleep`` (tests pass a recorder,
  production sleeps for real).
* :class:`CircuitBreaker` — closed / open / half-open. After
  ``failure_threshold`` consecutive failures the breaker opens and
  :meth:`allow` refuses immediately (no doomed attempt, no log spam)
  until ``cooldown`` seconds pass; then exactly one probe attempt is
  let through (half-open) and its outcome re-closes or re-opens the
  breaker. The clock is injectable for deterministic tests.

The policy is *why/when to wait*; the breaker is *whether to bother*.
The supervisor composes both: fsync gets a tight bounded policy (a disk
that fails three fsyncs is not getting better in microseconds), the
self-heal path gets a breaker (a node that keeps failing to heal must
stop thrashing its disk), and the client/replication reconnects get
unbounded jittered policies (the peer may be down for a while, and the
jitter keeps a thundering herd from re-dialing in lockstep).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Optional, Tuple, Type


class RetryPolicy:
    """Jittered exponential backoff, seeded and fully injectable.

    ``max_attempts=None`` means retry forever (reconnect loops);
    a small integer bounds the loop (fsync retry). ``jitter=0.25``
    means each delay is scaled by a uniform factor in ``[0.75, 1.0]``
    — backoff only ever shrinks, so the cap is still honored.
    """

    def __init__(
        self,
        base_delay: float = 0.05,
        max_delay: float = 5.0,
        multiplier: float = 2.0,
        jitter: float = 0.25,
        max_attempts: Optional[int] = None,
        seed: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.max_attempts = max_attempts
        self.random = random.Random(seed)
        self.sleep = sleep

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        capped = min(raw, self.max_delay)
        if self.jitter:
            capped *= 1.0 - self.jitter * self.random.random()
        return capped

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Run ``fn``, retrying on ``retry_on`` with backoff between
        attempts. Exhausting ``max_attempts`` re-raises the last error;
        any exception *not* in ``retry_on`` propagates immediately."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as error:
                if (
                    self.max_attempts is not None
                    and attempt >= self.max_attempts
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                self.sleep(self.delay(attempt))

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(base={self.base_delay}, max={self.max_delay}, "
            f"mult={self.multiplier}, jitter={self.jitter}, "
            f"attempts={self.max_attempts or 'unbounded'})"
        )


class CircuitBreaker:
    """Stop hammering an operation that keeps failing.

    closed — attempts flow; failures are counted.
    open — :meth:`allow` returns False until ``cooldown`` elapses.
    half_open — one probe attempt is allowed; success closes the
    breaker, failure re-opens it (and restarts the cooldown).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: Lifetime counters, surfaced by ``\health`` and HEALTH.
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0

    def allow(self) -> bool:
        """May the caller attempt the operation right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if (
                self.opened_at is not None
                and self.clock() - self.opened_at >= self.cooldown
            ):
                self.state = "half_open"
                return True
            return False
        # half_open: the single probe is already out; no more until it
        # reports back
        return False

    def record_success(self) -> None:
        self.total_successes += 1
        self.consecutive_failures = 0
        reopened = self.state != "closed"
        self.state = "closed"
        self.opened_at = None
        if reopened:
            self._emit("breaker_close")

    def record_failure(self) -> None:
        self.total_failures += 1
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != "open":
                self.times_opened += 1
                self._emit("breaker_open", failures=self.total_failures)
            self.state = "open"
            self.opened_at = self.clock()
            self.consecutive_failures = 0

    def _emit(self, kind: str, **detail) -> None:
        from ..observability import events as events_module
        from ..observability import tracing as tracing_module

        events_module.emit(
            kind, node=tracing_module.current_node_label(), **detail
        )

    def status(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "times_opened": self.times_opened,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self.consecutive_failures}/{self.failure_threshold})"
        )
