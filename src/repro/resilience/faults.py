"""Deterministic filesystem fault injection for the storage path.

PR 2's chaos harness proved the *network* path under drop / delay /
duplicate / reorder faults; this module gives the *storage* path the
same treatment. A :class:`FaultyIO` is a seeded source of disk
misbehavior that the durability substrate (``core/command_log.py`` and
``core/snapshot.py``) consults at **named fault sites** — the storage
analogue of the replication crash points:

========================================  =================================
``commandlog.write``                      a record line is about to be
                                          written to the log file
``commandlog.fsync``                      the log file is about to be
                                          fsync'd (the durability point)
``commandlog.truncate``                   the log is about to be reset
                                          after a checkpoint snapshot
``snapshot.write``                        the snapshot JSON is about to be
                                          written to its temp file
``snapshot.fsync``                        the temp file is about to be
                                          fsync'd
``snapshot.rename``                       the temp file is about to be
                                          atomically renamed into place
``checkpoint.before_truncate``            the snapshot is durable but the
                                          command log has not yet been
                                          truncated (double-replay window)
``probe.write`` / ``probe.fsync``         the supervisor's health probe is
                                          touching the data directory
========================================  =================================

At each site the injector can fire one of four **fault kinds**:

* ``"crash"`` — the process dies at exactly this instruction
  (:class:`~repro.replication.fault_injection.SimulatedCrash`, shared
  with the replication chaos harness so no engine-level handler can
  swallow it);
* ``"torn"`` — a random *prefix* of the data is written (and flushed so
  the bytes really land in the file), then the process dies: the classic
  torn write;
* ``"eio"`` — the operation fails with ``OSError(EIO)`` (a dying disk,
  a failed fsync);
* ``"enospc"`` — the operation fails with ``OSError(ENOSPC)`` (disk
  full). Usually armed ``persistent=True``: a full disk stays full.

All randomness (torn-write cut points, generated schedules) comes from
one ``random.Random(seed)``, so a failing run replays bit-for-bit from
its seed — the property the crash-point matrix in
:mod:`repro.resilience.matrix` is built on.

Injection is opt-in and ambient: production code calls
:func:`check_site`, which is a no-op unless a test (or the matrix
harness) has installed an injector with :func:`install` /
:func:`injected`. The storage layer pays one ``is None`` check per
durable operation when injection is off.
"""

from __future__ import annotations

import errno
import random
import threading
from typing import Dict, List, Optional, Tuple


def _simulated_crash(site: str):
    # Imported lazily: faults is imported by core.command_log, and the
    # replication package's __init__ imports core.command_log back —
    # a module-level import here would close that cycle.
    from ..replication.fault_injection import SimulatedCrash

    return SimulatedCrash(site)


#: Every named storage fault site, ``name -> (description, valid kinds)``.
#: The crash-point matrix iterates this to cover all of them.
STORAGE_SITES: Dict[str, Tuple[str, Tuple[str, ...]]] = {}

#: All fault kinds an injector can fire.
FAULT_KINDS = ("crash", "torn", "eio", "enospc")


def register_storage_site(
    name: str, description: str = "", kinds: Tuple[str, ...] = FAULT_KINDS
) -> str:
    """Declare a storage fault site; returns ``name`` for use as a constant."""
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    STORAGE_SITES[name] = (description, tuple(kinds))
    return name


SITE_LOG_WRITE = register_storage_site(
    "commandlog.write",
    "a command-log record line is about to be written",
)
SITE_LOG_FSYNC = register_storage_site(
    "commandlog.fsync",
    "the command log is about to be fsync'd (the durability point)",
    kinds=("crash", "eio", "enospc"),
)
SITE_LOG_TRUNCATE = register_storage_site(
    "commandlog.truncate",
    "the command log is about to be truncated after a checkpoint",
    kinds=("crash", "eio"),
)
SITE_SNAPSHOT_WRITE = register_storage_site(
    "snapshot.write",
    "the snapshot document is about to be written to its temp file",
)
SITE_SNAPSHOT_FSYNC = register_storage_site(
    "snapshot.fsync",
    "the snapshot temp file is about to be fsync'd",
    kinds=("crash", "eio", "enospc"),
)
SITE_SNAPSHOT_RENAME = register_storage_site(
    "snapshot.rename",
    "the snapshot temp file is about to be renamed into place",
    kinds=("crash", "eio"),
)
SITE_CHECKPOINT_TRUNCATE = register_storage_site(
    "checkpoint.before_truncate",
    "the checkpoint snapshot is durable; the command log is not yet "
    "truncated (recovery must not double-apply the overlap)",
    kinds=("crash",),
)
SITE_PROBE_WRITE = register_storage_site(
    "probe.write",
    "the supervisor's health probe is writing its probe file",
    kinds=("eio", "enospc"),
)
SITE_PROBE_FSYNC = register_storage_site(
    "probe.fsync",
    "the supervisor's health probe is fsync'ing its probe file",
    kinds=("eio", "enospc"),
)


class FaultPlan:
    """One armed fault: fire ``kind`` on the ``after``-th hit of ``site``.

    ``persistent`` plans keep firing on every hit once triggered (a full
    disk stays full); transient plans fire exactly once (a single bad
    sector, a spurious EIO a bounded retry can absorb).
    """

    __slots__ = ("site", "kind", "after", "persistent", "remaining", "fired")

    def __init__(self, site: str, kind: str, after: int, persistent: bool):
        self.site = site
        self.kind = kind
        self.after = after
        self.persistent = persistent
        self.remaining = after
        self.fired = 0

    def __repr__(self) -> str:
        return (
            f"FaultPlan({self.site}, {self.kind}, after={self.after}, "
            f"persistent={self.persistent}, fired={self.fired})"
        )


class FaultyIO:
    """A seeded filesystem fault injector for the storage layer.

    ::

        io = FaultyIO(seed=7)
        io.inject(SITE_LOG_FSYNC, "eio", persistent=True)
        with injected(io):
            db.execute("INSERT ...")   # raises DurabilityError, degrades

    ``counts`` / ``injected_log`` record every fault actually fired so a
    test can assert its chaos really happened.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.random = random.Random(seed)
        self._plans: Dict[str, FaultPlan] = {}
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        #: ``(site, kind)`` per fault fired, in order.
        self.injected_log: List[Tuple[str, str]] = []
        #: Total site hits (fired or not), per site — lets the matrix
        #: harness learn how often each site is reached by a workload.
        self.hits: Dict[str, int] = {}

    def inject(
        self,
        site: str,
        kind: str = "eio",
        after: int = 1,
        persistent: bool = False,
    ) -> None:
        """Arm ``site`` to fire ``kind`` on its ``after``-th hit."""
        if site not in STORAGE_SITES:
            raise ValueError(
                f"unknown storage site {site!r}; registered: "
                f"{sorted(STORAGE_SITES)}"
            )
        _description, valid = STORAGE_SITES[site]
        if kind not in valid:
            raise ValueError(
                f"fault kind {kind!r} is not valid at {site} "
                f"(valid: {valid})"
            )
        if after < 1:
            raise ValueError("after must be >= 1")
        self._plans[site] = FaultPlan(site, kind, after, persistent)

    def clear(self, site: Optional[str] = None) -> None:
        """Disarm one site (or, with no argument, every site)."""
        if site is None:
            self._plans.clear()
        else:
            self._plans.pop(site, None)

    def armed(self, site: Optional[str] = None) -> bool:
        if site is None:
            return bool(self._plans)
        return site in self._plans

    # ------------------------------------------------------------------

    def check(self, site: str, handle=None, data: Optional[str] = None) -> None:
        """Called by instrumented storage code at fault site ``site``.

        May raise ``OSError`` (``eio`` / ``enospc``) or
        :class:`SimulatedCrash` (``crash`` / ``torn``); for ``torn`` a
        random prefix of ``data`` is written to ``handle`` and flushed
        first, so the partial bytes genuinely land in the file the way a
        real torn write would leave them.
        """
        self.hits[site] = self.hits.get(site, 0) + 1
        plan = self._plans.get(site)
        if plan is None:
            return
        if plan.remaining > 1:
            plan.remaining -= 1
            return
        if plan.fired and not plan.persistent:
            return
        plan.remaining = 0
        plan.fired += 1
        kind = plan.kind
        self.counts[kind] += 1
        self.injected_log.append((site, kind))
        if not plan.persistent:
            del self._plans[site]
        if kind == "crash":
            raise _simulated_crash(site)
        if kind == "torn":
            if handle is not None and data:
                cut = self.random.randrange(0, len(data))
                if cut:
                    handle.write(data[:cut])
                    handle.flush()
            raise _simulated_crash(site)
        if kind == "eio":
            raise OSError(errno.EIO, f"injected I/O error at {site}")
        raise OSError(errno.ENOSPC, f"injected disk-full at {site}")

    def __repr__(self) -> str:
        return (
            f"FaultyIO(seed={self.seed}, "
            f"armed={sorted(self._plans) or 'none'}, "
            f"fired={self.injected_log or 'none'})"
        )


# ---------------------------------------------------------------------------
# ambient installation
# ---------------------------------------------------------------------------

_ambient_lock = threading.Lock()
_ambient: Optional[FaultyIO] = None


def install(io: FaultyIO) -> FaultyIO:
    """Install ``io`` as the process-wide ambient injector."""
    global _ambient
    with _ambient_lock:
        _ambient = io
    return io


def uninstall() -> None:
    global _ambient
    with _ambient_lock:
        _ambient = None


def ambient_io() -> Optional[FaultyIO]:
    return _ambient


class injected:
    """``with injected(FaultyIO(...)):`` — scoped ambient installation."""

    def __init__(self, io: FaultyIO):
        self.io = io

    def __enter__(self) -> FaultyIO:
        install(self.io)
        return self.io

    def __exit__(self, exc_type, exc, tb) -> bool:
        uninstall()
        return False


def check_site(site: str, handle=None, data: Optional[str] = None,
               io: Optional[FaultyIO] = None) -> None:
    """The storage layer's single injection point.

    Uses ``io`` when given, otherwise the ambient injector; a no-op
    (one ``is None`` check) when neither is installed.
    """
    active = io if io is not None else _ambient
    if active is not None:
        active.check(site, handle=handle, data=data)
