"""``python -m repro`` starts the interactive SQL shell."""

from .shell import main

if __name__ == "__main__":
    main()
