"""``python -m repro`` — the SQL shell, a network server, or a client.

* no arguments: the in-process interactive shell;
* ``--serve HOST:PORT``: serve a fresh database over the wire protocol
  (``--auth TOKEN`` requires clients to present the token, and
  ``--snapshot`` / ``--command-log`` recover state before listening;
  ``--data-dir DIR`` instead runs under a self-healing supervisor that
  owns recovery, checkpoints, and health probes in that directory);
* ``--connect HOST:PORT``: the same shell, but every statement goes to
  a remote server (``--auth TOKEN`` to authenticate);
* ``--cluster NAME --peers n1=H:CP:RP,... --data-dir DIR``: run one
  node of an N-node high-availability cluster (TCP replication,
  heartbeat failover, ``NOT_PRIMARY`` redirects). ``--initial-primary``
  names the first boot's primary; restarted nodes rediscover the
  current leader regardless;
* ``--router HOST:PORT --shards H1:P1,H2:P2,...``: run the shard
  router in front of already-running shard servers — clients connect
  to it exactly as to a single server (``\\shards status`` in the
  shell shows the map and routing counters);
* ``--serve ... --shard-index I --shard-count N``: serve as shard I of
  N — the server rejects misrouted single-partition statements with
  ``SHARD_REDIRECT``.

``--http-port PORT`` (with ``--serve`` or ``--cluster``) additionally
serves the read-only HTTP observability endpoint — ``/metrics``,
``/health``, ``/events``, ``/traces`` — so probes and ``curl`` can read
a node during exactly the failures that make the wire protocol unusable.
"""

from __future__ import annotations

import argparse
from typing import Optional, Tuple


def _address(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-memory relational engine with native graph views.",
    )
    parser.add_argument(
        "--serve", metavar="HOST:PORT", type=_address, default=None,
        help="serve a database over TCP instead of opening a shell",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", type=_address, default=None,
        help="open a shell against a remote server",
    )
    parser.add_argument(
        "--auth", metavar="TOKEN", default=None,
        help="shared secret: required of clients (--serve) "
             "or presented to the server (--connect)",
    )
    parser.add_argument(
        "--snapshot", metavar="FILE", default=None,
        help="with --serve: restore this snapshot before listening",
    )
    parser.add_argument(
        "--command-log", metavar="FILE", default=None,
        help="with --serve: replay this command log before listening",
    )
    parser.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help="with --serve: run under a supervisor that recovers from, "
             "checkpoints into, and health-probes this directory",
    )
    parser.add_argument(
        "--probe-interval", metavar="SECONDS", type=float, default=5.0,
        help="with --data-dir: seconds between storage health probes",
    )
    parser.add_argument(
        "--cluster", metavar="NAME", default=None,
        help="run as cluster node NAME (requires --peers and --data-dir)",
    )
    parser.add_argument(
        "--peers", metavar="N1=HOST:CPORT:RPORT,...", default=None,
        help="with --cluster: every cluster member's client and "
             "replication addresses, including this node's",
    )
    parser.add_argument(
        "--initial-primary", metavar="NAME", default=None,
        help="with --cluster: the node that promotes itself on a fresh "
             "cluster's first boot (ignored once a leader exists)",
    )
    parser.add_argument(
        "--heartbeat-timeout", metavar="SECONDS", type=float, default=2.0,
        help="with --cluster: primary silence before an election starts",
    )
    parser.add_argument(
        "--ack-replicas", metavar="N", type=int, default=1,
        help="with --cluster: replicas that must apply a write before "
             "the client is acknowledged",
    )
    parser.add_argument(
        "--router", metavar="HOST:PORT", type=_address, default=None,
        help="run the shard router on this address (requires --shards)",
    )
    parser.add_argument(
        "--shards", metavar="H1:P1,H2:P2,...", default=None,
        help="with --router: the shard servers, in shard-index order",
    )
    parser.add_argument(
        "--shard-auth", metavar="TOKEN", default=None,
        help="with --router: token presented to the shard servers "
             "(--auth still gates the router's own clients)",
    )
    parser.add_argument(
        "--shard-index", metavar="I", type=int, default=None,
        help="with --serve: this server's shard number (0-based)",
    )
    parser.add_argument(
        "--shard-count", metavar="N", type=int, default=None,
        help="with --serve: total number of shards",
    )
    parser.add_argument(
        "--shard-slots", metavar="S", type=int, default=None,
        help="with --shard-index: hash slots in the shard map "
             "(default 64; must match the router)",
    )
    parser.add_argument(
        "--http-port", metavar="PORT", type=int, default=None,
        help="with --serve or --cluster: also serve the HTTP "
             "observability endpoint (/metrics, /health, /events, "
             "/traces) on this port (0 picks a free port)",
    )
    args = parser.parse_args(argv)
    modes = (args.serve, args.connect, args.cluster, args.router)
    if sum(map(bool, modes)) > 1:
        parser.error(
            "--serve, --connect, --cluster and --router are "
            "mutually exclusive"
        )
    if (args.shard_index is None) != (args.shard_count is None):
        parser.error("--shard-index and --shard-count go together")
    if args.shard_index is not None and not args.serve:
        parser.error("--shard-index/--shard-count require --serve")
    if args.cluster:
        if not args.peers or not args.data_dir:
            parser.error("--cluster requires --peers and --data-dir")
        _cluster(args)
    elif args.router:
        if not args.shards:
            parser.error("--router requires --shards")
        _router(args)
    elif args.serve:
        _serve(args)
    elif args.connect:
        _connect(args)
    else:
        from .shell import Shell

        Shell().run()


def _serve(args) -> None:
    from .core.database import Database
    from .server import Server

    host, port = args.serve
    supervisor = None
    if args.data_dir:
        if args.snapshot or args.command_log:
            raise SystemExit(
                "error: --data-dir manages its own snapshot and command "
                "log; it cannot be combined with --snapshot/--command-log"
            )
        from .resilience.supervisor import Supervisor

        supervisor = Supervisor(
            args.data_dir, probe_interval=args.probe_interval
        )
        supervisor.start()
        db = supervisor.database
    elif args.snapshot or args.command_log:
        db = Database.recover(
            snapshot=args.snapshot, command_log=args.command_log
        )
    else:
        db = Database()
    shard_info = None
    if args.shard_index is not None:
        from .sharding.shard_map import DEFAULT_SLOTS

        shard_info = {
            "index": args.shard_index,
            "count": args.shard_count,
            "slots": args.shard_slots or DEFAULT_SLOTS,
            "version": 1,
        }
    server = Server(
        db, host=host, port=port, auth_token=args.auth,
        supervisor=supervisor, shard_info=shard_info,
    ).start()
    if supervisor is not None:
        supervisor.start_probes()
    bound_host, bound_port = server.address
    http = _start_http(args, bound_host, server)
    print(f"repro server listening on {bound_host}:{bound_port}")
    if shard_info is not None:
        print(
            f"shard {shard_info['index']} of {shard_info['count']} "
            f"({shard_info['slots']} slots)"
        )
    if supervisor is not None:
        print(f"supervised data dir: {supervisor.data_dir}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
        if http is not None:
            http.stop()
        server.shutdown(drain=True)
        if supervisor is not None:
            supervisor.stop()


def _start_http(args, host: str, server):
    """Start the HTTP observability endpoint next to a ``--serve``
    server when ``--http-port`` was given."""
    if args.http_port is None:
        return None
    from .observability import ObservabilityHttpServer

    def health():
        message = server._health_message()
        return {
            key: value
            for key, value in message.items()
            if key not in ("type", "id")
        }

    http = ObservabilityHttpServer(
        host=host, port=args.http_port, health_provider=health
    ).start()
    print(f"observability endpoint on {http.url()}")
    return http


def _router(args) -> None:
    from .sharding.router import Router

    host, port = args.router
    try:
        shards = [_address(spec) for spec in args.shards.split(",") if spec]
    except argparse.ArgumentTypeError as error:
        raise SystemExit(f"error: --shards: {error}")
    if not shards:
        raise SystemExit("error: --shards names no shard servers")
    router = Router(
        shards, host=host, port=port,
        auth_token=args.auth, shard_auth=args.shard_auth,
    ).start()
    bound_host, bound_port = router.address
    print(f"repro router listening on {bound_host}:{bound_port}")
    print(
        f"routing to {len(shards)} shard(s): "
        + ", ".join(f"{h}:{p}" for h, p in shards)
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
        router.shutdown(drain=True)


def _cluster(args) -> None:
    from .errors import DatabaseError
    from .replication.node import ClusterNode, parse_peers

    try:
        peers = parse_peers(args.peers)
    except DatabaseError as error:
        raise SystemExit(f"error: {error}")
    if args.cluster not in peers:
        raise SystemExit(
            f"error: --cluster {args.cluster!r} is not in --peers "
            f"({', '.join(sorted(peers))})"
        )
    try:
        node = ClusterNode(
            args.cluster,
            peers,
            data_dir=args.data_dir,
            initial_primary=args.initial_primary,
            heartbeat_timeout=args.heartbeat_timeout,
            ack_replicas=args.ack_replicas,
            auth_token=args.auth,
            http_port=args.http_port,
        ).start()
    except DatabaseError as error:
        raise SystemExit(f"error: {error}")
    host, port = node.client_address
    print(
        f"cluster node {node.name} ({node.role}) listening on "
        f"{host}:{port}; replication on {node.spec.repl_port}"
    )
    if node.http is not None:
        print(f"observability endpoint on {node.http.url()}")
    print(f"data dir: {node.data_dir}")
    try:
        node.server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining...")
        node.stop(drain=True)


def _connect(args) -> None:
    from .client import Client
    from .errors import DatabaseError
    from .shell import Shell

    host, port = args.connect
    try:
        client = Client(host, port, auth=args.auth).connect()
    except DatabaseError as error:
        raise SystemExit(f"error: {error}")
    try:
        Shell(client=client).run()
    finally:
        client.close()


if __name__ == "__main__":
    main()
