"""Query results."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class ResultSet:
    """The outcome of one statement.

    For SELECT: ``columns`` and ``rows`` are populated. For DML:
    ``rowcount`` holds the number of affected rows. For DDL: both are
    empty and ``rowcount`` is 0.
    """

    def __init__(
        self,
        columns: Optional[Sequence[str]] = None,
        rows: Optional[Sequence[Sequence[Any]]] = None,
        rowcount: int = 0,
    ):
        self.columns: List[str] = list(columns or [])
        self.rows: List[Tuple[Any, ...]] = [tuple(r) for r in (rows or [])]
        self.rowcount = rowcount if rowcount else len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> Optional[Tuple[Any, ...]]:
        """The first row, or None."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row / one-column result (or None)."""
        row = self.first()
        return row[0] if row else None

    def column(self, name_or_index) -> List[Any]:
        """All values of one column."""
        if isinstance(name_or_index, int):
            index = name_or_index
        else:
            lowered = [c.lower() for c in self.columns]
            index = lowered.index(name_or_index.lower())
        return [row[index] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"
