"""Database snapshots: save an entire database to a file and restore it.

VoltDB persists through command logs and snapshots; this module provides
the snapshot half for the reproduction. A snapshot is a JSON document
holding, in dependency order:

1. every base table's DDL (re-derived from its schema) and its rows;
2. secondary index definitions;
3. materialized view definitions (as SQL, via the AST renderer) —
   their contents re-derive on replay;
4. graph view definitions (re-derived from the stored mappings) plus
   any vertical-partition ``ALTER`` statements — topologies rebuild in
   one pass on replay, exactly like the original ``CREATE GRAPH VIEW``.

All column values are JSON-representable by construction (the type
system only stores int/float/str/bool/None).

Snapshots carry a CRC32 ``checksum`` over the canonical JSON encoding
of the rest of the document, verified on load — a truncated or
bit-flipped snapshot fails fast with
:class:`~repro.errors.RecoveryError` instead of restoring a silently
wrong database. Snapshots written before checksums existed load
unverified, for compatibility.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Dict, List, Optional

from ..errors import RecoveryError
from ..observability.metrics import recording_registry
from ..resilience.faults import (
    SITE_SNAPSHOT_FSYNC,
    SITE_SNAPSHOT_RENAME,
    SITE_SNAPSHOT_WRITE,
    FaultyIO,
    check_site,
)
from ..graph.graph_view import ExtraAttributeSource, GraphView
from ..sql.render import render_select
from ..storage.index import HashIndex, OrderedIndex
from ..storage.table import Table
from .database import Database

SNAPSHOT_VERSION = 1

#: Keys every snapshot document must carry (``checksum`` is optional
#: for snapshots written before integrity verification existed).
_REQUIRED_KEYS = ("version", "tables", "indexes", "views", "graph_views")


def _document_checksum(document: Dict[str, Any]) -> str:
    """CRC32 (hex) over the canonical JSON of ``document`` sans checksum."""
    payload = {k: v for k, v in document.items() if k != "checksum"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")), "08x")


def verify_snapshot_document(
    document: Any, source: Optional[str] = None
) -> Dict[str, Any]:
    """Validate a parsed snapshot document's shape and checksum.

    Returns the document on success; raises
    :class:`~repro.errors.RecoveryError` naming ``source`` (when given)
    on a malformed document, a missing section, a version this engine
    does not understand, or a checksum mismatch.
    """
    where = f"{source}: " if source else ""
    if not isinstance(document, dict):
        raise RecoveryError(
            f"{where}snapshot is not a JSON object "
            f"(got {type(document).__name__})"
        )
    if document.get("version") != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"{where}unsupported snapshot version: {document.get('version')!r}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in document]
    if missing:
        raise RecoveryError(
            f"{where}snapshot is missing section(s): {', '.join(missing)}"
        )
    stored = document.get("checksum")
    if stored is not None:
        computed = _document_checksum(document)
        if stored != computed:
            raise RecoveryError(
                f"{where}snapshot checksum mismatch "
                f"(stored {stored}, computed {computed}) — the file is "
                "corrupt or was edited by hand"
            )
    return document


def _table_ddl(table: Table) -> str:
    columns = []
    for column in table.schema.columns:
        text = f"{column.name} {column.sql_type.value}"
        if column.primary_key:
            text += " PRIMARY KEY"
        elif not column.nullable:
            text += " NOT NULL"
        columns.append(text)
    return f"CREATE TABLE {table.name} ({', '.join(columns)})"


def _index_entries(table: Table) -> List[Dict[str, Any]]:
    entries = []
    for index in table.indexes.values():
        if isinstance(index, OrderedIndex):
            kind = "ordered"
        elif isinstance(index, HashIndex):
            kind = "hash"
        else:  # pragma: no cover - no other index kinds exist
            continue
        entries.append(
            {
                "name": index.name,
                "table": table.name,
                "columns": list(index.key_columns),
                "unique": index.unique,
                "kind": kind,
            }
        )
    return entries


def _mappings_of(view: GraphView) -> Dict[str, Any]:
    vertex_columns = view.vertex_table.schema.columns
    edge_columns = view.edge_table.schema.columns
    vertex_mappings = [["ID", vertex_columns[view.vertex_id_position].name]]
    for attribute, position in view.vertex_schema.attributes:
        vertex_mappings.append([attribute, vertex_columns[position].name])
    edge_mappings = [
        ["ID", edge_columns[view.edge_id_position].name],
        ["FROM", edge_columns[view.edge_from_position].name],
        ["TO", edge_columns[view.edge_to_position].name],
    ]
    for attribute, position in view.edge_schema.attributes:
        edge_mappings.append([attribute, edge_columns[position].name])
    return {
        "name": view.name,
        "directed": view.directed,
        "vertex_source": view.vertex_table.name,
        "vertex_mappings": vertex_mappings,
        "edge_source": view.edge_table.name,
        "edge_mappings": edge_mappings,
        "extra_sources": [
            _extra_source_entry(view, extra, "VERTEXES")
            for extra in view.vertex_extra_sources
        ]
        + [
            _extra_source_entry(view, extra, "EDGES")
            for extra in view.edge_extra_sources
        ],
    }


def _extra_source_entry(
    view: GraphView, extra: ExtraAttributeSource, element: str
) -> Dict[str, Any]:
    columns = extra.table.schema.columns
    mappings = [["ID", columns[extra.id_position].name]]
    for attribute, position in extra.schema.attributes:
        mappings.append([attribute, columns[position].name])
    return {
        "element": element,
        "source": extra.table.name,
        "mappings": mappings,
    }


def snapshot_to_dict(
    database: Database,
    replication: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The snapshot document for ``database`` (JSON-serializable).

    ``replication``, when given, is embedded as the document's
    ``"replication"`` section — replication stores the log position
    (``{"epoch": E, "sequence": S}``) the snapshot corresponds to, so a
    replica bootstrapping from it knows exactly where to resume the
    shipped log. The section is covered by the document checksum.
    """
    catalog = database.catalog
    view_backing_tables = {
        id(catalog.view(name).table) for name in list(catalog._views)
    }
    tables = []
    indexes: List[Dict[str, Any]] = []
    for table in catalog.tables():
        if id(table) in view_backing_tables:
            continue  # re-derived by the view definition on replay
        tables.append(
            {
                "ddl": _table_ddl(table),
                "name": table.name,
                "rows": [list(row) for row in table.rows()],
            }
        )
        indexes.extend(_index_entries(table))
    views = [
        {
            "name": catalog.view(name).name,
            "query": render_select(catalog.view(name).query),
        }
        for name in list(catalog._views)
    ]
    graph_views = [_mappings_of(view) for view in catalog.graph_views()]
    document = {
        "version": SNAPSHOT_VERSION,
        "tables": tables,
        "indexes": indexes,
        "views": views,
        "graph_views": graph_views,
    }
    if replication is not None:
        document["replication"] = dict(replication)
    document["checksum"] = _document_checksum(document)
    return document


def snapshot_temp_path(path: str) -> str:
    """The temp file a snapshot of ``path`` is staged in. One fixed
    name per snapshot path (not a random suffix): a crash mid-snapshot
    leaves at most one stale temp file, which the next write — or the
    supervisor's startup sweep — simply replaces."""
    return f"{path}.tmp"


def save_snapshot(
    database: Database,
    path: str,
    replication: Optional[Dict[str, Any]] = None,
    io: Optional[FaultyIO] = None,
) -> None:
    """Write the database to ``path`` as a JSON snapshot, atomically.

    The document is staged in ``path + ".tmp"``, flushed, fsync'd, and
    renamed into place with ``os.replace`` — at every instant ``path``
    is either the complete old snapshot or the complete new one, never
    a torn hybrid. On an OSError the temp file is removed (best
    effort) and the error propagates; after a crash the stale temp
    file is swept by the supervisor at startup.
    """
    started = time.perf_counter()
    document = snapshot_to_dict(database, replication=replication)
    tmp_path = snapshot_temp_path(path)
    payload = json.dumps(document)
    size_bytes = len(payload.encode("utf-8"))
    try:
        with open(tmp_path, "w") as handle:
            check_site(SITE_SNAPSHOT_WRITE, handle=handle, data=payload, io=io)
            handle.write(payload)
            handle.flush()
            check_site(SITE_SNAPSHOT_FSYNC, io=io)
            os.fsync(handle.fileno())
        check_site(SITE_SNAPSHOT_RENAME, io=io)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    registry = recording_registry()
    if registry is not None:
        registry.counter(
            "repro_snapshot_saves_total", help="Snapshots written."
        ).inc()
        registry.histogram(
            "repro_snapshot_save_ms",
            help="Snapshot write latency in milliseconds.",
        ).observe((time.perf_counter() - started) * 1000.0)
        registry.gauge(
            "repro_snapshot_bytes",
            help="Size of the most recently written snapshot.",
        ).set(size_bytes)


def restore_into(document: Dict[str, Any], database: Database) -> Database:
    """Replay a snapshot document into a (fresh) database.

    The document's embedded replication position (if any) is kept on
    the database as ``snapshot_replication`` so recovery knows which
    command-log prefix the snapshot already covers."""
    verify_snapshot_document(document)
    database.snapshot_replication = document.get("replication")
    for entry in document["tables"]:
        database.apply_replicated(entry["ddl"])
        database.load_rows(entry["name"], entry["rows"])
    for entry in document["indexes"]:
        if entry["kind"] == "ordered":
            database.create_ordered_index(
                entry["name"], entry["table"], entry["columns"], entry["unique"]
            )
        else:
            unique = "UNIQUE " if entry["unique"] else ""
            database.apply_replicated(
                f"CREATE {unique}INDEX {entry['name']} ON {entry['table']} "
                f"({', '.join(entry['columns'])})"
            )
    for entry in document["views"]:
        database.apply_replicated(f"CREATE VIEW {entry['name']} AS {entry['query']}")
    for entry in document["graph_views"]:
        direction = "DIRECTED" if entry["directed"] else "UNDIRECTED"
        vertexes = ", ".join(f"{a} = {c}" for a, c in entry["vertex_mappings"])
        edges = ", ".join(f"{a} = {c}" for a, c in entry["edge_mappings"])
        database.apply_replicated(
            f"CREATE {direction} GRAPH VIEW {entry['name']} "
            f"VERTEXES({vertexes}) FROM {entry['vertex_source']} "
            f"EDGES({edges}) FROM {entry['edge_source']}"
        )
        for extra in entry.get("extra_sources", []):
            mappings = ", ".join(f"{a} = {c}" for a, c in extra["mappings"])
            database.apply_replicated(
                f"ALTER GRAPH VIEW {entry['name']} ADD {extra['element']}"
                f"({mappings}) FROM {extra['source']}"
            )
    return database


def load_snapshot(path: str, database: Database = None) -> Database:
    """Restore a snapshot file into ``database`` (a new one by default).

    Raises :class:`~repro.errors.RecoveryError` when the file is not
    valid JSON, is structurally not a snapshot, has a version this
    engine does not understand, or fails checksum verification.
    """
    started = time.perf_counter()
    try:
        with open(path) as handle:
            document = json.load(handle)
    except json.JSONDecodeError as error:
        raise RecoveryError(
            f"{path}: snapshot is not valid JSON ({error})"
        ) from error
    verify_snapshot_document(document, source=str(path))
    restored = restore_into(document, database or Database())
    registry = recording_registry()
    if registry is not None:
        registry.counter(
            "repro_snapshot_loads_total", help="Snapshots restored."
        ).inc()
        registry.histogram(
            "repro_snapshot_load_ms",
            help="Snapshot restore latency in milliseconds.",
        ).observe((time.perf_counter() - started) * 1000.0)
    return restored
