"""Database snapshots: save an entire database to a file and restore it.

VoltDB persists through command logs and snapshots; this module provides
the snapshot half for the reproduction. A snapshot is a JSON document
holding, in dependency order:

1. every base table's DDL (re-derived from its schema) and its rows;
2. secondary index definitions;
3. materialized view definitions (as SQL, via the AST renderer) —
   their contents re-derive on replay;
4. graph view definitions (re-derived from the stored mappings) plus
   any vertical-partition ``ALTER`` statements — topologies rebuild in
   one pass on replay, exactly like the original ``CREATE GRAPH VIEW``.

All column values are JSON-representable by construction (the type
system only stores int/float/str/bool/None).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import ExecutionError
from ..graph.graph_view import ExtraAttributeSource, GraphView
from ..sql.render import render_select
from ..storage.index import HashIndex, OrderedIndex
from ..storage.table import Table
from .database import Database

SNAPSHOT_VERSION = 1


def _table_ddl(table: Table) -> str:
    columns = []
    for column in table.schema.columns:
        text = f"{column.name} {column.sql_type.value}"
        if column.primary_key:
            text += " PRIMARY KEY"
        elif not column.nullable:
            text += " NOT NULL"
        columns.append(text)
    return f"CREATE TABLE {table.name} ({', '.join(columns)})"


def _index_entries(table: Table) -> List[Dict[str, Any]]:
    entries = []
    for index in table.indexes.values():
        if isinstance(index, OrderedIndex):
            kind = "ordered"
        elif isinstance(index, HashIndex):
            kind = "hash"
        else:  # pragma: no cover - no other index kinds exist
            continue
        entries.append(
            {
                "name": index.name,
                "table": table.name,
                "columns": list(index.key_columns),
                "unique": index.unique,
                "kind": kind,
            }
        )
    return entries


def _mappings_of(view: GraphView) -> Dict[str, Any]:
    vertex_columns = view.vertex_table.schema.columns
    edge_columns = view.edge_table.schema.columns
    vertex_mappings = [["ID", vertex_columns[view.vertex_id_position].name]]
    for attribute, position in view.vertex_schema.attributes:
        vertex_mappings.append([attribute, vertex_columns[position].name])
    edge_mappings = [
        ["ID", edge_columns[view.edge_id_position].name],
        ["FROM", edge_columns[view.edge_from_position].name],
        ["TO", edge_columns[view.edge_to_position].name],
    ]
    for attribute, position in view.edge_schema.attributes:
        edge_mappings.append([attribute, edge_columns[position].name])
    return {
        "name": view.name,
        "directed": view.directed,
        "vertex_source": view.vertex_table.name,
        "vertex_mappings": vertex_mappings,
        "edge_source": view.edge_table.name,
        "edge_mappings": edge_mappings,
        "extra_sources": [
            _extra_source_entry(view, extra, "VERTEXES")
            for extra in view.vertex_extra_sources
        ]
        + [
            _extra_source_entry(view, extra, "EDGES")
            for extra in view.edge_extra_sources
        ],
    }


def _extra_source_entry(
    view: GraphView, extra: ExtraAttributeSource, element: str
) -> Dict[str, Any]:
    columns = extra.table.schema.columns
    mappings = [["ID", columns[extra.id_position].name]]
    for attribute, position in extra.schema.attributes:
        mappings.append([attribute, columns[position].name])
    return {
        "element": element,
        "source": extra.table.name,
        "mappings": mappings,
    }


def snapshot_to_dict(database: Database) -> Dict[str, Any]:
    """The snapshot document for ``database`` (JSON-serializable)."""
    catalog = database.catalog
    view_backing_tables = {
        id(catalog.view(name).table) for name in list(catalog._views)
    }
    tables = []
    indexes: List[Dict[str, Any]] = []
    for table in catalog.tables():
        if id(table) in view_backing_tables:
            continue  # re-derived by the view definition on replay
        tables.append(
            {
                "ddl": _table_ddl(table),
                "name": table.name,
                "rows": [list(row) for row in table.rows()],
            }
        )
        indexes.extend(_index_entries(table))
    views = [
        {
            "name": catalog.view(name).name,
            "query": render_select(catalog.view(name).query),
        }
        for name in list(catalog._views)
    ]
    graph_views = [_mappings_of(view) for view in catalog.graph_views()]
    return {
        "version": SNAPSHOT_VERSION,
        "tables": tables,
        "indexes": indexes,
        "views": views,
        "graph_views": graph_views,
    }


def save_snapshot(database: Database, path: str) -> None:
    """Write the database to ``path`` as a JSON snapshot."""
    document = snapshot_to_dict(database)
    with open(path, "w") as handle:
        json.dump(document, handle)


def restore_into(document: Dict[str, Any], database: Database) -> Database:
    """Replay a snapshot document into a (fresh) database."""
    if document.get("version") != SNAPSHOT_VERSION:
        raise ExecutionError(
            f"unsupported snapshot version: {document.get('version')!r}"
        )
    for entry in document["tables"]:
        database.execute(entry["ddl"])
        database.load_rows(entry["name"], entry["rows"])
    for entry in document["indexes"]:
        if entry["kind"] == "ordered":
            database.create_ordered_index(
                entry["name"], entry["table"], entry["columns"], entry["unique"]
            )
        else:
            unique = "UNIQUE " if entry["unique"] else ""
            database.execute(
                f"CREATE {unique}INDEX {entry['name']} ON {entry['table']} "
                f"({', '.join(entry['columns'])})"
            )
    for entry in document["views"]:
        database.execute(f"CREATE VIEW {entry['name']} AS {entry['query']}")
    for entry in document["graph_views"]:
        direction = "DIRECTED" if entry["directed"] else "UNDIRECTED"
        vertexes = ", ".join(f"{a} = {c}" for a, c in entry["vertex_mappings"])
        edges = ", ".join(f"{a} = {c}" for a, c in entry["edge_mappings"])
        database.execute(
            f"CREATE {direction} GRAPH VIEW {entry['name']} "
            f"VERTEXES({vertexes}) FROM {entry['vertex_source']} "
            f"EDGES({edges}) FROM {entry['edge_source']}"
        )
        for extra in entry.get("extra_sources", []):
            mappings = ", ".join(f"{a} = {c}" for a, c in extra["mappings"])
            database.execute(
                f"ALTER GRAPH VIEW {entry['name']} ADD {extra['element']}"
                f"({mappings}) FROM {extra['source']}"
            )
    return database


def load_snapshot(path: str, database: Database = None) -> Database:
    """Restore a snapshot file into ``database`` (a new one by default)."""
    with open(path) as handle:
        document = json.load(handle)
    return restore_into(document, database or Database())
