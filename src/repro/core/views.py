"""Materialized relational views.

The paper allows a graph view's vertex/edge relational source to be "a
table or a materialized relational-view" (Section 3.1). Views here are
always materialized into a backing table, so graph views can point at
them uniformly.

Maintenance strategy:

* **incremental** for views of the shape ``SELECT <column exprs> FROM
  one_table [WHERE ...]`` — each source mutation maps to at most one
  view-row mutation (the paper's "views selecting from a single table",
  Section 3.3.2);
* **full refresh** for anything else (joins, aggregates, DISTINCT, ...)
  — correct but O(view) per source change.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..expr.compile import CompiledExpression
from ..sql import ast
from ..storage.table import Table, TableListener


class MaterializedView:
    """A named, materialized query result kept in sync with its sources."""

    def __init__(
        self,
        name: str,
        query: ast.Select,
        table: Table,
        source_tables: List[Table],
    ):
        self.name = name
        self.query = query
        self.table = table
        self.source_tables = source_tables
        self._listeners: List[TableListener] = []

    def attach_incremental(
        self,
        source: Table,
        predicate: Optional[CompiledExpression],
        projections: List[CompiledExpression],
    ) -> None:
        listener = _IncrementalViewListener(self, predicate, projections)
        source.add_listener(listener)
        self._listeners.append(listener)
        listener.backfill(source)

    def attach_full_refresh(self, refresh: Callable[[], List[Tuple]]) -> None:
        for source in self.source_tables:
            listener = _FullRefreshListener(self, refresh)
            source.add_listener(listener)
            self._listeners.append(listener)

    def detach(self) -> None:
        for source in self.source_tables:
            for listener in self._listeners:
                source.remove_listener(listener)
        self._listeners = []


class _IncrementalViewListener(TableListener):
    """Filter/project single-table view maintenance in O(1) per change."""

    def __init__(
        self,
        view: MaterializedView,
        predicate: Optional[CompiledExpression],
        projections: List[CompiledExpression],
    ):
        self.view = view
        self.predicate = predicate
        self.projections = projections
        # source slot -> view slot, for deletes/updates
        self._slot_map: Dict[int, int] = {}

    def _qualifies(self, row) -> bool:
        if self.predicate is None:
            return True
        return self.predicate.fn([row]) is True

    def _project(self, row) -> List[Any]:
        return [p.fn([row]) for p in self.projections]

    def backfill(self, source: Table) -> None:
        for slot, row in source.scan():
            if self._qualifies(row):
                pointer = self.view.table.insert(self._project(row))
                self._slot_map[slot] = pointer.slot

    def on_insert(self, table, pointer, row):
        if self._qualifies(row):
            view_pointer = self.view.table.insert(self._project(row))
            self._slot_map[pointer.slot] = view_pointer.slot

    def on_delete(self, table, pointer, row):
        view_slot = self._slot_map.pop(pointer.slot, None)
        if view_slot is not None and self.view.table.is_live(view_slot):
            self.view.table.delete(view_slot)

    def on_update(self, table, pointer, old_row, new_row):
        old_in = pointer.slot in self._slot_map
        new_in = self._qualifies(new_row)
        if old_in and new_in:
            self.view.table.update(
                self._slot_map[pointer.slot], self._project(new_row)
            )
        elif old_in and not new_in:
            self.on_delete(table, pointer, old_row)
        elif new_in:
            view_pointer = self.view.table.insert(self._project(new_row))
            self._slot_map[pointer.slot] = view_pointer.slot


class _FullRefreshListener(TableListener):
    """Rebuild the whole view after any source change."""

    def __init__(self, view: MaterializedView, refresh: Callable[[], List[Tuple]]):
        self.view = view
        self.refresh = refresh
        self._refreshing = False

    def _rebuild(self):
        if self._refreshing:
            return
        self._refreshing = True
        try:
            rows = self.refresh()
            self.view.table.truncate()
            for row in rows:
                self.view.table.insert(row)
        finally:
            self._refreshing = False

    def on_insert(self, table, pointer, row):
        self._rebuild()

    def on_delete(self, table, pointer, row):
        self._rebuild()

    def on_update(self, table, pointer, old_row, new_row):
        self._rebuild()
