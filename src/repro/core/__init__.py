"""GRFusion database façade (system S8).

:class:`~repro.core.database.Database` is the public entry point: an
in-memory relational engine whose SQL dialect includes the paper's graph
extensions. See README for a tour.
"""

from .database import Database, PreparedQuery
from .result import ResultSet

__all__ = ["Database", "PreparedQuery", "ResultSet"]
