"""Command logging: VoltDB-style durability via statement replay.

VoltDB pairs periodic snapshots with a *command log* — the sequence of
statements executed since the last snapshot. Recovery restores the
snapshot and replays the log. This module provides both halves for the
reproduction:

* :class:`CommandLog` appends every successfully committed
  data-changing statement (DDL and DML) to a text file, one statement
  per line (newlines inside literals are escaped);
* :func:`replay_log` re-executes a log against a database;
* :meth:`Database.enable_command_log` wires a log into a database, and
  recovery is ``Database.recover(snapshot=..., command_log=...)``.

Each appended line carries a CRC32 checksum over its escaped payload
(``crc32-hex TAB payload``), so recovery can distinguish a cleanly
written statement from a line mangled by a crash mid-write or by disk
corruption. Logs written before checksums existed (bare payload lines)
are still replayed: a loggable statement starts with a SQL keyword, and
no keyword's first eight characters are all hex digits, so legacy lines
can never be mistaken for checksummed ones.

A file that does not end in a newline lost its tail to a torn write.
Recovery keeps the final line only if its checksum validates (the
statement was complete; only the newline was lost), otherwise it drops
the tail, truncates the file back to the last complete statement, and
reports what was dropped — recovery always makes progress past a torn
tail.

Statements are logged *post-commit*, so a statement that failed (and was
rolled back) never appears. Explicit transactions log their statements
at commit time; a rollback discards them.

Limitation (documented): programmatic writes that bypass SQL
(``db.load_rows``, raw ``Table`` mutation) are not captured — use SQL or
snapshot after bulk loads, exactly like snapshot-based recovery in the
original system.
"""

from __future__ import annotations

import pathlib
import warnings
import zlib
from typing import List, Optional, Tuple

from ..errors import RecoveryError
from ..sql import ast
from ..sql.parser import parse_statement
from .database import Database

#: Statement types that mutate durable state and therefore must be
#: replayed on recovery. Matching on the parsed AST (rather than on a
#: leading keyword) classifies statements with leading comments or
#: unusual whitespace correctly.
_LOGGED_STATEMENT_TYPES = (
    ast.CreateTable,
    ast.CreateIndex,
    ast.CreateView,
    ast.CreateGraphView,
    ast.AlterGraphViewAddSource,
    ast.Drop,
    ast.Insert,
    ast.Update,
    ast.Delete,
    ast.Truncate,
)

_ON_ERROR_POLICIES = ("abort", "skip", "stop")


def _is_loggable(sql: str) -> bool:
    """True when ``sql`` parses to a statement that mutates state.

    Statements that fail to parse are not loggable: they cannot have
    executed successfully, so they can never reach the log.
    """
    try:
        statement = parse_statement(sql)
    except Exception:
        return False
    return isinstance(statement, _LOGGED_STATEMENT_TYPES)


def _encode(sql: str) -> str:
    return sql.replace("\\", "\\\\").replace("\n", "\\n")


def _decode(line: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and i + 1 < len(line):
            nxt = line[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _checksum(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")), "08x")


def _format_line(sql: str) -> str:
    payload = _encode(sql)
    return f"{_checksum(payload)}\t{payload}\n"


_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def _split_checksummed(line: str) -> Tuple[Optional[str], str]:
    """Split a log line into ``(crc_hex, payload)``.

    ``crc_hex`` is ``None`` for legacy (pre-checksum) lines. Safe
    because every loggable SQL statement begins with a keyword whose
    first eight characters include non-hex letters.
    """
    if (
        len(line) > 8
        and line[8] == "\t"
        and all(ch in _HEX_DIGITS for ch in line[:8])
    ):
        return line[:8].lower(), line[9:]
    return None, line


class RecoveryReport:
    """What :func:`replay_log` did, beyond the happy path.

    Attached to the recovered database as ``db.recovery_report`` so
    callers can inspect (and operators can log) exactly how recovery
    went: how many statements replayed, which corrupt lines were
    skipped, whether a torn tail was dropped, and where a ``"stop"``
    policy halted.
    """

    def __init__(self, path: str):
        self.path = path
        self.statements_replayed = 0
        #: ``(line_number, reason)`` pairs for lines passed over under
        #: the ``"skip"`` policy.
        self.skipped: List[Tuple[int, str]] = []
        #: Description of a dropped torn tail, or ``None``.
        self.torn_tail: Optional[str] = None
        #: Line number where the ``"stop"`` policy halted, or ``None``.
        self.stopped_at_line: Optional[int] = None

    @property
    def clean(self) -> bool:
        return (
            not self.skipped
            and self.torn_tail is None
            and self.stopped_at_line is None
        )

    def summary(self) -> str:
        parts = [f"replayed {self.statements_replayed} statement(s)"]
        if self.torn_tail is not None:
            parts.append(f"dropped torn tail ({self.torn_tail})")
        if self.skipped:
            parts.append(f"skipped {len(self.skipped)} line(s)")
        if self.stopped_at_line is not None:
            parts.append(f"stopped at line {self.stopped_at_line}")
        return f"{self.path}: " + ", ".join(parts)

    def __repr__(self) -> str:
        return f"RecoveryReport({self.summary()!r})"


class CommandLog:
    """Append-only statement log attached to a database."""

    def __init__(self, database: Database, path: str):
        self.database = database
        self.path = pathlib.Path(path)
        self._pending: List[str] = []
        self._original_execute = database.execute
        self._original_commit = database.commit
        self._original_rollback = database.rollback
        database.execute = self._execute  # type: ignore[method-assign]
        database.commit = self._commit  # type: ignore[method-assign]
        database.rollback = self._rollback  # type: ignore[method-assign]
        self.path.touch()

    # ------------------------------------------------------------------

    def _append(self, statements: List[str]) -> None:
        if not statements:
            return
        with open(self.path, "a") as handle:
            for sql in statements:
                handle.write(_format_line(sql))

    def _execute(self, sql: str, budget=None):
        result = self._original_execute(sql, budget=budget)
        if _is_loggable(sql):
            if self.database.transactions.in_transaction:
                self._pending.append(sql)
            else:
                self._append([sql])
        return result

    def _commit(self):
        self._original_commit()
        self._append(self._pending)
        self._pending = []

    def _rollback(self):
        self._original_rollback()
        self._pending = []

    def detach(self) -> None:
        """Stop logging and restore the database's plain methods."""
        self.database.execute = self._original_execute  # type: ignore
        self.database.commit = self._original_commit  # type: ignore
        self.database.rollback = self._original_rollback  # type: ignore

    def truncate(self) -> None:
        """Reset the log (after taking a snapshot)."""
        self.path.write_text("")


def enable_command_log(database: Database, path: str) -> CommandLog:
    """Attach a command log to ``database``; returns the log handle."""
    return CommandLog(database, path)


def _read_log_lines(log_path: pathlib.Path, report: RecoveryReport):
    """Yield ``(line_number, line)`` for the complete lines of a log.

    Detects a torn tail (file not ending in a newline): the final
    partial line is kept only when it carries a valid checksum (the
    statement was written in full; only the newline was torn off).
    Otherwise the tail is dropped, the file is truncated back to the
    last complete statement, and the drop is recorded on ``report``
    and warned about — recovery continues either way.
    """
    raw = log_path.read_text()
    if not raw:
        return
    torn = not raw.endswith("\n")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    last_number = len(lines)
    for line_number, line in enumerate(lines, start=1):
        if torn and line_number == last_number:
            crc_hex, payload = _split_checksummed(line)
            if crc_hex is not None and crc_hex == _checksum(payload):
                yield line_number, line  # complete; only the \n was lost
                continue
            report.torn_tail = (
                f"line {line_number}: {len(line)} byte(s) after a torn write"
            )
            kept = lines[:-1]
            log_path.write_text("\n".join(kept) + "\n" if kept else "")
            warnings.warn(
                f"{log_path}: dropped torn tail at line {line_number} "
                f"({len(line)} byte(s)); log truncated to last complete "
                "statement",
                stacklevel=3,
            )
            return
        yield line_number, line


def replay_log(
    path: str,
    database: Optional[Database] = None,
    on_error: str = "abort",
) -> Database:
    """Re-execute a command log against ``database`` (new by default).

    ``on_error`` selects the policy for corrupt lines (checksum
    mismatch) and statements that fail to re-execute:

    * ``"abort"`` (default) — raise :class:`~repro.errors.RecoveryError`
      identifying the file and line;
    * ``"skip"`` — record the bad line in the report and keep replaying;
    * ``"stop"`` — keep everything replayed so far and halt at the bad
      line (the report records where).

    A torn final line (crash mid-append) is handled before the policy
    applies: it is dropped and reported, never fatal. The resulting
    database carries the :class:`RecoveryReport` in
    ``db.recovery_report``.
    """
    if on_error not in _ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_POLICIES}, got {on_error!r}"
        )
    db = database or Database()
    log_path = pathlib.Path(path)
    if not log_path.exists():
        raise RecoveryError(f"no command log at {path}")
    report = RecoveryReport(str(path))
    db.recovery_report = report
    for line_number, line in _read_log_lines(log_path, report):
        if not line:
            continue
        crc_hex, payload = _split_checksummed(line)
        if crc_hex is not None and crc_hex != _checksum(payload):
            error: Exception = RecoveryError(
                f"{path}:{line_number}: replay failed: checksum mismatch "
                f"(expected {crc_hex}, computed {_checksum(payload)})"
            )
            if on_error == "abort":
                raise error
            if on_error == "stop":
                report.stopped_at_line = line_number
                return db
            report.skipped.append((line_number, "checksum mismatch"))
            continue
        sql = _decode(payload)
        try:
            db.execute(sql)
        except Exception as error:
            if on_error == "abort":
                raise RecoveryError(
                    f"{path}:{line_number}: replay failed: {error}"
                ) from error
            if on_error == "stop":
                report.stopped_at_line = line_number
                return db
            report.skipped.append((line_number, str(error)))
            continue
        report.statements_replayed += 1
    return db
