"""Command logging: VoltDB-style durability via statement replay.

VoltDB pairs periodic snapshots with a *command log* — the sequence of
statements executed since the last snapshot. Recovery restores the
snapshot and replays the log. This module provides both halves for the
reproduction:

* :class:`CommandLog` appends every successfully committed
  data-changing statement (DDL and DML) to a text file, one statement
  per line (newlines inside literals are escaped);
* :func:`replay_log` re-executes a log against a database;
* :meth:`Database.enable_command_log` wires a log into a database, and
  recovery is ``Database.recover(snapshot=..., command_log=...)``.

Each appended line carries a CRC32 checksum over its escaped payload
(``crc32-hex TAB payload``), so recovery can distinguish a cleanly
written statement from a line mangled by a crash mid-write or by disk
corruption. Logs written before checksums existed (bare payload lines)
are still replayed: a loggable statement starts with a SQL keyword, and
no keyword's first eight characters are all hex digits, so legacy lines
can never be mistaken for checksummed ones.

**Replication framing.** When the log is opened with an ``epoch``
(``enable_command_log(db, path, epoch=1)``), every record additionally
carries the writer's epoch and a monotonically increasing sequence
number: the checksummed payload becomes ``r<epoch>.<seq> TAB statement``.
The sequence number is the global log position (it keeps growing across
epochs and across snapshots/truncations), which is what lets a primary
ship its log to replicas, retransmit from any acknowledged position via
:func:`read_records`, and compare replicas by how caught-up they are.
The checksum covers the frame too, so a corrupted or spliced sequence
number is detected exactly like a corrupted statement. Framing is
opt-in: standalone databases keep writing the compact legacy format,
and :func:`replay_log` replays both.

**Durability policy.** ``sync`` controls when an appended record is
forced to stable storage (``os.fsync``):

* ``"commit"`` (default) — flush **and fsync** before the commit
  returns. An acknowledged transaction survives a process *and* OS
  crash; costs one fsync per commit (the classic group-commit knob).
* ``"batch"`` — flush per commit, fsync every
  ``batch_interval`` commits. A process crash loses nothing (the OS
  has the data); an OS/power crash may lose the tail since the last
  fsync. This is VoltDB's asynchronous command-logging mode.
* ``"off"`` — flush per commit, never fsync explicitly. Same process
  -crash guarantee as ``"batch"``; an OS crash may lose everything
  since the last OS write-back.

A file that does not end in a newline lost its tail to a torn write.
Recovery keeps the final line only if its checksum validates (the
statement was complete; only the newline was lost), otherwise it drops
the tail, truncates the file back to the last complete statement, and
reports what was dropped — recovery always makes progress past a torn
tail.

Statements are logged *post-commit*, so a statement that failed (and was
rolled back) never appears. Explicit transactions log their statements
at commit time; a rollback discards them.

Limitation (documented): programmatic writes that bypass SQL
(``db.load_rows``, raw ``Table`` mutation) are not captured — use SQL or
snapshot after bulk loads, exactly like snapshot-based recovery in the
original system.
"""

from __future__ import annotations

import os
import pathlib
import re
import time
import warnings
import zlib
from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import DurabilityError, RecoveryError
from ..observability import tracing as tracing_module
from ..observability.metrics import recording_registry
from ..resilience.faults import (
    SITE_LOG_FSYNC,
    SITE_LOG_TRUNCATE,
    SITE_LOG_WRITE,
    FaultyIO,
    check_site,
)
from ..resilience.retry import RetryPolicy
from ..sql.parser import parse_statement
from .database import WRITE_STATEMENT_TYPES, Database


def default_fsync_retry() -> RetryPolicy:
    """The bounded fsync retry: 3 attempts, milliseconds apart.

    Deliberately tight — a transient EIO (one bad scheduling of a
    flaky controller) is absorbed; a disk that fails three fsyncs in a
    row is not getting better in microseconds, and per fsyncgate the
    only honest response is to stop acknowledging writes (degrade).
    """
    return RetryPolicy(
        base_delay=0.005, max_delay=0.05, multiplier=2.0, jitter=0.0,
        max_attempts=3,
    )

#: Statement types that must be replayed on recovery. Matching on the
#: parsed AST (rather than on a leading keyword) classifies statements
#: with leading comments or unusual whitespace correctly. Shared with
#: the replica read-only enforcement in :mod:`repro.core.database`.
_LOGGED_STATEMENT_TYPES = WRITE_STATEMENT_TYPES

_ON_ERROR_POLICIES = ("abort", "skip", "stop")
_SYNC_POLICIES = ("commit", "batch", "off")


def _is_loggable(sql: str) -> bool:
    """True when ``sql`` parses to a statement that mutates state.

    Statements that fail to parse are not loggable: they cannot have
    executed successfully, so they can never reach the log.
    """
    try:
        statement = parse_statement(sql)
    except Exception:
        return False
    return isinstance(statement, _LOGGED_STATEMENT_TYPES)


def _encode(sql: str) -> str:
    return sql.replace("\\", "\\\\").replace("\n", "\\n")


def _decode(line: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and i + 1 < len(line):
            nxt = line[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _checksum(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")), "08x")


def _format_line(sql: str) -> str:
    payload = _encode(sql)
    return f"{_checksum(payload)}\t{payload}\n"


# A framed payload: r<epoch>.<sequence> TAB encoded-statement. The "r"
# marker can never start a legacy payload that means something else —
# loggable SQL begins with a keyword, never "r<digits>.<digits>\t".
_FRAME_RE = re.compile(r"^r(\d+)\.(\d+)\t")


def frame_body(epoch: int, sequence: int, sql: str) -> str:
    """The checksummed body of a framed record (also the unit shipped
    to replicas — both sides checksum exactly this string)."""
    return f"r{epoch}.{sequence}\t{_encode(sql)}"


def format_record(epoch: int, sequence: int, sql: str) -> str:
    body = frame_body(epoch, sequence, sql)
    return f"{_checksum(body)}\t{body}\n"


def _parse_frame(payload: str) -> Optional[Tuple[int, int, str]]:
    """``(epoch, sequence, encoded_sql)`` if ``payload`` is framed."""
    match = _FRAME_RE.match(payload)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2)), payload[match.end():]


class LogRecord:
    """One framed command-log entry: the unit of log shipping."""

    __slots__ = ("epoch", "sequence", "sql")

    def __init__(self, epoch: int, sequence: int, sql: str):
        self.epoch = epoch
        self.sequence = sequence
        self.sql = sql

    def body(self) -> str:
        return frame_body(self.epoch, self.sequence, self.sql)

    def checksum(self) -> str:
        return _checksum(self.body())

    def __repr__(self) -> str:
        return f"LogRecord(e{self.epoch}.{self.sequence}, {self.sql!r})"


_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def _split_checksummed(line: str) -> Tuple[Optional[str], str]:
    """Split a log line into ``(crc_hex, payload)``.

    ``crc_hex`` is ``None`` for legacy (pre-checksum) lines. Safe
    because every loggable SQL statement begins with a keyword whose
    first eight characters include non-hex letters.
    """
    if (
        len(line) > 8
        and line[8] == "\t"
        and all(ch in _HEX_DIGITS for ch in line[:8])
    ):
        return line[:8].lower(), line[9:]
    return None, line


class RecoveryReport:
    """What :func:`replay_log` did, beyond the happy path.

    Attached to the recovered database as ``db.recovery_report`` so
    callers can inspect (and operators can log) exactly how recovery
    went: how many statements replayed, which corrupt lines were
    skipped, whether a torn tail was dropped, and where a ``"stop"``
    policy halted.
    """

    def __init__(self, path: str):
        self.path = path
        self.statements_replayed = 0
        #: ``(line_number, reason)`` pairs for lines passed over under
        #: the ``"skip"`` policy.
        self.skipped: List[Tuple[int, str]] = []
        #: Description of a dropped torn tail, or ``None``.
        self.torn_tail: Optional[str] = None
        #: Line number where the ``"stop"`` policy halted, or ``None``.
        self.stopped_at_line: Optional[int] = None
        #: Replication position of the last framed record replayed
        #: (``None`` for legacy/unframed logs).
        self.last_epoch: Optional[int] = None
        self.last_sequence: Optional[int] = None

    @property
    def clean(self) -> bool:
        return (
            not self.skipped
            and self.torn_tail is None
            and self.stopped_at_line is None
        )

    def summary(self) -> str:
        parts = [f"replayed {self.statements_replayed} statement(s)"]
        if self.last_sequence is not None:
            parts.append(
                f"through e{self.last_epoch}.{self.last_sequence}"
            )
        if self.torn_tail is not None:
            parts.append(f"dropped torn tail ({self.torn_tail})")
        if self.skipped:
            parts.append(f"skipped {len(self.skipped)} line(s)")
        if self.stopped_at_line is not None:
            parts.append(f"stopped at line {self.stopped_at_line}")
        return f"{self.path}: " + ", ".join(parts)

    def __repr__(self) -> str:
        return f"RecoveryReport({self.summary()!r})"


class _LogFile:
    """An append handle over a log file with a durability policy.

    The handle stays open for the log's lifetime so the ``sync``
    policy is meaningful: every append is flushed to the OS (other
    processes — and crash recovery — always see complete statements),
    and ``os.fsync`` is issued per the policy documented in the module
    docstring. ``fsync_count`` is exposed so tests (and benchmarks) can
    observe the durability/throughput tradeoff directly.
    """

    def __init__(
        self,
        path: str,
        sync: str = "commit",
        batch_interval: int = 64,
        io: Optional[FaultyIO] = None,
        fsync_retry: Optional[RetryPolicy] = None,
    ):
        if sync not in _SYNC_POLICIES:
            raise ValueError(
                f"sync must be one of {_SYNC_POLICIES}, got {sync!r}"
            )
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        self.path = pathlib.Path(path)
        self.path.touch()
        self.sync = sync
        self.batch_interval = batch_interval
        self.fsync_count = 0
        #: Transient fsync failures absorbed by the bounded retry.
        self.fsync_retries = 0
        self._unsynced_batches = 0
        self._io = io  # explicit injector; ambient one used when None
        self._fsync_retry = fsync_retry or default_fsync_retry()
        self._handle = open(self.path, "a")

    def write_line(self, line: str) -> None:
        check_site(SITE_LOG_WRITE, handle=self._handle, data=line, io=self._io)
        self._handle.write(line)

    def commit_batch(self) -> None:
        """One commit's worth of lines was written; make it durable."""
        self._handle.flush()
        if self.sync == "commit":
            self._fsync()
        elif self.sync == "batch":
            self._unsynced_batches += 1
            if self._unsynced_batches >= self.batch_interval:
                self._fsync()

    def sync_now(self) -> None:
        """Force an fsync regardless of policy (checkpoint, shutdown)."""
        self._handle.flush()
        self._fsync()

    def _fsync(self) -> None:
        """fsync with the bounded retry; OSError here means the retry
        was exhausted and the disk is genuinely refusing durability."""
        started = time.perf_counter()

        def attempt() -> None:
            check_site(SITE_LOG_FSYNC, io=self._io)
            os.fsync(self._handle.fileno())

        def note_retry(_attempt: int, _error: BaseException) -> None:
            self.fsync_retries += 1
            retry_registry = recording_registry()
            if retry_registry is not None:
                retry_registry.counter(
                    "repro_fsync_retries_total",
                    help="Transient fsync failures absorbed by the "
                    "bounded retry.",
                ).inc()

        self._fsync_retry.call(attempt, retry_on=(OSError,), on_retry=note_retry)
        self.fsync_count += 1
        self._unsynced_batches = 0
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_commandlog_fsyncs_total",
                help="Command-log fsync() calls issued.",
            ).inc()
            registry.histogram(
                "repro_commandlog_fsync_ms",
                help="Command-log fsync() latency in milliseconds.",
            ).observe(elapsed_ms)
        # a traced write sees its durability cost as a span (the writer
        # thread carries the statement's trace context here)
        tracing_module.record_span("log.fsync", elapsed_ms)

    def truncate(self) -> None:
        check_site(SITE_LOG_TRUNCATE, io=self._io)
        self._handle.flush()
        self._handle.truncate(0)

    def close(self) -> None:
        if not self._handle.closed:
            try:
                self._handle.flush()
            except OSError:
                pass  # best effort: closing a handle over a broken disk
            try:
                self._handle.close()
            except OSError:
                pass


class CommandLog:
    """Append-only statement log attached to a database.

    With ``epoch`` set, records are framed with ``(epoch, sequence)``
    for replication; ``pre_append_hook`` and ``on_record`` are the
    replication attachment points (crash-point instrumentation and log
    shipping, respectively) and stay ``None`` for standalone use.
    """

    def __init__(
        self,
        database: Database,
        path: str,
        sync: str = "commit",
        epoch: Optional[int] = None,
        batch_interval: int = 64,
        io: Optional[FaultyIO] = None,
        fsync_retry: Optional[RetryPolicy] = None,
    ):
        self.database = database
        self._file = _LogFile(
            path, sync=sync, batch_interval=batch_interval,
            io=io, fsync_retry=fsync_retry,
        )
        self.path = self._file.path
        #: The OSError that last degraded this log, for ``\health``.
        self.last_durable_error: Optional[str] = None
        self.epoch = epoch
        self.last_sequence = 0
        #: Sequence number at the last truncation: records with
        #: ``sequence <= base_sequence`` are no longer in this file
        #: (they are covered by the snapshot taken before truncating).
        self.base_sequence = 0
        #: Called after a commit decides to log, before anything is
        #: written (replication installs a crash-point probe here).
        self.pre_append_hook: Optional[Callable[[], None]] = None
        #: Called once per durable framed record (replication ships it).
        self.on_record: Optional[Callable[[LogRecord], None]] = None
        if epoch is not None:
            for record in read_records(self.path):
                self.last_sequence = max(self.last_sequence, record.sequence)
        self._pending: List[str] = []
        self._original_execute = database.execute
        self._original_commit = database.commit
        self._original_rollback = database.rollback
        database.execute = self._execute  # type: ignore[method-assign]
        database.commit = self._commit  # type: ignore[method-assign]
        database.rollback = self._rollback  # type: ignore[method-assign]

    # ------------------------------------------------------------------

    @property
    def sync(self) -> str:
        return self._file.sync

    @property
    def fsync_count(self) -> int:
        return self._file.fsync_count

    @property
    def fsync_retries(self) -> int:
        return self._file.fsync_retries

    def sync_now(self) -> None:
        self._file.sync_now()

    def _append(self, statements: List[str]) -> None:
        if not statements:
            return
        if self.pre_append_hook is not None:
            self.pre_append_hook()
        records: List[LogRecord] = []
        try:
            for sql in statements:
                if self.epoch is None:
                    self._file.write_line(_format_line(sql))
                else:
                    self.last_sequence += 1
                    record = LogRecord(self.epoch, self.last_sequence, sql)
                    self._file.write_line(
                        format_record(record.epoch, record.sequence, record.sql)
                    )
                    records.append(record)
            self._file.commit_batch()
        except OSError as error:
            # A SimulatedCrash passes straight through (the process is
            # "dead"); an OSError is the disk refusing durability after
            # the bounded retry — degrade instead of acknowledging.
            self._durability_failure(error)
        if self.on_record is not None:
            for record in records:
                self.on_record(record)

    def _durability_failure(self, error: OSError) -> None:
        """The durable-write path failed: record it, degrade the
        database, and refuse the acknowledgement.

        The statement's in-memory effect may be visible until recovery
        discards it — that does not break the contract, which is
        *acknowledged ⇒ durable*, and this statement is precisely the
        one never acknowledged.
        """
        self.last_durable_error = f"{type(error).__name__}: {error}"
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_durability_failures_total",
                help="Durable-write failures that degraded the engine.",
            ).inc()
        health = getattr(self.database, "health", None)
        if health is not None:
            health.mark_degraded(
                "command-log append failed; entering read-only mode",
                error=error,
            )
        raise DurabilityError(
            f"durable write to {self.path} failed ({error}); the database "
            "is now DEGRADED (read-only) — the statement was not "
            "acknowledged and will not survive recovery"
        ) from error

    def _execute(self, sql: str, budget=None, **kwargs):
        result = self._original_execute(sql, budget=budget, **kwargs)
        if _is_loggable(sql):
            if self.database.transactions.in_transaction:
                self._pending.append(sql)
            else:
                self._append([sql])
        return result

    def _commit(self):
        self._original_commit()
        # Swap before appending: if the append fails (degraded mode),
        # the next commit must not re-append — or double-apply — these
        # statements.
        pending, self._pending = self._pending, []
        self._append(pending)

    def _rollback(self):
        self._original_rollback()
        self._pending = []

    def detach(self) -> None:
        """Stop logging and restore the database's plain methods."""
        self.database.execute = self._original_execute  # type: ignore
        self.database.commit = self._original_commit  # type: ignore
        self.database.rollback = self._original_rollback  # type: ignore
        self._file.close()

    def truncate(self) -> None:
        """Reset the log (after taking a snapshot).

        Sequence numbers keep counting from where they were — the log
        position is global, so replicas bootstrapped from the snapshot
        resume the stream seamlessly.
        """
        self._file.truncate()
        self.base_sequence = self.last_sequence


class FramedLogWriter:
    """A replica's durable log of *applied* records.

    Unlike :class:`CommandLog` this does not hook a database and does
    not assign sequence numbers: records are written with the exact
    ``(epoch, sequence)`` the primary assigned, after they have been
    applied locally. On restart the replica replays this file to
    recover its position; on promotion a :class:`CommandLog` opened
    over the same file continues the sequence where the primary left
    off.
    """

    def __init__(self, path: str, sync: str = "commit"):
        self._file = _LogFile(path, sync=sync)
        self.path = self._file.path
        self.last_epoch = 0
        self.last_sequence = 0
        for record in read_records(self.path):
            self.last_epoch = record.epoch
            self.last_sequence = max(self.last_sequence, record.sequence)

    @property
    def fsync_count(self) -> int:
        return self._file.fsync_count

    def append(self, epoch: int, sequence: int, sql: str) -> None:
        self._file.write_line(format_record(epoch, sequence, sql))
        self._file.commit_batch()
        self.last_epoch = epoch
        self.last_sequence = sequence

    def truncate(self) -> None:
        """Reset after a re-bootstrap (the snapshot supersedes the log)."""
        self._file.truncate()
        self.last_epoch = 0
        self.last_sequence = 0

    def close(self) -> None:
        self._file.close()


def enable_command_log(
    database: Database,
    path: str,
    sync: str = "commit",
    epoch: Optional[int] = None,
    batch_interval: int = 64,
    io: Optional[FaultyIO] = None,
    fsync_retry: Optional[RetryPolicy] = None,
) -> CommandLog:
    """Attach a command log to ``database``; returns the log handle.

    ``sync`` selects the durability policy (``"commit"`` | ``"batch"``
    | ``"off"``, see the module docstring) and ``batch_interval`` the
    commits-per-fsync under ``"batch"``; ``epoch`` enables replication
    framing; ``io`` / ``fsync_retry`` override the fault injector and
    the bounded fsync retry policy (tests).
    """
    return CommandLog(
        database, path, sync=sync, epoch=epoch,
        batch_interval=batch_interval, io=io, fsync_retry=fsync_retry,
    )


def _complete_lines(raw: str) -> Tuple[List[str], bool]:
    """``(lines, torn)`` — the log's lines and whether the tail is torn."""
    torn = not raw.endswith("\n")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines, torn


def read_records(
    path: str, from_sequence: int = 0
) -> Iterator[LogRecord]:
    """Stream the valid framed records of a command log.

    This is the shipping/retransmission reader: a primary uses it to
    re-send every record a lagging replica has not acknowledged
    (``from_sequence`` = the replica's acknowledged position). It is
    strictly read-only — corrupt, legacy and torn lines are passed
    over without modifying the file (recovery's truncation behavior
    lives in :func:`replay_log`).
    """
    log_path = pathlib.Path(path)
    if not log_path.exists():
        return
    lines, torn = _complete_lines(log_path.read_text())
    last_number = len(lines)
    for line_number, line in enumerate(lines, start=1):
        if not line:
            continue
        crc_hex, payload = _split_checksummed(line)
        if crc_hex is None or crc_hex != _checksum(payload):
            if torn and line_number == last_number:
                return  # torn tail, nothing after it
            continue  # legacy or corrupt line: not shippable
        frame = _parse_frame(payload)
        if frame is None:
            continue
        epoch, sequence, encoded = frame
        if sequence > from_sequence:
            yield LogRecord(epoch, sequence, _decode(encoded))


def _read_log_lines(log_path: pathlib.Path, report: RecoveryReport):
    """Yield ``(line_number, line)`` for the complete lines of a log.

    Detects a torn tail (file not ending in a newline): the final
    partial line is kept only when it carries a valid checksum (the
    statement was written in full; only the newline was torn off).
    Otherwise the tail is dropped, the file is truncated back to the
    last complete statement, and the drop is recorded on ``report``
    and warned about — recovery continues either way.
    """
    raw = log_path.read_text()
    if not raw:
        return
    lines, torn = _complete_lines(raw)
    last_number = len(lines)
    for line_number, line in enumerate(lines, start=1):
        if torn and line_number == last_number:
            crc_hex, payload = _split_checksummed(line)
            if crc_hex is not None and crc_hex == _checksum(payload):
                yield line_number, line  # complete; only the \n was lost
                continue
            report.torn_tail = (
                f"line {line_number}: {len(line)} byte(s) after a torn write"
            )
            kept = lines[:-1]
            log_path.write_text("\n".join(kept) + "\n" if kept else "")
            warnings.warn(
                f"{log_path}: dropped torn tail at line {line_number} "
                f"({len(line)} byte(s)); log truncated to last complete "
                "statement",
                stacklevel=3,
            )
            return
        yield line_number, line


def replay_log(
    path: str,
    database: Optional[Database] = None,
    on_error: str = "abort",
    from_sequence: int = 0,
) -> Database:
    """Re-execute a command log against ``database`` (new by default).

    ``from_sequence`` skips framed records at or below that position —
    the checkpoint-recovery contract: a snapshot embedding replication
    position S means every record with ``sequence <= S`` is already in
    the snapshot, and replaying it again would double-apply (a crash
    between the snapshot rename and the log truncation leaves exactly
    that overlap on disk). Legacy unframed lines carry no position and
    are always replayed.

    ``on_error`` selects the policy for corrupt lines (checksum
    mismatch) and statements that fail to re-execute:

    * ``"abort"`` (default) — raise :class:`~repro.errors.RecoveryError`
      identifying the file and line;
    * ``"skip"`` — record the bad line in the report and keep replaying;
    * ``"stop"`` — keep everything replayed so far and halt at the bad
      line (the report records where).

    A torn final line (crash mid-append) is handled before the policy
    applies: it is dropped and reported, never fatal. The resulting
    database carries the :class:`RecoveryReport` in
    ``db.recovery_report``; for framed (replicated) logs the report
    also records the last ``(epoch, sequence)`` replayed.
    """
    if on_error not in _ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_POLICIES}, got {on_error!r}"
        )
    db = database or Database()
    log_path = pathlib.Path(path)
    if not log_path.exists():
        raise RecoveryError(f"no command log at {path}")
    report = RecoveryReport(str(path))
    db.recovery_report = report
    for line_number, line in _read_log_lines(log_path, report):
        if not line:
            continue
        crc_hex, payload = _split_checksummed(line)
        if crc_hex is not None and crc_hex != _checksum(payload):
            error: Exception = RecoveryError(
                f"{path}:{line_number}: replay failed: checksum mismatch "
                f"(expected {crc_hex}, computed {_checksum(payload)})"
            )
            if on_error == "abort":
                raise error
            if on_error == "stop":
                report.stopped_at_line = line_number
                return db
            report.skipped.append((line_number, "checksum mismatch"))
            continue
        frame = _parse_frame(payload) if crc_hex is not None else None
        if frame is not None:
            epoch, sequence, payload = frame
            if sequence <= from_sequence:
                continue  # already covered by the snapshot
        sql = _decode(payload)
        try:
            db.apply_replicated(sql)
        except Exception as error:
            if on_error == "abort":
                raise RecoveryError(
                    f"{path}:{line_number}: replay failed: {error}"
                ) from error
            if on_error == "stop":
                report.stopped_at_line = line_number
                return db
            report.skipped.append((line_number, str(error)))
            continue
        report.statements_replayed += 1
        if frame is not None:
            report.last_epoch = epoch
            report.last_sequence = sequence
    return db
