"""Command logging: VoltDB-style durability via statement replay.

VoltDB pairs periodic snapshots with a *command log* — the sequence of
statements executed since the last snapshot. Recovery restores the
snapshot and replays the log. This module provides both halves for the
reproduction:

* :class:`CommandLog` appends every successfully committed
  data-changing statement (DDL and DML) to a text file, one statement
  per line (newlines inside literals are escaped);
* :func:`replay_log` re-executes a log against a database;
* :meth:`Database.enable_command_log` wires a log into a database, and
  recovery is ``Database.load_snapshot(snap) `` + ``replay_log(log)``.

Statements are logged *post-commit*, so a statement that failed (and was
rolled back) never appears. Explicit transactions log their statements
at commit time; a rollback discards them.

Limitation (documented): programmatic writes that bypass SQL
(``db.load_rows``, raw ``Table`` mutation) are not captured — use SQL or
snapshot after bulk loads, exactly like snapshot-based recovery in the
original system.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

from ..errors import ExecutionError
from .database import Database

_LOGGED_STATEMENTS = (
    "CREATE",
    "ALTER",
    "DROP",
    "INSERT",
    "UPDATE",
    "DELETE",
    "TRUNCATE",
)


def _is_loggable(sql: str) -> bool:
    stripped = sql.lstrip().upper()
    return stripped.startswith(_LOGGED_STATEMENTS)


def _encode(sql: str) -> str:
    return sql.replace("\\", "\\\\").replace("\n", "\\n")


def _decode(line: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and i + 1 < len(line):
            nxt = line[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


class CommandLog:
    """Append-only statement log attached to a database."""

    def __init__(self, database: Database, path: str):
        self.database = database
        self.path = pathlib.Path(path)
        self._pending: List[str] = []
        self._original_execute = database.execute
        self._original_commit = database.commit
        self._original_rollback = database.rollback
        database.execute = self._execute  # type: ignore[method-assign]
        database.commit = self._commit  # type: ignore[method-assign]
        database.rollback = self._rollback  # type: ignore[method-assign]
        self.path.touch()

    # ------------------------------------------------------------------

    def _append(self, statements: List[str]) -> None:
        if not statements:
            return
        with open(self.path, "a") as handle:
            for sql in statements:
                handle.write(_encode(sql) + "\n")

    def _execute(self, sql: str):
        result = self._original_execute(sql)
        if _is_loggable(sql):
            if self.database.transactions.in_transaction:
                self._pending.append(sql)
            else:
                self._append([sql])
        return result

    def _commit(self):
        self._original_commit()
        self._append(self._pending)
        self._pending = []

    def _rollback(self):
        self._original_rollback()
        self._pending = []

    def detach(self) -> None:
        """Stop logging and restore the database's plain methods."""
        self.database.execute = self._original_execute  # type: ignore
        self.database.commit = self._original_commit  # type: ignore
        self.database.rollback = self._original_rollback  # type: ignore

    def truncate(self) -> None:
        """Reset the log (after taking a snapshot)."""
        self.path.write_text("")


def enable_command_log(database: Database, path: str) -> CommandLog:
    """Attach a command log to ``database``; returns the log handle."""
    return CommandLog(database, path)


def replay_log(
    path: str, database: Optional[Database] = None
) -> Database:
    """Re-execute a command log against ``database`` (new by default)."""
    db = database or Database()
    log_path = pathlib.Path(path)
    if not log_path.exists():
        raise ExecutionError(f"no command log at {path}")
    with open(log_path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            sql = _decode(line)
            try:
                db.execute(sql)
            except Exception as error:
                raise ExecutionError(
                    f"{path}:{line_number}: replay failed: {error}"
                ) from error
    return db
