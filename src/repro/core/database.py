"""The GRFusion database façade.

One :class:`Database` instance is one in-memory database: tables,
materialized views, graph views, and a SQL interface covering the
paper's dialect::

    db = Database()
    db.execute("CREATE TABLE Users (uId INTEGER PRIMARY KEY, lName VARCHAR)")
    db.execute("CREATE TABLE Rel (relId INTEGER PRIMARY KEY, "
               "uId INTEGER, uId2 INTEGER, sDate INTEGER)")
    db.execute(
        "CREATE UNDIRECTED GRAPH VIEW SocialNetwork "
        "VERTEXES(ID = uId, lstName = lName) FROM Users "
        "EDGES(ID = relId, FROM = uId, TO = uId2, sdate = sDate) FROM Rel")
    db.execute("SELECT PS.EndVertex.lstName FROM Users U, "
               "SocialNetwork.Paths PS "
               "WHERE PS.StartVertex.Id = U.uId AND PS.Length = 2")

Statements run in an implicit transaction unless one was opened with
:meth:`Database.begin`; on error all effects (including graph-view
topology changes) are rolled back.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import budget as budget_module
from ..budget import CancellationToken, QueryBudget
from ..errors import (
    CatalogError,
    DegradedError,
    ExecutionError,
    PlanningError,
    QueryCancelledError,
    ReadOnlyError,
    ResourceExhaustedError,
)
from ..expr.compile import ExpressionCompiler
from ..expr.scope import RelationBinding, Scope
from ..graph.graph_view import GraphView, build_graph_view
from ..observability import context as observability_context
from ..observability import tracer as tracer_module
from ..observability import tracing as tracing_module
from ..observability.metrics import recording_registry
from ..observability.slowlog import SlowQueryLog
from ..observability.tracer import QueryTracer
from ..planner.options import PlannerOptions
from ..resilience.health import HealthMonitor
from ..planner.rewrite import find_relational_aggregates
from ..planner.select_planner import PlannedQuery, SelectPlanner
from ..sql import ast, parse_script, parse_statement
from ..storage.catalog import Catalog
from ..storage.index import HashIndex, OrderedIndex
from ..storage.schema import Column, TableSchema
from ..storage.table import Table
from ..txn.transactions import TransactionManager, UndoListener
from ..types import SqlType
from .result import ResultSet
from .views import MaterializedView


_STREAM_DONE = object()  # sentinel: stream() iterator exhausted

#: Statement types that mutate durable state. The command log replays
#: exactly these on recovery, and a database in the ``"replica"`` role
#: rejects them unless they arrive through :meth:`Database.apply_replicated`.
WRITE_STATEMENT_TYPES = (
    ast.CreateTable,
    ast.CreateIndex,
    ast.CreateView,
    ast.CreateGraphView,
    ast.AlterGraphViewAddSource,
    ast.Drop,
    ast.Insert,
    ast.Update,
    ast.Delete,
    ast.Truncate,
)

#: Valid values for :attr:`Database.role`.
ROLES = ("standalone", "primary", "replica")


def statement_is_write(statement: ast.Statement) -> bool:
    """True when a parsed statement mutates durable state.

    This is the engine's single read/write classification point: the
    command log uses it to decide what to record, replicas use it to
    reject client writes, and the network server uses it to route a
    statement either to the single-writer scheduler (writes, serialized)
    or to the calling session thread (reads, concurrent).
    """
    return isinstance(statement, WRITE_STATEMENT_TYPES)


def sql_is_write(sql: str) -> bool:
    """Classify raw SQL; statements that fail to parse are not writes
    (they can never execute, let alone mutate anything)."""
    try:
        return statement_is_write(parse_statement(sql))
    except Exception:
        return False


class Database:
    """An in-memory relational database with native graph views."""

    def __init__(
        self,
        planner_options: Optional[PlannerOptions] = None,
        budget: Optional[QueryBudget] = None,
    ):
        self.catalog = Catalog()
        self.transactions = TransactionManager()
        self.planner_options = planner_options or PlannerOptions()
        self.budget = budget
        self.recovery_report = None  # set by Database.recover / replay_log
        #: Replication role: "standalone" (default), "primary", or
        #: "replica". Replicas reject client writes (see set_role).
        self.role = "standalone"
        self._replica_apply_depth = 0
        #: Engine health: a durable-write failure flips this to
        #: DEGRADED and the database becomes read-only (see
        #: :mod:`repro.resilience.health`).
        self.health = HealthMonitor()
        #: Replication position embedded in the snapshot this database
        #: was restored from (``{"epoch": E, "sequence": S}`` or None);
        #: set by :func:`~repro.core.snapshot.restore_into` so recovery
        #: replays only the log records past the snapshot.
        self.snapshot_replication: Optional[Dict[str, Any]] = None
        self._undo_listener = UndoListener(self.transactions)
        #: Bounded log of statements slower than the configured
        #: threshold (off until :meth:`set_slow_query_threshold`).
        self.slow_queries = SlowQueryLog()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def set_role(self, role: str) -> None:
        """Set the replication role of this database.

        ``"replica"`` makes the database read-only for clients: any
        data-changing statement raises
        :class:`~repro.errors.ReadOnlyError`. Replication applies the
        primary's shipped statements through :meth:`apply_replicated`,
        which is exempt — the log stream is the *only* write path on a
        replica, which is what keeps replicas convergent.
        """
        if role not in ROLES:
            raise ValueError(f"role must be one of {ROLES}, got {role!r}")
        self.role = role

    def apply_replicated(
        self, sql: str, budget: Optional[QueryBudget] = None
    ) -> ResultSet:
        """Replica apply hook: execute one replicated statement even
        though the database's role is ``"replica"``.

        This is the single write entry point replication uses when it
        applies the primary's command-log stream through the ordinary
        replay path; client-facing code must use :meth:`execute`.
        """
        self._replica_apply_depth += 1
        try:
            return self.execute(sql, budget=budget)
        finally:
            self._replica_apply_depth -= 1

    def set_budget(self, budget: Optional[QueryBudget]) -> None:
        """Install (or clear, with ``None``) the database-level budget.

        Every subsequent statement runs under the tightest combination
        of this budget, the planner-options budget, and any
        per-statement budget passed to :meth:`execute`.
        """
        self.budget = budget

    def _effective_budget(
        self, statement_budget: Optional[QueryBudget]
    ) -> Optional[QueryBudget]:
        return QueryBudget.tightest(
            self.planner_options.budget, self.budget, statement_budget
        )

    def _start_token(
        self, statement_budget: Optional[QueryBudget]
    ) -> Optional[CancellationToken]:
        effective = self._effective_budget(statement_budget)
        if effective is None or effective.is_unlimited():
            return None
        return effective.start()

    def execute(
        self,
        sql: str,
        budget: Optional[QueryBudget] = None,
        token: Optional[CancellationToken] = None,
    ) -> ResultSet:
        """Parse and run one SQL statement.

        ``budget`` adds per-statement resource limits on top of any
        database-level or planner-level budget (tightest knob wins); an
        exhausted budget raises
        :class:`~repro.errors.ResourceExhaustedError` and rolls the
        implicit transaction back to a consistent state.

        ``token`` supplies an externally owned
        :class:`~repro.budget.CancellationToken` instead of starting a
        fresh one — the network server passes the session's token here
        so a client disconnect can cancel the running statement. When
        given, it overrides ``budget`` (the caller already combined the
        budget levels when it started the token).
        """
        statement = parse_statement(sql)
        kind = type(statement).__name__
        started = time.perf_counter()
        try:
            if token is None:
                token = self._start_token(budget)
            if token is None:
                result = self._execute_statement(statement)
            else:
                with budget_module.activate(token):
                    result = self._execute_statement(statement, token)
        except (ResourceExhaustedError, QueryCancelledError) as exc:
            self._record_statement_abort(kind, exc)
            raise
        self._record_statement(sql, kind, started, result)
        return result

    def set_slow_query_threshold(self, threshold_ms: Optional[float]) -> None:
        """Record statements slower than ``threshold_ms`` in
        :attr:`slow_queries` (``None`` disables the log)."""
        self.slow_queries.set_threshold(threshold_ms)

    def _record_statement(
        self, sql: str, kind: str, started: float, result: ResultSet
    ) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_statements_total",
                help="Statements executed, by AST kind.",
                kind=kind,
            ).inc()
            registry.histogram(
                "repro_statement_duration_ms",
                help="End-to-end statement latency in milliseconds.",
            ).observe(elapsed_ms)
        rows = len(result.rows) if result.rows else 0
        session = observability_context.current_session_label()
        trace = tracing_module.current_trace()
        if trace is not None:
            # the execution span: parse + plan + run, as measured here
            tracing_module.record_span(
                "db.execute",
                elapsed_ms,
                context=trace,
                kind=kind,
                rows=rows,
                session=session or None,
            )
        if self.slow_queries.observe(
            sql,
            elapsed_ms,
            rows,
            kind,
            session,
            trace_id=trace.trace_id if trace is not None else "",
            node=tracing_module.current_node_label(),
        ):
            if registry is not None:
                registry.counter(
                    "repro_slow_queries_total",
                    help="Statements recorded by the slow-query log.",
                ).inc()

    def _record_statement_abort(self, kind: str, exc: BaseException) -> None:
        cause = type(exc).__name__
        registry = recording_registry()
        if registry is not None:
            registry.counter(
                "repro_statement_aborts_total",
                help="Statements aborted by the resource governor.",
                cause=cause,
                kind=kind,
            ).inc()
        tracer = tracer_module.current_tracer()
        if tracer is not None:
            tracer.record_abort(f"{cause}: {exc}")

    def execute_script(
        self, sql: str, budget: Optional[QueryBudget] = None
    ) -> List[ResultSet]:
        """Run a ``;``-separated sequence of statements.

        The ``budget`` (if any) applies to each statement individually,
        matching :meth:`execute` semantics.
        """
        results: List[ResultSet] = []
        for statement in parse_script(sql):
            token = self._start_token(budget)
            if token is None:
                results.append(self._execute_statement(statement))
            else:
                with budget_module.activate(token):
                    results.append(self._execute_statement(statement, token))
        return results

    def prepare(self, sql: str) -> "PreparedQuery":
        """Plan a parameterized SELECT once; execute it many times.

        ``?`` placeholders bind positionally::

            reach = db.prepare(
                "SELECT PS.PathString FROM G.Paths PS "
                "WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ? "
                "LIMIT 1")
            reach.execute(1, 9)

        This is the VoltDB stored-procedure execution model the paper's
        measurements assume: parsing and planning are paid once, not per
        query.
        """
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise PlanningError("only SELECT statements can be prepared")
        return PreparedQuery(self, statement)

    def stream(self, sql: str, budget: Optional[QueryBudget] = None):
        """Execute a SELECT and yield result rows lazily.

        Unlike :meth:`execute`, nothing is materialized: rows are pulled
        through the operator pipeline on demand, so a consumer that
        stops early (or a query over a huge path enumeration) only pays
        for what it reads. The row layout matches ``execute(...).rows``.

        A ``budget`` (or database/planner-level budget) is enforced per
        pull; note the wall-clock deadline covers the generator's whole
        lifetime, including time the consumer spends suspended.
        """
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise PlanningError("stream() only supports SELECT statements")
        planned = self._plan_select(statement)
        token = self._start_token(budget)
        if token is None:
            for row in planned.operator:
                yield tuple(row)
            return
        iterator = iter(planned.operator)
        try:
            while True:
                # the ambient token is scoped to each pull, so interleaved
                # statements (or other streams) govern themselves correctly
                with budget_module.activate(token):
                    row = next(iterator, _STREAM_DONE)
                    if row is _STREAM_DONE:
                        return
                    token.tick_rows()
                yield tuple(row)
        finally:
            # closing the generator early (or an exception escaping a
            # pull) must never strand the token on the ambient stack,
            # where it would govern unrelated statements
            budget_module.deactivate(token)

    def explain(
        self,
        sql: str,
        analyze: bool = False,
        budget: Optional[QueryBudget] = None,
    ) -> str:
        """The physical plan of a SELECT, one operator per line.

        With ``analyze=True`` (or an ``EXPLAIN ANALYZE ...`` statement)
        the query is actually executed under a
        :class:`~repro.observability.tracer.QueryTracer` and every plan
        node is annotated with its actual row count, ``next()`` calls,
        restarts and inclusive elapsed time; traversal scans additionally
        report paths/vertices/edges visited and the frontier peak. A
        leading ``EXPLAIN [ANALYZE]`` in ``sql`` itself is accepted and
        unwrapped, so ``db.explain("EXPLAIN ANALYZE SELECT ...")`` and
        ``db.explain("SELECT ...", analyze=True)`` are equivalent.
        """
        statement = parse_statement(sql)
        if isinstance(statement, ast.Explain):
            analyze = analyze or statement.analyze
            statement = statement.statement
        return self._explain_statement(statement, analyze, budget)

    def _explain_statement(
        self,
        statement: ast.Statement,
        analyze: bool,
        budget: Optional[QueryBudget] = None,
    ) -> str:
        if not isinstance(statement, ast.Select):
            raise PlanningError(
                "EXPLAIN is only supported for SELECT "
                f"(got {type(statement).__name__})"
            )
        planned = self._plan_select(statement)
        if not analyze:
            return planned.explain()
        return self._explain_analyze(planned, budget)

    def _explain_analyze(
        self, planned: PlannedQuery, budget: Optional[QueryBudget]
    ) -> str:
        """Execute ``planned`` under a tracer; render the annotated plan."""
        tracer = QueryTracer()
        token = self._start_token(budget)
        started = time.perf_counter()
        row_count = 0
        try:
            with tracer_module.activate(tracer):
                if token is None:
                    for _row in planned.operator:
                        row_count += 1
                else:
                    with budget_module.activate(token):
                        for _row in planned.operator:
                            token.tick_rows()
                            row_count += 1
        except (ResourceExhaustedError, QueryCancelledError) as exc:
            # the partial actuals are the interesting part of an aborted
            # run, so render them instead of re-raising
            tracer.record_abort(f"{type(exc).__name__}: {exc}")
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        lines = [tracer.annotate(planned.operator)]
        lines.append(f"Execution: {row_count} row(s) in {elapsed_ms:.2f} ms")
        if tracer.abort_cause is not None:
            lines.append(f"Aborted: {tracer.abort_cause}")
        return "\n".join(lines)

    def begin(self) -> None:
        """Open an explicit transaction."""
        self.transactions.begin()

    def commit(self) -> None:
        self.transactions.commit()

    def rollback(self) -> None:
        self.transactions.rollback()

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def graph_view(self, name: str) -> GraphView:
        return self.catalog.graph_view(name)

    def analyze(self) -> Dict[str, Dict[str, Any]]:
        """Refresh catalog statistics (the paper's Section-6.3 backend
        thread, run on demand): per-table row counts and per-graph-view
        fan-out statistics used by the traversal-choice heuristic.

        Returns the statistics dictionary (also stored in
        ``catalog.statistics``).
        """
        statistics: Dict[str, Dict[str, Any]] = {}
        for table in self.catalog.tables():
            statistics[table.name] = {"row_count": table.row_count}
        for view in self.catalog.graph_views():
            view._invalidate_statistics()
            histogram = view.topology.degree_histogram()
            statistics[view.name] = {
                "vertex_count": view.topology.vertex_count,
                "edge_count": view.topology.edge_count,
                "average_fan_out": view.average_fan_out(),
                "max_fan_out": max(histogram) if histogram else 0,
                "topology_bytes": view.topology.memory_estimate_bytes(),
            }
        self.catalog.statistics = statistics
        return statistics

    def save_snapshot(self, path: str) -> None:
        """Persist the whole database (schema + data + graph views) to
        a JSON snapshot file; restore with :meth:`load_snapshot`."""
        from .snapshot import save_snapshot

        save_snapshot(self, path)

    @classmethod
    def load_snapshot(cls, path: str) -> "Database":
        """Rebuild a database from a snapshot file."""
        from .snapshot import load_snapshot

        return load_snapshot(path, cls())

    @classmethod
    def recover(
        cls,
        snapshot: Optional[str] = None,
        command_log: Optional[str] = None,
        on_error: str = "abort",
    ) -> "Database":
        """Crash recovery façade: restore ``snapshot`` (if given), then
        replay ``command_log`` (if given) under the ``on_error`` policy
        (``"abort"`` | ``"skip"`` | ``"stop"``, see
        :func:`~repro.core.command_log.replay_log`).

        The resulting database carries a
        :class:`~repro.core.command_log.RecoveryReport` in
        ``db.recovery_report`` describing replayed statements, any
        dropped torn tail, and skipped corrupt lines.

        When the snapshot embeds a replication position (checkpoints
        written by the supervisor do), replay resumes *after* that
        position: a crash between the checkpoint's snapshot rename and
        its log truncation leaves the snapshot and the log overlapping,
        and replaying the overlap would double-apply it.
        """
        from .command_log import replay_log
        from .snapshot import load_snapshot

        database = cls()
        if snapshot is not None:
            load_snapshot(snapshot, database)
        if command_log is not None:
            position = database.snapshot_replication or {}
            replay_log(
                command_log,
                database,
                on_error=on_error,
                from_sequence=int(position.get("sequence", 0) or 0),
            )
        return database

    def load_rows(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert pre-built rows (bypasses SQL parsing, still fires
        all constraint / index / graph-view maintenance)."""
        table = self._resolve_writable_table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        return count

    # ------------------------------------------------------------------
    # statement dispatch
    # ------------------------------------------------------------------

    def _execute_statement(
        self,
        statement: ast.Statement,
        token: Optional[CancellationToken] = None,
    ) -> ResultSet:
        if (
            self.role == "replica"
            and self._replica_apply_depth == 0
            and isinstance(statement, WRITE_STATEMENT_TYPES)
        ):
            raise ReadOnlyError(
                f"{type(statement).__name__} rejected: this database is a "
                "read-only replica (writes go to the primary)"
            )
        if (
            self._replica_apply_depth == 0
            and isinstance(statement, WRITE_STATEMENT_TYPES)
            and not self.health.allows_writes()
        ):
            # Recovery and replication replay through apply_replicated
            # (depth > 0): the supervisor must be able to rebuild state
            # while the engine is RECOVERING.
            raise DegradedError(
                f"{type(statement).__name__} rejected: the database is "
                f"{self.health.state} (read-only) — "
                f"{self.health.reason or 'durable writes are unavailable'}"
            )
        if isinstance(statement, ast.Explain):
            text = self._explain_statement(statement.statement, statement.analyze)
            return ResultSet(
                ["QUERY PLAN"], [(line,) for line in text.splitlines()]
            )
        if isinstance(statement, ast.Select):
            return self._plan_and_run_select(statement, token)
        if isinstance(statement, ast.SetOperation):
            return self._execute_set_operation(statement, token)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement)
        if isinstance(statement, ast.CreateGraphView):
            return self._execute_create_graph_view(statement)
        if isinstance(statement, ast.AlterGraphViewAddSource):
            return self._execute_alter_graph_view(statement)
        if isinstance(statement, ast.Drop):
            return self._execute_drop(statement)
        if isinstance(statement, ast.Insert):
            return self._in_transaction(self._execute_insert, statement)
        if isinstance(statement, ast.Update):
            return self._in_transaction(self._execute_update, statement)
        if isinstance(statement, ast.Delete):
            return self._in_transaction(self._execute_delete, statement)
        if isinstance(statement, ast.Truncate):
            return self._in_transaction(self._execute_truncate, statement)
        raise PlanningError(
            f"unsupported statement: {type(statement).__name__}"
        )

    def _in_transaction(self, handler, statement) -> ResultSet:
        """Run a DML handler inside the active or an implicit transaction."""
        if self.transactions.in_transaction:
            return handler(statement)
        self.transactions.begin()
        try:
            result = handler(statement)
        except BaseException:
            self.transactions.rollback()
            raise
        self.transactions.commit()
        return result

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _make_planner(self) -> SelectPlanner:
        return SelectPlanner(
            self.catalog,
            self.planner_options,
            subquery_executor=lambda sub: self._plan_and_run_select(sub).rows,
        )

    def _plan_select(self, select: ast.Select) -> PlannedQuery:
        return self._make_planner().plan(select)

    def _materialize_subqueries(
        self, expression: Optional[ast.Expression]
    ) -> Optional[ast.Expression]:
        """Evaluate uncorrelated subqueries in a DML expression."""
        if expression is None:
            return None
        return self._make_planner()._materialize_subqueries(expression)

    def _plan_and_run_select(
        self,
        select: ast.Select,
        token: Optional[CancellationToken] = None,
    ) -> ResultSet:
        planned = self._plan_select(select)
        if token is None:
            # subqueries and DML-embedded SELECTs land here: operators
            # still observe the ambient token for time/traversal caps,
            # but max_rows only governs the top-level result
            rows = [tuple(row) for row in planned.operator]
        else:
            rows = []
            for row in planned.operator:
                token.tick_rows()
                rows.append(tuple(row))
        return ResultSet(planned.column_names, rows)

    def _execute_set_operation(
        self,
        statement: ast.SetOperation,
        token: Optional[CancellationToken] = None,
    ) -> ResultSet:
        """``UNION [ALL]``: concatenation with optional deduplication.
        Column names come from the leftmost SELECT (SQL convention)."""
        left = self._execute_statement(statement.left)
        right = self._execute_statement(statement.right)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                "UNION operands must have the same number of columns "
                f"({len(left.columns)} vs {len(right.columns)})"
            )
        rows = list(left.rows) + list(right.rows)
        if not statement.all_rows:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        if token is not None:
            token.tick_rows(len(rows))
        return ResultSet(left.columns, rows)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> ResultSet:
        columns = [
            Column(
                definition.name,
                SqlType.from_name(definition.type_name),
                nullable=not definition.not_null,
                primary_key=definition.primary_key,
            )
            for definition in statement.columns
        ]
        schema = TableSchema(columns)
        if statement.partition_by is not None:
            # validate now so a sharded CREATE fails identically on the
            # router, the coordinator, and every shard
            schema.position_of(statement.partition_by)
        table = self.catalog.create_table(statement.name, schema)
        table.partition_by = statement.partition_by
        table.add_listener(self._undo_listener)
        return ResultSet()

    def _execute_create_index(self, statement: ast.CreateIndex) -> ResultSet:
        table = self._resolve_writable_table(statement.table)
        index = HashIndex(
            statement.name, table.schema, statement.columns, statement.unique
        )
        table.attach_index(index)
        self.catalog.register_index(statement.name, statement.table)
        return ResultSet()

    def create_ordered_index(
        self, name: str, table_name: str, columns: Sequence[str], unique=False
    ) -> None:
        """Programmatic API for a range-capable (ordered) index."""
        table = self._resolve_writable_table(table_name)
        index = OrderedIndex(name, table.schema, columns, unique)
        table.attach_index(index)
        self.catalog.register_index(name, table_name)

    def _execute_create_view(self, statement: ast.CreateView) -> ResultSet:
        query = statement.query
        planned = self._plan_select(query)
        schema = self._infer_view_schema(query, planned)
        backing = self.catalog.create_table(statement.name, schema)
        backing.add_listener(self._undo_listener)
        incremental = self._incremental_view_parts(query)
        if incremental is not None:
            source, predicate, projections = incremental
            view = MaterializedView(statement.name, query, backing, [source])
            view.attach_incremental(source, predicate, projections)
        else:
            sources = self._view_source_tables(query)
            view = MaterializedView(statement.name, query, backing, sources)
            for row in self._plan_and_run_select(query).rows:
                backing.insert(row)
            view.attach_full_refresh(
                lambda: self._plan_and_run_select(query).rows
            )
        # register after the backing table so the name maps to the view
        self.catalog.drop_table(statement.name)
        self.catalog.register_view(statement.name, view)
        return ResultSet()

    def _infer_view_schema(
        self, query: ast.Select, planned: PlannedQuery
    ) -> TableSchema:
        """Column names from the plan; types copied from plain column
        references, ANY (no coercion) for computed expressions."""
        types: List[SqlType] = []
        source_schemas: Dict[str, TableSchema] = {}
        for item in query.from_items:
            if isinstance(item, ast.TableRef):
                try:
                    source_schemas[item.alias.lower()] = self._resolve_readable_table(
                        item.name
                    ).schema
                except CatalogError:
                    pass
        expressions = [i.expression for i in query.items]
        if len(expressions) != len(planned.column_names):
            expressions = [None] * len(planned.column_names)  # stars expanded
        for expression in expressions:
            inferred = SqlType.ANY
            if (
                isinstance(expression, ast.FieldAccess)
                and len(expression.accessors) == 1
                and isinstance(expression.accessors[0], ast.NameAccessor)
            ):
                schema = source_schemas.get(expression.base.lower())
                if schema is not None and schema.has_column(
                    expression.accessors[0].name
                ):
                    inferred = schema.column(expression.accessors[0].name).sql_type
            types.append(inferred)
        names = self._dedupe_names(planned.column_names)
        return TableSchema(
            [Column(name, sql_type) for name, sql_type in zip(names, types)]
        )

    @staticmethod
    def _dedupe_names(names: List[str]) -> List[str]:
        seen: Dict[str, int] = {}
        out = []
        for name in names:
            key = name.lower()
            if key in seen:
                seen[key] += 1
                out.append(f"{name}_{seen[key]}")
            else:
                seen[key] = 1
                out.append(name)
        return out

    def _incremental_view_parts(self, query: ast.Select):
        """If the view is single-table filter/project, compile the pieces
        for incremental maintenance; else None."""
        if (
            len(query.from_items) != 1
            or not isinstance(query.from_items[0], ast.TableRef)
            or query.group_by
            or query.having is not None
            or query.order_by
            or query.limit is not None
            or query.distinct
        ):
            return None
        table_ref = query.from_items[0]
        try:
            source = self._resolve_readable_table(table_ref.name)
        except CatalogError:
            return None
        if self.catalog.has_view(table_ref.name):
            return None  # view-over-view: keep it simple, full refresh
        binding = RelationBinding(table_ref.alias, 0, source.schema)
        scope = Scope([binding])
        try:
            if any(isinstance(i.expression, ast.Star) for i in query.items):
                projections = [
                    ExpressionCompiler(scope).compile(
                        ast.FieldAccess(
                            table_ref.alias, [ast.NameAccessor(column.name)]
                        )
                    )
                    for column in source.schema.columns
                ]
            else:
                for item in query.items:
                    if find_relational_aggregates(item.expression, scope):
                        return None
                projections = [
                    ExpressionCompiler(scope).compile(item.expression)
                    for item in query.items
                ]
            predicate = (
                ExpressionCompiler(scope).compile(query.where)
                if query.where is not None
                else None
            )
        except PlanningError:
            return None
        return source, predicate, projections

    def _view_source_tables(self, query: ast.Select) -> List[Table]:
        sources = []
        for item in query.from_items:
            if isinstance(item, ast.TableRef):
                try:
                    sources.append(self._resolve_readable_table(item.name))
                except CatalogError:
                    pass
        return sources

    def _execute_create_graph_view(
        self, statement: ast.CreateGraphView
    ) -> ResultSet:
        vertex_table = self._resolve_readable_table(statement.vertex_source)
        edge_table = self._resolve_readable_table(statement.edge_source)
        view = build_graph_view(
            statement.name,
            statement.directed,
            vertex_table,
            statement.vertex_mappings,
            edge_table,
            statement.edge_mappings,
        )
        view.undo_suspension = self.transactions.suspend_undo
        self.catalog.register_graph_view(statement.name, view)
        return ResultSet()

    def _execute_alter_graph_view(
        self, statement: ast.AlterGraphViewAddSource
    ) -> ResultSet:
        """Vertical partitioning (Section 3.2): attach an additional
        attribute relation to an existing graph view."""
        view: GraphView = self.catalog.graph_view(statement.name)
        table = self._resolve_readable_table(statement.source)
        view.attach_attribute_source(statement.element, table, statement.mappings)
        return ResultSet()

    def _execute_drop(self, statement: ast.Drop) -> ResultSet:
        kind, name = statement.kind, statement.name
        if kind == "TABLE":
            self._check_graph_dependencies(name)
            self.catalog.drop_table(name)
        elif kind == "VIEW":
            self._check_graph_dependencies(name)
            view: MaterializedView = self.catalog.view(name)
            view.detach()
            self.catalog.drop_view(name)
        elif kind == "GRAPH VIEW":
            graph_view: GraphView = self.catalog.graph_view(name)
            graph_view.detach_maintenance_listeners()
            self.catalog.drop_graph_view(name)
        elif kind == "INDEX":
            owner = self.catalog.index_owner(name)
            if owner is None:
                raise CatalogError(f"unknown index: {name}")
            self.catalog.table(owner).drop_index(name)
        else:
            raise PlanningError(f"cannot DROP {kind}")
        return ResultSet()

    def _check_graph_dependencies(self, source_name: str) -> None:
        backing = None
        if self.catalog.has_table(source_name):
            backing = self.catalog.table(source_name)
        elif self.catalog.has_view(source_name):
            backing = self.catalog.view(source_name).table
        if backing is None:
            return
        for graph_view in self.catalog.graph_views():
            sources = [graph_view.vertex_table, graph_view.edge_table]
            sources += [
                extra.table
                for extra in graph_view.vertex_extra_sources
                + graph_view.edge_extra_sources
            ]
            if any(source is backing for source in sources):
                raise CatalogError(
                    f"{source_name} is a relational source of graph view "
                    f"{graph_view.name}; drop the graph view first"
                )

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _resolve_writable_table(self, name: str) -> Table:
        if self.catalog.has_view(name):
            raise ExecutionError(
                f"{name} is a materialized view; write to its source table"
            )
        return self.catalog.table(name)

    def _resolve_readable_table(self, name: str) -> Table:
        if self.catalog.has_table(name):
            return self.catalog.table(name)
        if self.catalog.has_view(name):
            return self.catalog.view(name).table
        raise CatalogError(f"unknown table or view: {name}")

    def _execute_insert(self, statement: ast.Insert) -> ResultSet:
        table = self._resolve_writable_table(statement.table)
        schema = table.schema
        empty_scope = Scope([RelationBinding("#none", 0, schema)])
        positions: Optional[List[int]] = None
        if statement.columns is not None:
            positions = [schema.position_of(c) for c in statement.columns]
        if statement.query is not None:
            return self._insert_from_query(table, positions, statement.query)
        count = 0
        for row_expressions in statement.rows:
            values = [
                ExpressionCompiler(empty_scope).compile(e).fn([None])
                for e in row_expressions
            ]
            if positions is None:
                row = values
            else:
                if len(values) != len(positions):
                    raise ExecutionError(
                        f"INSERT specifies {len(positions)} columns but "
                        f"{len(values)} values"
                    )
                row = [None] * len(schema)
                for position, value in zip(positions, values):
                    row[position] = value
            table.insert(row)
            count += 1
        return ResultSet(rowcount=count)

    def _insert_from_query(
        self,
        table: Table,
        positions: Optional[List[int]],
        query: ast.Select,
    ) -> ResultSet:
        """``INSERT INTO t [cols] SELECT ...`` — the workhorse of the
        Grail baseline's iterative frontier expansion."""
        rows = self._plan_and_run_select(query).rows
        count = 0
        for values in rows:
            if positions is None:
                row: List[Any] = list(values)
            else:
                if len(values) != len(positions):
                    raise ExecutionError(
                        f"INSERT specifies {len(positions)} columns but "
                        f"the query produces {len(values)}"
                    )
                row = [None] * len(table.schema)
                for position, value in zip(positions, values):
                    row[position] = value
            table.insert(row)
            count += 1
        return ResultSet(rowcount=count)

    def _dml_targets(
        self, table: Table, alias: str, where: Optional[ast.Expression]
    ) -> List[int]:
        """Slots of the rows a WHERE clause selects (all when absent)."""
        token = budget_module.current_token()
        if where is None:
            slots = []
            for slot, _row in table.scan():
                if token is not None:
                    token.tick()
                slots.append(slot)
            return slots
        where = self._materialize_subqueries(where)
        scope = Scope([RelationBinding(alias, 0, table.schema)])
        predicate = ExpressionCompiler(scope).compile(where)
        slots = []
        for slot, row in table.scan():
            if token is not None:
                token.tick()
            if predicate.fn([row]) is True:
                slots.append(slot)
        return slots

    def _execute_update(self, statement: ast.Update) -> ResultSet:
        table = self._resolve_writable_table(statement.table)
        scope = Scope([RelationBinding(statement.table, 0, table.schema)])
        compiled_assignments = [
            (
                table.schema.position_of(column),
                ExpressionCompiler(scope).compile(
                    self._materialize_subqueries(e)
                ),
            )
            for column, e in statement.assignments
        ]
        slots = self._dml_targets(table, statement.table, statement.where)
        updates: List[Tuple[int, List[Any]]] = []
        for slot in slots:
            row = list(table.row_at(slot))
            for position, expression in compiled_assignments:
                row[position] = expression.fn([table.row_at(slot)])
            updates.append((slot, row))
        for slot, row in updates:
            table.update(slot, row)
        return ResultSet(rowcount=len(updates))

    def _execute_delete(self, statement: ast.Delete) -> ResultSet:
        table = self._resolve_writable_table(statement.table)
        slots = self._dml_targets(table, statement.table, statement.where)
        for slot in slots:
            table.delete(slot)
        return ResultSet(rowcount=len(slots))

    def _execute_truncate(self, statement: ast.Truncate) -> ResultSet:
        table = self._resolve_writable_table(statement.table)
        return ResultSet(rowcount=table.truncate())


class PreparedQuery:
    """A SELECT planned once, executable with fresh ``?`` bindings.

    The compiled plan reads parameter values straight off the
    :class:`~repro.sql.ast.Parameter` nodes, so binding is two attribute
    writes and execution re-runs the existing operator tree.
    """

    def __init__(self, database: Database, statement: ast.Select):
        self._database = database
        self._statement = statement
        self._parameters = self._collect_parameters(statement)
        self._planned = database._plan_select(statement)

    @staticmethod
    def _collect_parameters(statement: ast.Select) -> List[ast.Parameter]:
        found: Dict[int, ast.Parameter] = {}

        def scan_expression(expression: Optional[ast.Expression]) -> None:
            if expression is None:
                return
            for node in ast.walk_expression(expression):
                if isinstance(node, ast.Parameter):
                    found[node.index] = node

        scan_expression(statement.where)
        scan_expression(statement.having)
        for item in statement.items:
            scan_expression(item.expression)
        for group in statement.group_by:
            scan_expression(group)
        for order in statement.order_by:
            scan_expression(order.expression)
        def scan_from_item(item: ast.FromItem) -> None:
            if isinstance(item, ast.Join):
                scan_from_item(item.left)
                scan_from_item(item.right)
                scan_expression(item.condition)

        for from_item in statement.from_items:
            scan_from_item(from_item)
        return [found[index] for index in sorted(found)]

    @property
    def parameter_count(self) -> int:
        return len(self._parameters)

    @property
    def column_names(self) -> List[str]:
        return list(self._planned.column_names)

    def explain(self) -> str:
        return self._planned.explain()

    def _bind(self, values) -> None:
        if len(values) != len(self._parameters):
            raise ExecutionError(
                f"prepared query takes {len(self._parameters)} parameter(s), "
                f"got {len(values)}"
            )
        for parameter, value in zip(self._parameters, values):
            parameter.value = value

    def execute(
        self,
        *values: Any,
        budget: Optional[QueryBudget] = None,
        token: Optional[CancellationToken] = None,
    ) -> ResultSet:
        self._bind(values)
        if token is None:
            token = self._database._start_token(budget)
        if token is None:
            rows = [tuple(row) for row in self._planned.operator]
        else:
            with budget_module.activate(token):
                rows = []
                for row in self._planned.operator:
                    token.tick_rows()
                    rows.append(tuple(row))
        return ResultSet(self._planned.column_names, rows)

    def stream(self, *values: Any, budget: Optional[QueryBudget] = None):
        """Bind parameters and yield rows lazily (see Database.stream).

        The parameter bindings live on the shared plan, so do not
        interleave two streams of the same PreparedQuery with different
        bindings.
        """
        self._bind(values)
        token = self._database._start_token(budget)
        if token is None:
            for row in self._planned.operator:
                yield tuple(row)
            return
        iterator = iter(self._planned.operator)
        try:
            while True:
                with budget_module.activate(token):
                    row = next(iterator, _STREAM_DONE)
                    if row is _STREAM_DONE:
                        return
                    token.tick_rows()
                yield tuple(row)
        finally:
            budget_module.deactivate(token)
