"""Workload generators for the evaluation (Section 7.1-7.2).

The paper generates "random reachability queries with different path
lengths that make the query endpoints connected" — pairs whose
hop-distance equals the requested length — and sub-graph selectivity
workloads where edge predicates retain 5%-50% of the edges.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..datasets.generators import GraphDataset


def adjacency_of(
    dataset: GraphDataset,
    edge_filter: Optional[Callable[[tuple], bool]] = None,
) -> Dict[Any, List[Any]]:
    """Adjacency lists of a dataset (optionally over a filtered subgraph)."""
    adjacency: Dict[Any, List[Any]] = {vid: [] for vid, _l, _s in dataset.vertices}
    for edge in dataset.edges:
        if edge_filter is not None and not edge_filter(edge):
            continue
        _eid, src, dst = edge[0], edge[1], edge[2]
        adjacency[src].append(dst)
        if not dataset.directed:
            adjacency[dst].append(src)
    return adjacency


def bfs_distances(
    adjacency: Dict[Any, List[Any]], source: Any, max_depth: Optional[int] = None
) -> Dict[Any, int]:
    """Hop distances from ``source`` (bounded by ``max_depth``)."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        depth = distances[vertex]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in adjacency.get(vertex, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def reachability_pairs(
    dataset: GraphDataset,
    path_length: int,
    count: int,
    seed: int = 99,
    edge_filter: Optional[Callable[[tuple], bool]] = None,
    max_sources: int = 400,
) -> List[Tuple[Any, Any]]:
    """``count`` random ``(src, dst)`` pairs at hop-distance exactly
    ``path_length`` (over the filtered subgraph when a filter is given).

    Returns fewer pairs when the graph does not contain enough — the
    caller should check.
    """
    rng = random.Random(seed)
    adjacency = adjacency_of(dataset, edge_filter)
    vertex_ids = [vid for vid, _l, _s in dataset.vertices]
    rng.shuffle(vertex_ids)
    pairs: List[Tuple[Any, Any]] = []
    for source in vertex_ids[:max_sources]:
        distances = bfs_distances(adjacency, source, max_depth=path_length)
        at_depth = [v for v, d in distances.items() if d == path_length]
        if not at_depth:
            continue
        pairs.append((source, rng.choice(at_depth)))
        if len(pairs) >= count:
            break
    return pairs


def connected_pairs(
    dataset: GraphDataset,
    count: int,
    seed: int = 101,
    min_distance: int = 2,
    max_distance: int = 12,
) -> List[Tuple[Any, Any]]:
    """Random connected pairs with hop distance in the given band
    (the shortest-path workload of Figure 9)."""
    rng = random.Random(seed)
    adjacency = adjacency_of(dataset)
    vertex_ids = [vid for vid, _l, _s in dataset.vertices]
    rng.shuffle(vertex_ids)
    pairs: List[Tuple[Any, Any]] = []
    for source in vertex_ids:
        distances = bfs_distances(adjacency, source, max_depth=max_distance)
        candidates = [
            v for v, d in distances.items() if min_distance <= d <= max_distance
        ]
        if not candidates:
            continue
        pairs.append((source, rng.choice(candidates)))
        if len(pairs) >= count:
            break
    return pairs


def selectivity_predicate_sql(alias_template: str, selectivity: int) -> str:
    """SQL predicate template retaining ~``selectivity``% of the edges.

    ``alias_template`` is used verbatim by the SQLGraph store:
    ``selectivity_predicate_sql("{alias}.esel", 20)`` ->
    ``"{alias}.esel < 20"``.
    """
    return f"{alias_template} < {selectivity}"


def selectivity_edge_filter(selectivity: int) -> Callable[[tuple], bool]:
    """Python-side filter matching :func:`selectivity_predicate_sql`
    over dataset edge rows ``(eid, src, dst, w, elabel, esel)``."""
    return lambda edge: edge[5] < selectivity
