"""Timing helpers with DNF (did-not-finish) budgets.

The paper reports that SQLGraph cannot execute deep traversals on the
Twitter graph (intermediate join results exceed memory, Section 7.2).
In-process we cannot preempt a running query, so the harness uses an
*adaptive* protocol instead: each (system, parameter) cell gets a time
budget, and once a system busts its budget at some parameter value it is
not run at larger values of the sweep (join blow-up is monotone in
depth) — those cells are reported as DNF, like the paper's time-outs.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple


def time_call(fn: Callable[[], Any], repeat: int = 1) -> float:
    """Average wall-clock seconds of ``fn`` over ``repeat`` calls."""
    if repeat < 1:
        raise ValueError("repeat must be positive")
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat


class Measurement:
    """One cell of a sweep: seconds, or DNF with a reason."""

    __slots__ = ("seconds", "dnf_reason")

    def __init__(self, seconds: Optional[float], dnf_reason: Optional[str] = None):
        self.seconds = seconds
        self.dnf_reason = dnf_reason

    @property
    def finished(self) -> bool:
        return self.seconds is not None

    def milliseconds(self) -> Optional[float]:
        return None if self.seconds is None else self.seconds * 1000.0

    def __repr__(self) -> str:
        if self.seconds is None:
            return f"Measurement(DNF: {self.dnf_reason})"
        return f"Measurement({self.seconds * 1000:.3f} ms)"


class AdaptiveRunner:
    """Runs one system across a monotone parameter sweep with a budget.

    ``budget_seconds`` bounds a single cell; after the first bust the
    system is skipped for the rest of the sweep.
    """

    def __init__(self, budget_seconds: float = 5.0):
        self.budget_seconds = budget_seconds
        self._busted: Dict[str, Any] = {}

    def run(
        self,
        system: str,
        parameter: Any,
        fn: Callable[[], Any],
        repeat: int = 1,
    ) -> Measurement:
        if system in self._busted:
            return Measurement(
                None,
                f"skipped beyond {self._busted[system]} (budget exceeded)",
            )
        elapsed = time_call(fn, repeat)
        if elapsed * repeat > self.budget_seconds:
            self._busted[system] = parameter
            if elapsed > self.budget_seconds:
                return Measurement(
                    None, f"exceeded {self.budget_seconds:.1f}s budget"
                )
        return Measurement(elapsed)

    def busted(self, system: str) -> bool:
        return system in self._busted


def sweep(
    systems: Dict[str, Callable[[Any], Callable[[], Any]]],
    parameters: List[Any],
    budget_seconds: float = 5.0,
    repeat: int = 1,
) -> Dict[str, List[Tuple[Any, Measurement]]]:
    """Run every system at every parameter (adaptive skipping).

    ``systems`` maps a system name to a factory: ``factory(parameter)``
    returns the zero-argument callable to time.
    """
    runner = AdaptiveRunner(budget_seconds)
    results: Dict[str, List[Tuple[Any, Measurement]]] = {
        name: [] for name in systems
    }
    for parameter in parameters:
        for name, factory in systems.items():
            measurement = runner.run(name, parameter, factory(parameter), repeat)
            results[name].append((parameter, measurement))
    return results
