"""Benchmark harness (system S13): workload generation, timing with
DNF budgets, and paper-style table/series reporting."""

from .workloads import (
    adjacency_of,
    bfs_distances,
    reachability_pairs,
    connected_pairs,
    selectivity_predicate_sql,
    selectivity_edge_filter,
)
from .harness import AdaptiveRunner, Measurement, sweep, time_call
from .reporting import (
    format_table,
    format_series,
    format_ascii_chart,
    print_series,
    speedup,
)

__all__ = [
    "adjacency_of",
    "bfs_distances",
    "reachability_pairs",
    "connected_pairs",
    "selectivity_predicate_sql",
    "selectivity_edge_filter",
    "AdaptiveRunner",
    "Measurement",
    "sweep",
    "time_call",
    "format_table",
    "format_series",
    "format_ascii_chart",
    "print_series",
    "speedup",
]
