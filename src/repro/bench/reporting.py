"""Plain-text rendering of benchmark tables and figure series.

Each benchmark target prints the same rows/series the paper's table or
figure reports, with DNF cells where a system did not finish (matching
the paper's handling of SQLGraph on the Twitter graph).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .harness import Measurement


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[_text(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: Dict[str, List[Tuple[Any, Measurement]]],
    unit: str = "ms",
) -> str:
    """A figure rendered as one row per x value, one column per system."""
    system_names = list(series.keys())
    x_values: List[Any] = []
    for measurements in series.values():
        for x, _m in measurements:
            if x not in x_values:
                x_values.append(x)
    by_system: Dict[str, Dict[Any, Measurement]] = {
        name: dict(points) for name, points in series.items()
    }
    headers = [x_label] + [f"{name} ({unit})" for name in system_names]
    rows = []
    for x in x_values:
        row: List[Any] = [x]
        for name in system_names:
            measurement = by_system[name].get(x)
            if measurement is None or not measurement.finished:
                row.append("DNF")
            else:
                row.append(f"{measurement.milliseconds():.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def print_series(
    title: str,
    x_label: str,
    series: Dict[str, List[Tuple[Any, Measurement]]],
    unit: str = "ms",
) -> None:
    print()
    print(format_series(title, x_label, series, unit))


def format_ascii_chart(
    title: str,
    x_label: str,
    series: Dict[str, List[Tuple[Any, Measurement]]],
    width: int = 48,
    log_scale: bool = True,
) -> str:
    """Render a figure as horizontal bars (log scale by default).

    One block per x value, one bar per system — a terminal-friendly
    stand-in for the paper's log-scale bar charts.
    """
    import math

    finished = [
        m.milliseconds()
        for points in series.values()
        for _x, m in points
        if m.finished and m.milliseconds() > 0
    ]
    if not finished:
        return f"{title}\n(no finished measurements)"
    low, high = min(finished), max(finished)

    def bar_length(value: float) -> int:
        if high == low:
            return width
        if log_scale:
            span = math.log10(high) - math.log10(low)
            fraction = (math.log10(value) - math.log10(low)) / span
        else:
            fraction = (value - low) / (high - low)
        return max(1, int(round(fraction * width)))

    name_width = max(len(name) for name in series)
    x_values: List[Any] = []
    for points in series.values():
        for x, _m in points:
            if x not in x_values:
                x_values.append(x)
    by_system = {name: dict(points) for name, points in series.items()}
    scale_note = "log scale" if log_scale else "linear"
    lines = [f"{title}  ({scale_note}, ms)"]
    for x in x_values:
        lines.append(f"{x_label} = {x}")
        for name in series:
            measurement = by_system[name].get(x)
            if measurement is None or not measurement.finished:
                lines.append(f"  {name.ljust(name_width)}  DNF")
                continue
            value = measurement.milliseconds()
            bar = "#" * bar_length(max(value, low))
            lines.append(
                f"  {name.ljust(name_width)}  {value:>10.3f}  {bar}"
            )
    return "\n".join(lines)


def speedup(
    baseline: Measurement, contender: Measurement
) -> Optional[float]:
    """How many times faster ``contender`` is than ``baseline``."""
    if not (baseline.finished and contender.finished):
        return None
    if contender.seconds == 0:
        return float("inf")
    return baseline.seconds / contender.seconds


def _text(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
