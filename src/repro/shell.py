"""Interactive SQL shell: ``python -m repro.shell``.

A small REPL over one :class:`~repro.core.database.Database` instance.
Statements end with ``;`` and may span lines — ``EXPLAIN [ANALYZE]
SELECT ...;`` runs like any other statement. Meta-commands start with
``.`` or ``\\``; the two prefixes are interchangeable (``.help`` and
``\\help`` are the same command):

====================  ====================================================
``.help``             this text
``.tables``           list tables, views and graph views
``.schema NAME``      columns of a table/view, or structure of a graph view
``.explain SQL``      physical plan of a SELECT (no trailing ``;`` needed)
``.timer on|off``     print wall-clock time per statement
``.run FILE``         execute a ``;``-separated SQL script from a file
``\\timeout MS``       abort statements running longer than MS milliseconds
                      (``\\timeout off`` clears; ``\\timeout`` shows current)
``\\metrics [FILTER]`` engine metrics (Prometheus text format), optionally
                      only names containing FILTER
``\\slow [MS|off]``    set the slow-query threshold, or (no argument) list
                      the statements recorded over it; ``\\slow show``
                      lists entries — the one form that also works over
                      a remote connection (``SLOWLOG``), with session,
                      node and trace_id attribution
``\\traces [TRACE_ID]`` recorded distributed-trace spans, grouped by
                      trace — optionally only one trace's spans (works
                      locally and over a remote connection)
``\\events [KIND]``    the structured event journal (elections, epoch
                      bumps, health transitions, breaker trips...),
                      optionally only events of KIND (works locally and
                      over a remote connection)
``\\replica status``   one line per cluster node: role, epoch, applied
                      sequence, lag, acked/shipped positions, state
                      (needs an attached cluster)
``\\promote [NAME]``   fail over to replica NAME (or the most caught-up
                      healthy replica); the old primary is fenced
``\\cluster status``   this node's cluster view: role, epoch, sequence,
                      lag, believed leader, and last known peer states
                      (works locally and over a remote connection)
``\\shards [status]``  connected to a shard router: the shard map,
                      per-shard health, and routing-tier counters;
                      connected to a shard server: its shard identity
                      (remote connections only)
``\\health``           engine health state, last durable-write error,
                      retry/breaker counters, replication role/epoch/lag
                      on a cluster node, and supervisor status
                      (works locally and over a remote connection)
``.quit``             exit
====================  ====================================================

Errors never kill the session: every :class:`~repro.errors.DatabaseError`
prints as a one-line message (syntax errors point at line and column;
budget aborts hint at ``\\timeout``) and the prompt returns.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, List, Optional, TextIO

from .budget import QueryBudget
from .core.database import Database
from .core.result import ResultSet
from .errors import DatabaseError, ResourceExhaustedError, SqlSyntaxError
from .observability.metrics import get_registry

PROMPT = "repro> "
CONTINUATION = "  ...> "

_HELP = __doc__.split("same command):", 1)[1]


def format_result(result: ResultSet, max_rows: int = 200) -> str:
    """Render a result set as an aligned text table."""
    if not result.columns:
        return f"ok ({result.rowcount} row(s) affected)"
    headers = result.columns
    rows = [[_cell(v) for v in row] for row in result.rows[:max_rows]]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            " | ".join(value.ljust(widths[i]) for i, value in enumerate(row))
        )
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows)} rows total)")
    else:
        lines.append(f"({len(result.rows)} row(s))")
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


class Shell:
    """The REPL engine, factored for testability (streams injectable)."""

    def __init__(
        self,
        database: Optional[Database] = None,
        out: TextIO = sys.stdout,
        cluster=None,
        client=None,
        supervisor=None,
        node=None,
    ):
        #: Optional :class:`~repro.resilience.supervisor.Supervisor` —
        #: enriches ``\health`` with checkpoint/probe/heal counters.
        self.supervisor = supervisor
        #: Optional :class:`~repro.replication.node.ClusterNode` —
        #: enables ``\cluster status`` and the replication section of
        #: ``\health`` when the shell runs inside a cluster process.
        self.node = node
        #: Optional :class:`~repro.replication.ReplicationManager` —
        #: enables ``\replica status`` and ``\promote``. When attached,
        #: the shell's database is the cluster's current primary's.
        self.cluster = cluster
        #: Optional :class:`~repro.client.Client` — remote mode
        #: (``repro --connect``): statements go over the wire, and the
        #: catalog-introspection commands are unavailable.
        self.client = client
        if client is not None:
            self.db = None
        else:
            self.db = database or (cluster.primary.db if cluster else Database())
        self.out = out
        self.timer = False
        self.timeout_ms: Optional[int] = None
        self._buffer: List[str] = []
        self.done = False

    # ------------------------------------------------------------------

    def write(self, text: str) -> None:
        print(text, file=self.out)

    def prompt(self) -> str:
        return CONTINUATION if self._buffer else PROMPT

    def feed_line(self, line: str) -> None:
        """Process one input line (may or may not complete a statement)."""
        stripped = line.strip()
        if not self._buffer and stripped[:1] in (".", "\\"):
            self._command(stripped)
            return
        if not stripped and not self._buffer:
            return
        self._buffer.append(line)
        joined = "\n".join(self._buffer)
        if stripped.endswith(";"):
            self._buffer = []
            self.execute_statement(joined)

    def execute_statement(self, sql: str) -> None:
        started = time.perf_counter()
        try:
            if self.client is not None:
                result = self.client.execute(sql)
            elif self.cluster is not None:
                # route through the manager: writes are acknowledged
                # only after the configured replicas have applied them
                result = self.cluster.execute(sql)
            else:
                result = self.db.execute(sql)
        except DatabaseError as error:
            self.write(self._format_error(error))
            return
        self.write(format_result(result))
        if self.timer:
            self.write(f"time: {(time.perf_counter() - started) * 1000:.2f} ms")

    @staticmethod
    def _format_error(error: DatabaseError) -> str:
        """One friendly line per failure; the session always survives."""
        message = str(error).split("\n", 1)[0]
        if isinstance(error, SqlSyntaxError) and error.line:
            suffix = f" (at line {error.line}, column {error.column})"
            if message.endswith(suffix):
                message = message[: -len(suffix)]
            return (
                f"syntax error at line {error.line}, column {error.column}: "
                f"{message}"
            )
        if isinstance(error, ResourceExhaustedError):
            return (
                f"aborted: {message} "
                "(adjust with \\timeout or a wider QueryBudget)"
            )
        return f"error: {message}"

    # ------------------------------------------------------------------
    # meta-commands (``.name`` and ``\name`` are interchangeable)
    # ------------------------------------------------------------------

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0][1:].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if self.client is not None and name in (
            "tables", "schema", "run", "replica", "promote",
        ):
            # these introspect server-side objects the protocol does not
            # expose; everything else works identically over the wire
            self.write(f"{parts[0]} is not available over a remote connection")
            return
        if name in ("quit", "exit"):
            self.done = True
        elif name == "help":
            self.write(_HELP.strip())
        elif name == "tables":
            self._list_objects()
        elif name == "schema":
            self._show_schema(argument)
        elif name == "explain":
            self._explain(argument)
        elif name == "timer":
            if argument.lower() in ("on", "off"):
                self.timer = argument.lower() == "on"
                self.write(f"timer {'on' if self.timer else 'off'}")
            else:
                self.write("usage: .timer on|off")
        elif name == "run":
            self._run_script(argument)
        elif name == "timeout":
            self._set_timeout(argument)
        elif name == "metrics":
            self._metrics(argument)
        elif name == "slow":
            self._slow(argument)
        elif name == "traces":
            self._traces(argument)
        elif name == "events":
            self._events(argument)
        elif name == "replica":
            self._replica_command(argument)
        elif name == "promote":
            self._promote(argument)
        elif name == "cluster":
            self._cluster_command(argument)
        elif name == "shards":
            self._shards_command(argument)
        elif name == "health":
            self._health()
        else:
            self.write(f"unknown command {parts[0]} (try .help)")

    def _metrics(self, argument: str) -> None:
        """``\\metrics [FILTER]`` — dump the (possibly remote) registry."""
        if self.client is not None:
            try:
                text = self.client.metrics(argument or None)
            except DatabaseError as error:
                self.write(self._format_error(error))
                return
        else:
            text = get_registry().render_prometheus(argument or None)
        self.write(text if text else "(no metrics recorded)")

    def _slow(self, argument: str) -> None:
        """``\\slow [MS|off|show]`` — configure or list the slow-query
        log. Remotely only ``show`` is available (the threshold is the
        server's knob); entries arrive over ``SLOWLOG`` carrying
        session, node and trace_id attribution."""
        if self.client is not None:
            if argument and argument.lower() != "show":
                self.write(
                    "only \\slow show works over a remote connection "
                    "(the threshold is configured on the server)"
                )
                return
            try:
                report = self.client.slow_queries()
            except DatabaseError as error:
                self.write(self._format_error(error))
                return
            if report.get("threshold_ms") is None:
                self.write("slow-query log off (server threshold unset)")
                return
            entries = report.get("entries") or []
            if not entries:
                self.write("no slow queries recorded")
                return
            for entry in entries:
                self._write_slow_entry(entry)
            return
        if argument and argument.lower() != "show":
            if argument.lower() in ("off", "none"):
                self.db.set_slow_query_threshold(None)
                self.write("slow-query log off")
                return
            try:
                ms = float(argument)
                if ms < 0:
                    raise ValueError
            except ValueError:
                self.write("usage: \\slow MS|off|show")
                return
            self.db.set_slow_query_threshold(ms)
            self.write(f"slow-query threshold {ms:g} ms")
            return
        if self.db.slow_queries.threshold_ms is None:
            self.write("slow-query log off (set with \\slow MS)")
            return
        entries = self.db.slow_queries.entries()
        if not entries:
            self.write("no slow queries recorded")
            return
        for entry in entries:
            self._write_slow_entry(entry.as_dict())

    def _write_slow_entry(self, entry: dict) -> None:
        """One slow-log line, identical for local and wire entries."""
        sql = entry.get("sql", "")
        head = sql if len(sql) <= 48 else sql[:45] + "..."
        suffix = ""
        if entry.get("session"):
            suffix += f"  session={entry['session']}"
        if entry.get("node"):
            suffix += f"  node={entry['node']}"
        if entry.get("trace_id"):
            suffix += f"  trace={entry['trace_id'][:16]}"
        self.write(
            f"  {entry.get('elapsed_ms', 0.0):8.2f} ms  "
            f"{entry.get('kind', ''):<10} "
            f"rows={entry.get('rows', 0):<6} {head}{suffix}"
        )

    def _traces(self, argument: str) -> None:
        """``\\traces [TRACE_ID]`` — recorded spans, grouped by trace.

        Local mode reads the process collector; remote mode asks the
        connected node over ``TRACES`` (each node answers with *its*
        spans — stitch a cross-node trace by asking every node).
        """
        trace_id = argument.split()[0] if argument else None
        if self.client is not None:
            try:
                spans = self.client.traces(trace_id=trace_id)
            except DatabaseError as error:
                self.write(self._format_error(error))
                return
        else:
            from .observability import tracing as observability_tracing

            spans = observability_tracing.get_collector().export(trace_id)
        if not spans:
            self.write("no spans recorded")
            return
        grouped: dict = {}
        order: List[str] = []
        for span in spans:
            tid = span.get("trace_id", "?")
            if tid not in grouped:
                grouped[tid] = []
                order.append(tid)
            grouped[tid].append(span)
        shown = order if trace_id else order[-10:]
        if len(order) > len(shown):
            self.write(
                f"({len(order)} traces recorded; showing the last "
                f"{len(shown)} — filter with \\traces TRACE_ID)"
            )
        for tid in shown:
            self.write(f"trace {tid}")
            for span in sorted(
                grouped[tid], key=lambda s: s.get("started_at", 0.0)
            ):
                node = span.get("node") or "-"
                self.write(
                    f"  {span.get('name', '?'):<18} node={node:<10} "
                    f"{span.get('duration_ms', 0.0):9.3f} ms  "
                    f"span={span.get('span_id')} "
                    f"parent={span.get('parent_id') or '-'}"
                )

    def _events(self, argument: str) -> None:
        """``\\events [KIND]`` — the structured event journal."""
        kind = argument.split()[0] if argument else None
        if self.client is not None:
            try:
                events = self.client.events(kind=kind)
            except DatabaseError as error:
                self.write(self._format_error(error))
                return
        else:
            from .observability import events as observability_events

            events = observability_events.get_journal().export(kind)
        if not events:
            self.write("no events recorded")
            return
        for event in events:
            node = event.get("node") or "-"
            detail = event.get("detail") or {}
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(detail.items())
            )
            self.write(
                f"  #{event.get('seq'):<5} {event.get('kind', '?'):<16} "
                f"node={node:<10} {rendered}"
            )

    def _set_timeout(self, argument: str) -> None:
        """``\\timeout MS`` — session statement budget; ``off`` clears."""
        if not argument:
            if self.timeout_ms is None:
                self.write("timeout off")
            else:
                self.write(f"timeout {self.timeout_ms} ms")
            return
        if argument.lower() in ("off", "0", "none"):
            self.timeout_ms = None
            self._apply_timeout(None)
            self.write("timeout off")
            return
        try:
            ms = int(argument)
            if ms <= 0:
                raise ValueError
        except ValueError:
            self.write("usage: \\timeout MS|off")
            return
        self.timeout_ms = ms
        self._apply_timeout(ms)
        self.write(f"timeout {ms} ms")

    def _apply_timeout(self, ms: Optional[int]) -> None:
        if self.client is not None:
            # session-level budget on the server; combined (tightest
            # knob wins) with any server-wide budget
            self.client.set_budget(
                {"timeout_ms": ms} if ms is not None else None
            )
        else:
            self.db.set_budget(
                QueryBudget(timeout_ms=ms) if ms is not None else None
            )

    def _replica_command(self, argument: str) -> None:
        """``\\replica status`` — render the cluster's status rows."""
        if argument.lower() != "status":
            self.write("usage: \\replica status")
            return
        if self.cluster is None:
            self.write("error: replication is not configured")
            return
        rows = self.cluster.status()
        self.write(
            f"epoch {self.cluster.epoch}, tick {self.cluster.tick}, "
            f"primary {self.cluster.primary.name}"
        )
        for row in rows:
            self.write(
                f"  {row['node']:<12} {row['role']:<8} e{row['epoch']} "
                f"seq={row['sequence']} lag={row['lag']} "
                f"acked={row['acked']} shipped={row['shipped']} {row['state']}"
            )

    def _cluster_command(self, argument: str) -> None:
        """``\\cluster status`` — this node's cluster view, rendered
        identically whether the state comes from an in-process
        :class:`~repro.replication.node.ClusterNode` or over the wire
        via ``CLUSTER_STATE``."""
        if argument.lower() not in ("", "status"):
            self.write("usage: \\cluster status")
            return
        if self.client is not None:
            try:
                state = self.client.cluster_state()
            except DatabaseError as error:
                self.write(self._format_error(error))
                return
        elif self.node is not None:
            state = self.node.state_message()
        else:
            self.write("error: this is not a cluster node")
            return
        leader = state.get("leader") or {}
        leader_text = (
            f"{leader.get('node')} ({leader.get('host')}:"
            f"{leader.get('port')})"
            if leader
            else "unknown (mid-election?)"
        )
        self.write(
            f"node        {state.get('node', '?')}  "
            f"role={state.get('role', '?')}  "
            f"epoch={state.get('epoch')}  seq={state.get('sequence')}  "
            f"lag={state.get('lag')}"
        )
        flags = [
            flag
            for flag in ("fenced", "quarantined")
            if state.get(flag)
        ]
        if flags:
            self.write(f"flags       {', '.join(flags)}")
        self.write(f"health      {state.get('health', '?')}")
        self.write(f"leader      {leader_text}")
        peers = state.get("peers") or []
        if not peers:
            self.write("peers       (none seen)")
            return
        for peer in peers:
            age = ""
            if peer.get("polled_at"):
                age = f"  seen {max(0.0, time.time() - peer['polled_at']):.1f}s ago"
            self.write(
                f"  {peer.get('node', '?'):<12} "
                f"{peer.get('role', '?'):<8} "
                f"e{peer.get('epoch')} seq={peer.get('sequence')} "
                f"lag={peer.get('lag')}{age}"
            )

    def _shards_command(self, argument: str) -> None:
        """``\\shards [status]`` — the endpoint's SHARD_STATE: a
        router's map + health + routing counters, or a shard server's
        own identity."""
        if argument.lower() not in ("", "status"):
            self.write("usage: \\shards status")
            return
        if self.client is None:
            self.write("error: \\shards needs a remote connection "
                       "(--connect to a router or shard)")
            return
        try:
            state = self.client.shard_state()
        except DatabaseError as error:
            self.write(self._format_error(error))
            return
        if not state.get("sharded"):
            shard = state.get("shard")
            if shard is None:
                self.write("not sharded: a standalone server")
            else:
                self.write(
                    f"shard {shard.get('index')} of {shard.get('count')} "
                    f"({shard.get('slots')} slots, "
                    f"map v{shard.get('version')})"
                )
            return
        shard_map = state.get("map") or {}
        self.write(
            f"router      {shard_map.get('shard_count')} shard(s), "
            f"{shard_map.get('slots')} slots, "
            f"map v{shard_map.get('version')}, "
            f"write seq {state.get('global_sequence')}"
        )
        for shard in state.get("shards") or []:
            health = "healthy" if shard.get("healthy") else "UNREACHABLE"
            self.write(
                f"  shard {shard.get('index')}  "
                f"{shard.get('host')}:{shard.get('port')}  {health}"
            )
        tables = shard_map.get("tables") or {}
        for name, info in sorted(tables.items()):
            placement = (
                "broadcast" if info.get("broadcast")
                else f"partition by {info.get('partition_by')}"
            )
            self.write(f"  table {name}: {placement}")
        views = shard_map.get("graph_views") or {}
        for name, info in sorted(views.items()):
            placement = (
                "broadcast" if info.get("broadcast")
                else "coordinator-only (partitioned sources)"
            )
            self.write(f"  graph view {name}: {placement}")
        routing = state.get("routing") or {}
        self.write(
            "routing     "
            + "  ".join(f"{k}={v}" for k, v in sorted(routing.items()))
        )

    def _promote(self, argument: str) -> None:
        """``\\promote [NAME]`` — manual failover to a replica."""
        if self.cluster is None:
            self.write("error: replication is not configured")
            return
        try:
            new_primary = self.cluster.promote(argument or None)
        except DatabaseError as error:
            self.write(self._format_error(error))
            return
        self.db = new_primary.db
        self.write(
            f"promoted {new_primary.name} to primary "
            f"(epoch {new_primary.epoch})"
        )

    def _health(self) -> None:
        """``\\health`` — engine health, local or over the wire."""
        if self.client is not None:
            try:
                info = self.client.health()
            except DatabaseError as error:
                self.write(self._format_error(error))
                return
            self.write(
                f"state       {info.get('state', '?')}"
                + (f"  ({info['reason']})" if info.get("reason") else "")
            )
            self.write(f"role        {info.get('role', '?')}")
            self.write(f"liveness    {info.get('liveness')}")
            ready = info.get("readiness") or {}
            self.write(
                f"readiness   reads={ready.get('reads')} "
                f"writes={ready.get('writes')}"
            )
            if info.get("last_error"):
                self.write(f"last error  {info['last_error']}")
            replication = info.get("replication")
            if replication:
                self._render_replication(replication)
            supervisor = info.get("supervisor")
            if supervisor:
                self._render_supervisor(supervisor)
            return
        health = self.db.health.status()
        self.write(
            f"state       {health['state']}"
            + (f"  ({health['reason']})" if health.get("reason") else "")
        )
        self.write(
            f"writes      {'accepted' if self.db.health.allows_writes() else 'rejected (DEGRADED)'}"
        )
        if health.get("last_error"):
            self.write(f"last error  {health['last_error']}")
        if self.node is not None:
            self._render_replication(self.node.replication_status())
        if self.supervisor is not None:
            self._render_supervisor(self.supervisor.status())

    def _render_replication(self, status: dict) -> None:
        """Render the HEALTH message's replication section: role,
        epoch, and apply lag, so replica staleness is visible from the
        operator's seat."""
        line = (
            f"replication {status.get('role', '?')} "
            f"e{status.get('epoch')} seq={status.get('sequence')} "
            f"lag={status.get('lag')}"
        )
        flags = [
            flag
            for flag in ("fenced", "quarantined")
            if status.get(flag)
        ]
        if flags:
            line += f" [{', '.join(flags)}]"
        self.write(line)
        leader = status.get("leader")
        if leader:
            self.write(f"leader      {leader}")
        replicas = status.get("replicas")
        if replicas:
            for name, lag in sorted(replicas.items()):
                self.write(f"  replica   {name:<12} lag={lag}")
        elif status.get("role") == "replica":
            self.write(
                "  connected "
                + ("yes" if status.get("connected") else "no (dialing)")
            )

    def _render_supervisor(self, status: dict) -> None:
        """Render the counters a supervisor's ``status()`` exposes."""
        self.write(
            f"supervisor  epoch {status.get('epoch')} "
            f"seq {status.get('sequence')} sync={status.get('sync')}"
        )
        checkpoints = status.get("checkpoints") or {}
        probes = status.get("probes") or {}
        heal = status.get("heal") or {}
        breaker = heal.get("breaker") or {}
        self.write(
            f"checkpoints taken={checkpoints.get('taken', 0)} "
            f"failed={checkpoints.get('failed', 0)}"
        )
        self.write(
            f"probes      run={probes.get('run', 0)} "
            f"failed={probes.get('failed', 0)} "
            f"consecutive_ok={probes.get('consecutive_ok', 0)}"
        )
        self.write(
            f"self-heal   attempted={heal.get('attempted', 0)} "
            f"succeeded={heal.get('succeeded', 0)} "
            f"breaker={breaker.get('state', '?')}"
        )
        self.write(f"fsync       retries={status.get('fsync_retries', 0)}")
        if status.get("last_durable_error"):
            self.write(f"durable err {status['last_durable_error']}")

    def _list_objects(self) -> None:
        catalog = self.db.catalog
        for table in sorted(catalog.tables(), key=lambda t: t.name.lower()):
            self.write(f"table       {table.name} ({table.row_count} rows)")
        for name in sorted(catalog._views):
            view = catalog.view(name)
            self.write(
                f"view        {view.name} ({view.table.row_count} rows)"
            )
        for view in sorted(
            catalog.graph_views(), key=lambda v: v.name.lower()
        ):
            self.write(
                f"graph view  {view.name} (|V|="
                f"{view.topology.vertex_count}, |E|="
                f"{view.topology.edge_count})"
            )

    def _show_schema(self, name: str) -> None:
        if not name:
            self.write("usage: .schema NAME")
            return
        catalog = self.db.catalog
        if catalog.has_graph_view(name):
            view = catalog.graph_view(name)
            direction = "directed" if view.directed else "undirected"
            self.write(f"graph view {view.name} ({direction})")
            self.write(
                f"  vertexes from {view.vertex_table.name}: "
                f"Id + {', '.join(view.vertex_schema.names) or '(no attrs)'}"
            )
            self.write(
                f"  edges from {view.edge_table.name}: Id, From, To + "
                f"{', '.join(view.edge_schema.names) or '(no attrs)'}"
            )
            return
        try:
            table = (
                catalog.table(name)
                if catalog.has_table(name)
                else catalog.view(name).table
            )
        except DatabaseError:
            self.write(f"unknown object: {name}")
            return
        for column in table.schema.columns:
            flags = []
            if column.primary_key:
                flags.append("PRIMARY KEY")
            elif not column.nullable:
                flags.append("NOT NULL")
            suffix = (" " + " ".join(flags)) if flags else ""
            self.write(f"  {column.name} {column.sql_type.value}{suffix}")

    def _explain(self, sql: str) -> None:
        if not sql:
            self.write("usage: .explain SELECT ...")
            return
        try:
            if self.client is not None:
                result = self.client.execute("EXPLAIN " + sql.rstrip(";"))
                self.write("\n".join(str(row[0]) for row in result.rows))
            else:
                self.write(self.db.explain(sql.rstrip(";")))
        except DatabaseError as error:
            self.write(self._format_error(error))

    def _run_script(self, path: str) -> None:
        if not path:
            self.write("usage: .run FILE")
            return
        try:
            with open(path) as handle:
                script = handle.read()
        except OSError as error:
            self.write(f"cannot read {path}: {error}")
            return
        try:
            results = self.db.execute_script(script)
        except DatabaseError as error:
            self.write(self._format_error(error))
            return
        self.write(f"ok ({len(results)} statement(s))")

    # ------------------------------------------------------------------

    def run(self, lines: Optional[Iterable[str]] = None) -> None:
        """Main loop; reads stdin unless ``lines`` is supplied."""
        self.write("repro shell — graphs inside a relational database")
        self.write("statements end with ';' — .help for commands")
        if lines is not None:
            for line in lines:
                if self.done:
                    break
                self._feed_line_safely(line)
            return
        while not self.done:
            try:
                line = input(self.prompt())
            except EOFError:
                break
            except KeyboardInterrupt:
                self._buffer = []
                self.write("")
                continue
            self._feed_line_safely(line)

    def _feed_line_safely(self, line: str) -> None:
        """Backstop: a DatabaseError escaping a command never kills the
        loop (statement execution already reports errors inline)."""
        try:
            self.feed_line(line)
        except DatabaseError as error:
            self.write(self._format_error(error))


def main() -> None:  # pragma: no cover - thin CLI wrapper
    Shell().run()


if __name__ == "__main__":  # pragma: no cover
    main()
