"""Transactions (system S6).

VoltDB executes transactions serially on a partition, so there is no
lock manager: a transaction here is an undo log plus commit/rollback.
Graph-view maintenance runs inside the mutating statement (through table
listeners), so rolling the relational writes back also rolls the
topology back — the serializable graph updates of Section 3.3.
"""

from .transactions import Transaction, TransactionManager, UndoListener

__all__ = ["Transaction", "TransactionManager", "UndoListener"]
