"""Undo-log based transactions with serial (single-partition) execution.

The :class:`UndoListener` must be the *first* listener registered on
every table: it records the inverse operation before any downstream
listener (index or graph-view maintenance) can fail, so a failing
statement can always be rolled back to a consistent state.

Rolling back replays inverse operations in reverse order *through the
normal table API*, which re-fires maintenance listeners — the graph
topology therefore tracks the relational state through aborts too.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..budget import current_token
from ..errors import TransactionError
from ..storage.table import Table, TableListener, TuplePointer


class Transaction:
    """One unit of work: a stack of undo actions."""

    __slots__ = ("_undo_actions", "state")

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(self):
        self._undo_actions: List[Callable[[], None]] = []
        self.state = Transaction.ACTIVE

    def record_undo(self, action: Callable[[], None]) -> None:
        if self.state != Transaction.ACTIVE:
            raise TransactionError(f"transaction is {self.state}")
        self._undo_actions.append(action)

    @property
    def undo_depth(self) -> int:
        return len(self._undo_actions)


class TransactionManager:
    """Serial transaction coordinator (one active transaction at most)."""

    def __init__(self):
        self._current: Optional[Transaction] = None
        self._in_rollback = False
        self._undo_suspended = 0

    @property
    def active(self) -> Optional[Transaction]:
        return self._current

    @property
    def in_transaction(self) -> bool:
        return self._current is not None

    def begin(self) -> Transaction:
        if self._current is not None:
            raise TransactionError("a transaction is already active")
        self._current = Transaction()
        return self._current

    def commit(self) -> None:
        if self._current is None:
            raise TransactionError("no active transaction")
        self._current.state = Transaction.COMMITTED
        self._current = None

    def rollback(self) -> None:
        if self._current is None:
            raise TransactionError("no active transaction")
        transaction = self._current
        self._in_rollback = True
        try:
            while transaction._undo_actions:
                action = transaction._undo_actions.pop()
                action()
        finally:
            self._in_rollback = False
            transaction.state = Transaction.ABORTED
            self._current = None

    def record_undo(self, action: Callable[[], None]) -> None:
        """Register an inverse operation with the active transaction.

        No-ops outside a transaction (raw-table usage), during rollback
        replay (the replay must not re-log itself), and inside a
        :meth:`suspend_undo` window.

        Doubles as the write-side budget check point: the active
        :class:`~repro.budget.CancellationToken` observes the undo-log
        depth (a memory proxy for how much a statement has written) and
        aborts the statement when ``max_undo_depth`` is exceeded — the
        inverse operation is recorded *first*, so the rollback that
        follows undoes this write too.
        """
        if self._in_rollback or self._undo_suspended or self._current is None:
            return
        self._current.record_undo(action)
        token = current_token()
        if token is not None:
            token.note_undo_depth(self._current.undo_depth)

    def suspend_undo(self) -> "_UndoSuspension":
        """Context manager: skip undo recording for *derived* writes.

        Used by graph-view maintenance when a vertex-identifier update
        cascades into the edge relational source: the cascade is a pure
        function of the vertex row, so rolling the vertex row back
        regenerates it — logging the cascade separately would replay it
        in an order that violates referential integrity.
        """
        return _UndoSuspension(self)


class _UndoSuspension:
    def __init__(self, manager: "TransactionManager"):
        self._manager = manager

    def __enter__(self):
        self._manager._undo_suspended += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        self._manager._undo_suspended -= 1
        return False


class UndoListener(TableListener):
    """Records inverse table operations into the active transaction."""

    def __init__(self, manager: TransactionManager):
        self.manager = manager

    def on_insert(self, table: Table, pointer: TuplePointer, row) -> None:
        slot = pointer.slot
        self.manager.record_undo(lambda: table.delete(slot))

    def on_delete(self, table: Table, pointer: TuplePointer, row) -> None:
        old_row = row
        self.manager.record_undo(lambda: table.insert(old_row))

    def on_update(self, table: Table, pointer: TuplePointer, old_row, new_row) -> None:
        slot = pointer.slot
        self.manager.record_undo(lambda: table.update(slot, old_row))
