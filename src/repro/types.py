"""SQL value types and coercion rules.

The engine supports a compact but realistic type system modeled on the
subset VoltDB exposes: integers, floats, decimals (mapped to ``float`` for
simplicity), varchar, boolean, and timestamp (stored as an integer number
of microseconds, as VoltDB does). ``NULL`` is represented by Python
``None`` and follows SQL three-valued-logic in the expression engine.
"""

from __future__ import annotations

import datetime as _dt
from enum import Enum
from typing import Any, Optional

from .errors import TypeMismatchError


class SqlType(Enum):
    """Column data types understood by the engine."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"
    # Pass-through type for derived columns (materialized view outputs)
    # whose type cannot be inferred statically. No coercion is applied.
    ANY = "ANY"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        """Resolve a type name as written in SQL (case-insensitive).

        Accepts common aliases: INT, TINYINT, SMALLINT, DOUBLE, REAL,
        STRING, TEXT, BOOL, DATE, DATETIME.
        """
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "TINYINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "LONG": cls.BIGINT,
            "DOUBLE": cls.FLOAT,
            "REAL": cls.FLOAT,
            "NUMERIC": cls.DECIMAL,
            "STRING": cls.VARCHAR,
            "TEXT": cls.VARCHAR,
            "CHAR": cls.VARCHAR,
            "BOOL": cls.BOOLEAN,
            "DATE": cls.TIMESTAMP,
            "DATETIME": cls.TIMESTAMP,
        }
        if normalized in aliases:
            return aliases[normalized]
        try:
            return cls(normalized)
        except ValueError:
            raise TypeMismatchError(f"unknown SQL type: {name!r}") from None

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC_TYPES

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]


_NUMERIC_TYPES = frozenset(
    {SqlType.INTEGER, SqlType.BIGINT, SqlType.FLOAT, SqlType.DECIMAL}
)

_PYTHON_TYPES = {
    SqlType.INTEGER: int,
    SqlType.BIGINT: int,
    SqlType.FLOAT: float,
    SqlType.DECIMAL: float,
    SqlType.VARCHAR: str,
    SqlType.BOOLEAN: bool,
    SqlType.TIMESTAMP: int,
    SqlType.ANY: object,
}

_EPOCH = _dt.datetime(1970, 1, 1)


def timestamp_from_string(text: str) -> int:
    """Parse a date / datetime literal into epoch microseconds.

    Accepts ``YYYY-MM-DD``, ``YYYY-MM-DD HH:MM:SS``, and the paper's
    ``M/D/YYYY`` style (e.g. ``1/1/2000`` in Listing 2).
    """
    text = text.strip()
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d", "%m/%d/%Y", "%d/%m/%Y"):
        try:
            parsed = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        return int((parsed - _EPOCH).total_seconds() * 1_000_000)
    raise TypeMismatchError(f"cannot parse timestamp literal: {text!r}")


def timestamp_to_string(micros: int) -> str:
    """Render epoch microseconds back as ``YYYY-MM-DD HH:MM:SS``."""
    moment = _EPOCH + _dt.timedelta(microseconds=micros)
    return moment.strftime("%Y-%m-%d %H:%M:%S")


def coerce(value: Any, sql_type: SqlType, column: str = "?") -> Optional[Any]:
    """Coerce ``value`` to the Python representation of ``sql_type``.

    ``None`` passes through (SQL NULL). Numeric widening (int -> float)
    is silent; lossy or nonsensical conversions raise
    :class:`TypeMismatchError` naming the column.
    """
    if value is None:
        return None
    if sql_type is SqlType.ANY:
        return value
    if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                pass
        raise TypeMismatchError(
            f"column {column}: cannot store {value!r} as {sql_type.value}"
        )
    if sql_type in (SqlType.FLOAT, SqlType.DECIMAL):
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(
            f"column {column}: cannot store {value!r} as {sql_type.value}"
        )
    if sql_type is SqlType.VARCHAR:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        raise TypeMismatchError(
            f"column {column}: cannot store {value!r} as VARCHAR"
        )
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise TypeMismatchError(
            f"column {column}: cannot store {value!r} as BOOLEAN"
        )
    if sql_type is SqlType.TIMESTAMP:
        if isinstance(value, bool):
            raise TypeMismatchError(
                f"column {column}: cannot store {value!r} as TIMESTAMP"
            )
        if isinstance(value, int):
            return value
        if isinstance(value, _dt.datetime):
            return int((value - _EPOCH).total_seconds() * 1_000_000)
        if isinstance(value, str):
            return timestamp_from_string(value)
        raise TypeMismatchError(
            f"column {column}: cannot store {value!r} as TIMESTAMP"
        )
    raise TypeMismatchError(f"unhandled SQL type: {sql_type}")
