"""Physical path-scan algorithms: DFScan, BFScan, SPScan (Sections 5–6).

All three are *lazy* generators following the iterator model, so parent
operators (e.g. ``LIMIT 1`` reachability queries, Listing 3) pull exactly
as many paths as they need. Paths are always **simple** — a vertex
appears at most once per path.

Filter pushdown (Section 6.2) happens through a :class:`TraversalSpec`:
positional edge/vertex predicates, inferred length bounds (Section 6.1),
and monotone aggregate bounds are all checked *during* traversal so
rejected paths never leave the scan.

Two exploration disciplines are provided, matching the two query classes
in the paper's evaluation:

* **enumeration** (default): every simple path satisfying the spec is
  produced — required for pattern queries such as triangle counting;
* **global visited-once** (``unique_vertices=True``): each vertex is
  expanded at most once for the whole traversal, producing one (shortest
  in hops, for BFS) path per reached vertex — the discipline reachability
  queries need, linear in the graph size.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..budget import current_token
from ..errors import ExecutionError
from .graph_view import GraphView
from .path import Path
from .topology import Edge, Vertex


class PositionalFilter:
    """A predicate on the edge/vertex at positions ``[start..end]``.

    ``end is None`` encodes the paper's ``*`` (open-ended range); a
    single-index predicate ``[i]`` is the range ``[i..i]``.
    """

    __slots__ = ("start", "end", "predicate")

    def __init__(
        self,
        start: int,
        end: Optional[int],
        predicate: Callable[[Any], bool],
    ):
        self.start = start
        self.end = end
        self.predicate = predicate

    def applies_at(self, position: int) -> bool:
        if position < self.start:
            return False
        return self.end is None or position <= self.end

    def must_be_covered(self) -> int:
        """Minimum number of elements the path needs for this filter to
        have been fully evaluated (drives length inference)."""
        return self.start + 1 if self.end is None else self.end + 1


class SumBound:
    """A prunable aggregate constraint such as ``SUM(PS.Edges.Cost) < 10``.

    Pruning mid-traversal is only sound while every observed increment is
    non-negative (the running sum is then monotone); the final check at
    yield time is always exact.
    """

    __slots__ = ("attribute_of", "op", "bound")

    def __init__(
        self,
        attribute_of: Callable[[Edge], Any],
        op: str,
        bound: float,
    ):
        if op not in ("<", "<=", ">", ">=", "=", "<>"):
            raise ExecutionError(f"unsupported aggregate bound op: {op}")
        self.attribute_of = attribute_of
        self.op = op
        self.bound = bound

    def violated_finally(self, total: float) -> bool:
        op, bound = self.op, self.bound
        if op == "<":
            return not total < bound
        if op == "<=":
            return not total <= bound
        if op == ">":
            return not total > bound
        if op == ">=":
            return not total >= bound
        if op == "=":
            return total != bound
        return total == bound  # op == '<>'

    def prunable_now(self, running: float, all_non_negative: bool) -> bool:
        """True when no extension of the path can ever satisfy the bound."""
        if not all_non_negative:
            return False
        if self.op == "<":
            return running >= self.bound
        if self.op == "<=":
            return running > self.bound
        return False


class TraversalSpec:
    """Everything the optimizer pushed into the path scan."""

    def __init__(
        self,
        min_length: int = 1,
        max_length: Optional[int] = None,
        edge_filters: Optional[List[PositionalFilter]] = None,
        vertex_filters: Optional[List[PositionalFilter]] = None,
        sum_bounds: Optional[List[SumBound]] = None,
        path_predicate: Optional[Callable[[Path], bool]] = None,
        target_vertex_id: Any = None,
        unique_vertices: bool = False,
        target_is_start: bool = False,
    ):
        self.min_length = max(min_length, 1)
        self.max_length = max_length
        self.edge_filters = edge_filters or []
        self.vertex_filters = vertex_filters or []
        self.sum_bounds = sum_bounds or []
        self.path_predicate = path_predicate
        self.target_vertex_id = target_vertex_id
        self.unique_vertices = unique_vertices
        # Cycle queries (``PS.StartVertexId = PS.EndVertexId``): only
        # paths closing onto their own start vertex are produced. The
        # scans check this *before* materializing a Path (Section 6.2's
        # early pruning applied to the pattern workload).
        self.target_is_start = target_is_start

    # -------------------------- checks --------------------------------

    def edge_allowed(self, position: int, edge: Edge) -> bool:
        for filt in self.edge_filters:
            if filt.applies_at(position) and not filt.predicate(edge):
                return False
        return True

    def vertex_allowed(self, position: int, vertex: Vertex) -> bool:
        for filt in self.vertex_filters:
            if filt.applies_at(position) and not filt.predicate(vertex):
                return False
        return True

    def length_could_grow_to(self, current_length: int) -> bool:
        return self.max_length is None or current_length < self.max_length

    def emit_ok(self, path: Path, sums: Tuple[float, ...]) -> bool:
        """Final gate before a path leaves the scan."""
        if path.length < self.min_length:
            return False
        if self.max_length is not None and path.length > self.max_length:
            return False
        # Positional filters with ranges the path never reached: the
        # paper treats e.g. Edges[5..*] as requiring length >= 6, which
        # length inference encodes in min_length; nothing more to check.
        if self.target_vertex_id is not None:
            if path.end_vertex_id != self.target_vertex_id:
                return False
        for bound, total in zip(self.sum_bounds, sums):
            if bound.violated_finally(total):
                return False
        if self.path_predicate is not None and not self.path_predicate(path):
            return False
        return True


class TraversalStats:
    """Counters collected by a scan (memory ablation + EXPLAIN ANALYZE)."""

    __slots__ = (
        "paths_emitted",
        "vertices_visited",
        "edges_examined",
        "peak_frontier",
    )

    def __init__(self):
        self.paths_emitted = 0
        self.vertices_visited = 0
        self.edges_examined = 0
        self.peak_frontier = 0

    def note_frontier(self, size: int) -> None:
        if size > self.peak_frontier:
            self.peak_frontier = size

    def __repr__(self) -> str:
        return (
            f"TraversalStats(paths={self.paths_emitted}, "
            f"vertices={self.vertices_visited}, "
            f"edges={self.edges_examined}, peak={self.peak_frontier})"
        )


def _next_vertex_id(view: GraphView, current_id: Any, edge: Edge) -> Any:
    if view.directed:
        return edge.to_id
    return edge.other_endpoint(current_id)


def _start_vertices(
    view: GraphView, start_ids: Optional[Iterable[Any]]
) -> Iterator[Vertex]:
    """Resolve requested start identifiers (or all vertices, Section 5.1.2)."""
    if start_ids is None:
        yield from view.iter_vertices()
        return
    for vertex_id in start_ids:
        vertex = view.find_vertex(vertex_id)
        if vertex is not None:
            yield vertex


# ---------------------------------------------------------------------------
# DFScan
# ---------------------------------------------------------------------------


def dfs_paths(
    view: GraphView,
    start_ids: Optional[Iterable[Any]],
    spec: TraversalSpec,
    stats: Optional[TraversalStats] = None,
) -> Iterator[Path]:
    """Depth-first path scan. Stack holds one edge iterator per level,
    so memory is O(F * L) as analysed in Section 6.3."""
    if stats is None:
        stats = TraversalStats()
    if spec.unique_vertices:
        yield from _dfs_global(view, start_ids, spec, stats)
        return
    topology = view.topology
    vertices_map = topology.vertices
    edges_map = topology.edges
    directed = view.directed
    check_edges = bool(spec.edge_filters)
    check_vertices = bool(spec.vertex_filters)
    sum_bounds = spec.sum_bounds
    n_bounds = len(sum_bounds)
    min_length = spec.min_length
    max_length = spec.max_length
    target_is_start = spec.target_is_start
    static_target = spec.target_vertex_id
    # dispatch shortcut: a single position-independent edge filter is by
    # far the most common pushed shape (selectivity / label predicates)
    single_edge_predicate = None
    if check_edges and len(spec.edge_filters) == 1:
        only_filter = spec.edge_filters[0]
        if only_filter.start == 0 and only_filter.end is None:
            single_edge_predicate = only_filter.predicate
            check_edges = False
    examined = 0
    visited = 0
    peak = 0
    # resource governor: budgets abort runaway enumerations (a cyclic
    # graph with no length bound has a combinatorial path space)
    token = current_token()
    try:
        for start in _start_vertices(view, start_ids):
            visited += 1
            if token is not None:
                token.tick_vertex()
            if check_vertices and not spec.vertex_allowed(0, start):
                continue
            start_id = start.id
            target = start_id if target_is_start else static_target
            path_vertices: List[Vertex] = [start]
            path_edges: List[Edge] = []
            on_path: Set[Any] = {start_id}
            sums_stack: List[Tuple[float, ...]] = [(0.0,) * n_bounds]
            non_negative = True
            iterators: List[Iterator[Any]] = [iter(start.out_edges)]
            depth = 0  # == len(path_edges)
            while iterators:
                if len(iterators) > peak:
                    peak = len(iterators)
                edge_id = next(iterators[-1], None)
                if edge_id is None:
                    iterators.pop()
                    if path_edges:
                        path_edges.pop()
                        removed = path_vertices.pop()
                        on_path.discard(removed.id)
                        sums_stack.pop()
                        depth -= 1
                    continue
                edge = edges_map[edge_id]
                examined += 1
                if token is not None:
                    token.tick_edge()
                if single_edge_predicate is not None:
                    if not single_edge_predicate(edge):
                        continue
                elif check_edges and not spec.edge_allowed(depth, edge):
                    continue
                current_id = path_vertices[-1].id
                if directed:
                    next_id = edge.to_id
                else:
                    next_id = (
                        edge.to_id
                        if edge.from_id == current_id
                        else edge.from_id
                    )
                # Paths are simple, except that an edge may close a cycle
                # back to the start vertex — needed by sub-graph pattern
                # queries such as triangle counting (Listing 4).
                if next_id in on_path:
                    closes_cycle = (
                        next_id == start_id
                        and depth >= 1
                        and all(e.id != edge_id for e in path_edges)
                    )
                    if not closes_cycle:
                        continue  # keep paths simple
                else:
                    closes_cycle = False
                next_vertex = vertices_map.get(next_id)
                if next_vertex is None:
                    continue
                if check_vertices and not spec.vertex_allowed(
                    depth + 1, next_vertex
                ):
                    continue
                if n_bounds:
                    new_sums_list = list(sums_stack[-1])
                    prune = False
                    for i, bound in enumerate(sum_bounds):
                        increment = bound.attribute_of(edge)
                        increment = (
                            0.0 if increment is None else float(increment)
                        )
                        if increment < 0:
                            non_negative = False
                        new_sums_list[i] += increment
                        if bound.prunable_now(new_sums_list[i], non_negative):
                            prune = True
                    if prune:
                        continue
                    new_sums: Tuple[float, ...] = tuple(new_sums_list)
                else:
                    new_sums = ()
                if closes_cycle:
                    # emit the cycle (if it qualifies) but never extend it
                    if depth + 1 >= min_length and (
                        target is None or next_id == target
                    ):
                        candidate = Path(
                            path_vertices + [next_vertex], path_edges + [edge]
                        )
                        if spec.emit_ok(candidate, new_sums):
                            stats.paths_emitted += 1
                            if token is not None:
                                token.tick_path()
                            yield candidate
                    continue
                path_edges.append(edge)
                path_vertices.append(next_vertex)
                on_path.add(next_id)
                sums_stack.append(new_sums)
                depth += 1
                visited += 1
                if token is not None:
                    token.tick_vertex()
                if depth >= min_length and (
                    target is None or next_id == target
                ):
                    candidate = Path(path_vertices, path_edges)
                    if spec.emit_ok(candidate, new_sums):
                        stats.paths_emitted += 1
                        if token is not None:
                            token.tick_path()
                        yield candidate
                if max_length is None or depth < max_length:
                    iterators.append(iter(next_vertex.out_edges))
                else:
                    path_edges.pop()
                    path_vertices.pop()
                    on_path.discard(next_id)
                    sums_stack.pop()
                    depth -= 1
    finally:
        stats.edges_examined += examined
        stats.vertices_visited += visited
        stats.note_frontier(peak)


def _reconstruct_path(
    vertices_map: Dict[Any, Vertex],
    parents: Dict[Any, Optional[Tuple[Any, Edge]]],
    tail_id: Any,
) -> Path:
    """Rebuild a path from per-vertex parent pointers (global modes)."""
    vertex_chain: List[Vertex] = []
    edge_chain: List[Edge] = []
    current = tail_id
    while True:
        vertex_chain.append(vertices_map[current])
        parent = parents[current]
        if parent is None:
            break
        parent_id, edge = parent
        edge_chain.append(edge)
        current = parent_id
    vertex_chain.reverse()
    edge_chain.reverse()
    return Path(vertex_chain, edge_chain)


def _dfs_global(
    view: GraphView,
    start_ids: Optional[Iterable[Any]],
    spec: TraversalSpec,
    stats: TraversalStats,
) -> Iterator[Path]:
    """DFS with a global visited set: one path per reached vertex.

    Uses parent pointers so paths are materialized only when emitted —
    the hot loop allocates nothing proportional to path length.
    """
    topology = view.topology
    vertices_map = topology.vertices
    edges_map = topology.edges
    directed = view.directed
    target = spec.target_vertex_id
    check_edges = bool(spec.edge_filters)
    check_vertices = bool(spec.vertex_filters)
    min_length = spec.min_length
    visited: Set[Any] = set()
    token = current_token()
    for start in _start_vertices(view, start_ids):
        if start.id in visited:
            continue
        if check_vertices and not spec.vertex_allowed(0, start):
            continue
        visited.add(start.id)
        parents: Dict[Any, Optional[Tuple[Any, Edge]]] = {start.id: None}
        stack: List[Tuple[Vertex, int]] = [(start, 0)]
        while stack:
            stats.note_frontier(len(stack))
            vertex, depth = stack.pop()
            stats.vertices_visited += 1
            if token is not None:
                token.tick_vertex()
            if depth >= min_length and depth > 0:
                if target is None or vertex.id == target:
                    candidate = _reconstruct_path(
                        vertices_map, parents, vertex.id
                    )
                    if spec.emit_ok(candidate, ()):
                        stats.paths_emitted += 1
                        if token is not None:
                            token.tick_path()
                        yield candidate
                        if target is not None:
                            return
            if not spec.length_could_grow_to(depth):
                continue
            vertex_id = vertex.id
            for edge_id in vertex.out_edges:
                edge = edges_map[edge_id]
                stats.edges_examined += 1
                if token is not None:
                    token.tick_edge()
                if check_edges and not spec.edge_allowed(depth, edge):
                    continue
                if directed:
                    next_id = edge.to_id
                else:
                    next_id = (
                        edge.to_id if edge.from_id == vertex_id else edge.from_id
                    )
                if next_id in visited:
                    continue
                next_vertex = vertices_map.get(next_id)
                if next_vertex is None:
                    continue
                if check_vertices and not spec.vertex_allowed(
                    depth + 1, next_vertex
                ):
                    continue
                visited.add(next_id)
                parents[next_id] = (vertex_id, edge)
                stack.append((next_vertex, depth + 1))


# ---------------------------------------------------------------------------
# BFScan
# ---------------------------------------------------------------------------


def bfs_paths(
    view: GraphView,
    start_ids: Optional[Iterable[Any]],
    spec: TraversalSpec,
    stats: Optional[TraversalStats] = None,
) -> Iterator[Path]:
    """Breadth-first path scan. The queue can hold O(F^L) partial paths
    (Section 6.3), which the memory ablation measures via ``stats``."""
    if stats is None:
        stats = TraversalStats()
    if spec.unique_vertices:
        yield from _bfs_global(view, start_ids, spec, stats)
        return
    from collections import deque

    topology = view.topology
    n_bounds = len(spec.sum_bounds)
    queue: "deque[Tuple[Tuple[Vertex, ...], Tuple[Edge, ...], Tuple[float, ...], bool]]" = (
        deque()
    )
    target_is_start = spec.target_is_start
    static_target = spec.target_vertex_id
    token = current_token()
    for start in _start_vertices(view, start_ids):
        if spec.vertex_allowed(0, start):
            queue.append(((start,), (), (0.0,) * n_bounds, True))
    while queue:
        stats.note_frontier(len(queue))
        vertices, edges, sums, non_negative = queue.popleft()
        stats.vertices_visited += 1
        if token is not None:
            token.tick_vertex()
        target = vertices[0].id if target_is_start else static_target
        if (
            edges
            and len(edges) >= spec.min_length
            and (target is None or vertices[-1].id == target)
        ):
            candidate = Path(vertices, edges)
            if spec.emit_ok(candidate, sums):
                stats.paths_emitted += 1
                if token is not None:
                    token.tick_path()
                yield candidate
        if not spec.length_could_grow_to(len(edges)):
            continue
        current = vertices[-1]
        on_path = {v.id for v in vertices}
        position = len(edges)
        for edge in topology.out_edges_of(current.id):
            stats.edges_examined += 1
            if token is not None:
                token.tick_edge()
            if not spec.edge_allowed(position, edge):
                continue
            next_id = _next_vertex_id(view, current.id, edge)
            closes_cycle = (
                next_id == vertices[0].id
                and position >= 1
                and all(e.id != edge.id for e in edges)
            )
            if next_id in on_path and not closes_cycle:
                continue
            next_vertex = topology.vertices.get(next_id)
            if next_vertex is None:
                continue
            if not spec.vertex_allowed(position + 1, next_vertex):
                continue
            new_non_negative = non_negative
            new_sums = list(sums)
            prune = False
            for i, bound in enumerate(spec.sum_bounds):
                increment = bound.attribute_of(edge)
                increment = 0.0 if increment is None else float(increment)
                if increment < 0:
                    new_non_negative = False
                new_sums[i] += increment
                if bound.prunable_now(new_sums[i], new_non_negative):
                    prune = True
            if prune:
                continue
            if closes_cycle:
                # emit the closing cycle directly; cycles never extend
                if position + 1 >= spec.min_length and (
                    target is None or next_id == target
                ):
                    candidate = Path(
                        vertices + (next_vertex,), edges + (edge,)
                    )
                    if spec.emit_ok(candidate, tuple(new_sums)):
                        stats.paths_emitted += 1
                        if token is not None:
                            token.tick_path()
                        yield candidate
                continue
            queue.append(
                (
                    vertices + (next_vertex,),
                    edges + (edge,),
                    tuple(new_sums),
                    new_non_negative,
                )
            )


def _bfs_global(
    view: GraphView,
    start_ids: Optional[Iterable[Any]],
    spec: TraversalSpec,
    stats: TraversalStats,
) -> Iterator[Path]:
    """BFS with a global visited set: the hop-minimal path per vertex.

    This is the discipline used by the reachability experiments
    (Figure 7): linear in the explored subgraph, stopping as soon as the
    target is reached when one is known. Parent pointers keep the hot
    loop allocation-free; paths materialize only at emission.
    """
    from collections import deque

    topology = view.topology
    vertices_map = topology.vertices
    edges_map = topology.edges
    directed = view.directed
    target = spec.target_vertex_id
    check_edges = bool(spec.edge_filters)
    check_vertices = bool(spec.vertex_filters)
    min_length = spec.min_length
    visited: Set[Any] = set()
    parents: Dict[Any, Optional[Tuple[Any, Edge]]] = {}
    queue: "deque[Tuple[Vertex, int]]" = deque()
    token = current_token()
    for start in _start_vertices(view, start_ids):
        if start.id in visited:
            continue
        if check_vertices and not spec.vertex_allowed(0, start):
            continue
        visited.add(start.id)
        parents[start.id] = None
        queue.append((start, 0))
    while queue:
        stats.note_frontier(len(queue))
        vertex, depth = queue.popleft()
        stats.vertices_visited += 1
        if token is not None:
            token.tick_vertex()
        if depth >= min_length and depth > 0:
            if target is None or vertex.id == target:
                candidate = _reconstruct_path(vertices_map, parents, vertex.id)
                if spec.emit_ok(candidate, ()):
                    stats.paths_emitted += 1
                    if token is not None:
                        token.tick_path()
                    yield candidate
                    if target is not None:
                        return
        if not spec.length_could_grow_to(depth):
            continue
        vertex_id = vertex.id
        next_depth = depth + 1
        for edge_id in vertex.out_edges:
            edge = edges_map[edge_id]
            stats.edges_examined += 1
            if token is not None:
                token.tick_edge()
            if check_edges and not spec.edge_allowed(depth, edge):
                continue
            if directed:
                next_id = edge.to_id
            else:
                next_id = (
                    edge.to_id if edge.from_id == vertex_id else edge.from_id
                )
            if next_id in visited:
                continue
            next_vertex = vertices_map.get(next_id)
            if next_vertex is None:
                continue
            if check_vertices and not spec.vertex_allowed(
                next_depth, next_vertex
            ):
                continue
            visited.add(next_id)
            parents[next_id] = (vertex_id, edge)
            queue.append((next_vertex, next_depth))


# ---------------------------------------------------------------------------
# SPScan
# ---------------------------------------------------------------------------


def shortest_paths(
    view: GraphView,
    start_ids: Optional[Iterable[Any]],
    spec: TraversalSpec,
    weight_of: Callable[[Edge], float],
    max_paths_per_vertex: int = 1,
    stats: Optional[TraversalStats] = None,
) -> Iterator[Path]:
    """Dijkstra-based shortest-path scan (SPScan, Section 6.3).

    Yields simple paths in non-decreasing total weight, lazily, as pulled
    by the parent operator — exactly the paper's top-k use case
    (Listing 6). With ``max_paths_per_vertex = 1`` this is classic
    Dijkstra (each vertex settled once); with ``k`` it enumerates up to
    ``k`` distinct shortest simple paths per vertex, supporting
    ``SELECT TOP k`` queries.

    Edge weights must be non-negative (Dijkstra's precondition); a
    negative weight raises :class:`~repro.errors.ExecutionError`.
    """
    if stats is None:
        stats = TraversalStats()
    topology = view.topology
    counter = itertools.count()
    heap: List[Tuple[float, int, Tuple[Vertex, ...], Tuple[Edge, ...]]] = []
    settled: Dict[Any, int] = {}
    token = current_token()
    for start in _start_vertices(view, start_ids):
        if spec.vertex_allowed(0, start):
            heapq.heappush(heap, (0.0, next(counter), (start,), ()))
    while heap:
        stats.note_frontier(len(heap))
        cost, _tiebreak, vertices, edges = heapq.heappop(heap)
        stats.vertices_visited += 1
        if token is not None:
            token.tick_vertex()
        tail = vertices[-1]
        times_settled = settled.get(tail.id, 0)
        if times_settled >= max_paths_per_vertex:
            continue
        settled[tail.id] = times_settled + 1
        if edges and len(edges) >= spec.min_length:
            candidate = Path(vertices, edges, cost=cost)
            if spec.emit_ok(candidate, ()):
                stats.paths_emitted += 1
                if token is not None:
                    token.tick_path()
                yield candidate
                if (
                    spec.target_vertex_id is not None
                    and settled.get(spec.target_vertex_id, 0)
                    >= max_paths_per_vertex
                ):
                    return
        if not spec.length_could_grow_to(len(edges)):
            continue
        on_path = {v.id for v in vertices}
        position = len(edges)
        for edge in topology.out_edges_of(tail.id):
            stats.edges_examined += 1
            if token is not None:
                token.tick_edge()
            if not spec.edge_allowed(position, edge):
                continue
            next_id = _next_vertex_id(view, tail.id, edge)
            if next_id in on_path:
                continue
            if settled.get(next_id, 0) >= max_paths_per_vertex:
                continue
            next_vertex = topology.vertices.get(next_id)
            if next_vertex is None:
                continue
            if not spec.vertex_allowed(position + 1, next_vertex):
                continue
            weight = weight_of(edge)
            weight = 0.0 if weight is None else float(weight)
            if weight < 0:
                raise ExecutionError(
                    "SPScan requires non-negative edge weights "
                    f"(edge {edge.id!r} has weight {weight})"
                )
            heapq.heappush(
                heap,
                (
                    cost + weight,
                    next(counter),
                    vertices + (next_vertex,),
                    edges + (edge,),
                ),
            )


# ---------------------------------------------------------------------------
# logical -> physical selection (Section 6.3)
# ---------------------------------------------------------------------------


def choose_traversal(
    average_fan_out: float,
    inferred_length: Optional[int],
    default: str = "DFS",
) -> str:
    """Pick BFScan or DFScan by the paper's memory analysis.

    A DFS stack holds ~``F * L`` entries while a BFS queue holds ~``F^L``,
    so BFS is selected exactly when ``F^L < F * L`` — evaluated in log
    space to avoid overflow. Without an inferred length the configured
    default operator is used, as in the paper.
    """
    if inferred_length is None or inferred_length <= 0:
        return default
    fan_out = max(average_fan_out, 1e-9)
    length = inferred_length
    bfs_cost = length * math.log(fan_out)
    dfs_cost = math.log(fan_out) + math.log(length)
    return "BFS" if bfs_cost < dfs_cost else "DFS"
