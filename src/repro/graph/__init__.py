"""Native graph support (system S7) — the paper's primary contribution.

A *graph view* (Section 3) materializes only the **topology** of a graph
declared over relational sources, as adjacency lists in main memory. The
vertex/edge attributes stay in their relational tables and are reached
through tuple pointers, giving O(1) navigation in both directions.

The package also provides the traversal machinery behind the ``PATHS``
construct (Section 4): lazy depth-first, breadth-first and shortest-path
scans with filter pushdown (Sections 5–6).
"""

from .topology import Vertex, Edge, GraphTopology
from .path import Path
from .graph_view import GraphView, GraphSchema, build_graph_view
from .traversal import (
    TraversalSpec,
    dfs_paths,
    bfs_paths,
    shortest_paths,
    choose_traversal,
)
from . import algorithms

__all__ = [
    "Vertex",
    "Edge",
    "GraphTopology",
    "Path",
    "GraphView",
    "GraphSchema",
    "build_graph_view",
    "TraversalSpec",
    "dfs_paths",
    "bfs_paths",
    "shortest_paths",
    "choose_traversal",
    "algorithms",
]
