"""The materialized graph topology (Section 3.2 of the paper).

The topology is a native adjacency-list structure kept entirely in main
memory. It stores **no attributes** — every vertex and edge carries a
:class:`~repro.storage.table.TuplePointer` back to the relational tuple
that describes it, and the relational tuple can locate its graph element
in O(1) through the vertex/edge hash maps. This bi-directional linkage is
the paper's key design: the topology acts as a *traversal index* over the
relational data.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Optional

from ..errors import GraphViewError, IntegrityError
from ..storage.table import TuplePointer


def _canonical(identifier: Any) -> str:
    """Type-tagged text form of a vertex/edge identifier, so that e.g.
    ``1``, ``1.0``, ``True`` and ``"1"`` digest differently."""
    return f"{type(identifier).__name__}\x1f{identifier!r}"


class Vertex:
    """A topology vertex: identifier, adjacency, and a tuple pointer."""

    __slots__ = ("id", "out_edges", "in_edges", "tuple_pointer")

    def __init__(self, vertex_id: Any, tuple_pointer: Optional[TuplePointer]):
        self.id = vertex_id
        self.out_edges: List[Any] = []
        self.in_edges: List[Any] = []
        self.tuple_pointer = tuple_pointer

    @property
    def fan_out(self) -> int:
        """Number of outgoing edges (``FanOut`` in the query language)."""
        return len(self.out_edges)

    @property
    def fan_in(self) -> int:
        """Number of incoming edges (``FanIn`` in the query language)."""
        return len(self.in_edges)

    def __repr__(self) -> str:
        return f"Vertex({self.id!r}, out={self.fan_out}, in={self.fan_in})"


class Edge:
    """A topology edge: identifier, endpoints, and a tuple pointer."""

    __slots__ = ("id", "from_id", "to_id", "tuple_pointer")

    def __init__(
        self,
        edge_id: Any,
        from_id: Any,
        to_id: Any,
        tuple_pointer: Optional[TuplePointer],
    ):
        self.id = edge_id
        self.from_id = from_id
        self.to_id = to_id
        self.tuple_pointer = tuple_pointer

    def other_endpoint(self, vertex_id: Any) -> Any:
        """The endpoint that is not ``vertex_id`` (undirected traversal)."""
        return self.to_id if vertex_id == self.from_id else self.from_id

    def __repr__(self) -> str:
        return f"Edge({self.id!r}, {self.from_id!r}->{self.to_id!r})"


class GraphTopology:
    """Adjacency-list graph with O(1) vertex/edge lookup by identifier.

    For *directed* graphs, traversal follows ``out_edges``. For
    *undirected* graphs, each edge is registered in the ``out_edges`` of
    both endpoints (and in both ``in_edges``), so the same traversal code
    walks the graph in both directions.
    """

    def __init__(self, directed: bool = True):
        self.directed = directed
        self.vertices: Dict[Any, Vertex] = {}
        self.edges: Dict[Any, Edge] = {}

    # ------------------------------------------------------------------
    # construction / maintenance
    # ------------------------------------------------------------------

    def add_vertex(
        self, vertex_id: Any, tuple_pointer: Optional[TuplePointer] = None
    ) -> Vertex:
        if vertex_id is None:
            raise GraphViewError("vertex identifier must not be NULL")
        if vertex_id in self.vertices:
            raise GraphViewError(f"duplicate vertex identifier: {vertex_id!r}")
        vertex = Vertex(vertex_id, tuple_pointer)
        self.vertices[vertex_id] = vertex
        return vertex

    def add_edge(
        self,
        edge_id: Any,
        from_id: Any,
        to_id: Any,
        tuple_pointer: Optional[TuplePointer] = None,
    ) -> Edge:
        if edge_id is None:
            raise GraphViewError("edge identifier must not be NULL")
        if edge_id in self.edges:
            raise GraphViewError(f"duplicate edge identifier: {edge_id!r}")
        if from_id not in self.vertices or to_id not in self.vertices:
            raise IntegrityError(
                f"edge {edge_id!r} references missing vertex "
                f"({from_id!r} -> {to_id!r})"
            )
        edge = Edge(edge_id, from_id, to_id, tuple_pointer)
        self.edges[edge_id] = edge
        self.vertices[from_id].out_edges.append(edge_id)
        self.vertices[to_id].in_edges.append(edge_id)
        if not self.directed:
            if from_id != to_id:
                self.vertices[to_id].out_edges.append(edge_id)
                self.vertices[from_id].in_edges.append(edge_id)
        return edge

    def remove_edge(self, edge_id: Any) -> Edge:
        edge = self.edges.pop(edge_id, None)
        if edge is None:
            raise GraphViewError(f"unknown edge identifier: {edge_id!r}")
        self._unlink(edge)
        return edge

    def _unlink(self, edge: Edge) -> None:
        from_vertex = self.vertices.get(edge.from_id)
        to_vertex = self.vertices.get(edge.to_id)
        if from_vertex is not None:
            while edge.id in from_vertex.out_edges:
                from_vertex.out_edges.remove(edge.id)
            while edge.id in from_vertex.in_edges:
                from_vertex.in_edges.remove(edge.id)
        if to_vertex is not None and to_vertex is not from_vertex:
            while edge.id in to_vertex.out_edges:
                to_vertex.out_edges.remove(edge.id)
            while edge.id in to_vertex.in_edges:
                to_vertex.in_edges.remove(edge.id)

    def remove_vertex(self, vertex_id: Any, cascade: bool = False) -> Vertex:
        """Remove a vertex; with ``cascade`` also drop incident edges."""
        vertex = self.vertices.get(vertex_id)
        if vertex is None:
            raise GraphViewError(f"unknown vertex identifier: {vertex_id!r}")
        incident = set(vertex.out_edges) | set(vertex.in_edges)
        if incident and not cascade:
            raise IntegrityError(
                f"vertex {vertex_id!r} still has {len(incident)} incident "
                "edge(s)"
            )
        for edge_id in incident:
            if edge_id in self.edges:
                self.remove_edge(edge_id)
        del self.vertices[vertex_id]
        return vertex

    def rename_vertex(self, old_id: Any, new_id: Any) -> None:
        """Consistently change a vertex identifier (Section 3.3.1)."""
        if new_id in self.vertices:
            raise GraphViewError(f"vertex identifier in use: {new_id!r}")
        vertex = self.vertices.pop(old_id)
        vertex.id = new_id
        self.vertices[new_id] = vertex
        for edge_id in set(vertex.out_edges) | set(vertex.in_edges):
            edge = self.edges[edge_id]
            if edge.from_id == old_id:
                edge.from_id = new_id
            if edge.to_id == old_id:
                edge.to_id = new_id

    def rename_edge(self, old_id: Any, new_id: Any) -> None:
        if new_id in self.edges:
            raise GraphViewError(f"edge identifier in use: {new_id!r}")
        edge = self.edges.pop(old_id)
        for endpoint in (edge.from_id, edge.to_id):
            vertex = self.vertices.get(endpoint)
            if vertex is None:
                continue
            vertex.out_edges[:] = [
                new_id if e == old_id else e for e in vertex.out_edges
            ]
            vertex.in_edges[:] = [
                new_id if e == old_id else e for e in vertex.in_edges
            ]
        edge.id = new_id
        self.edges[new_id] = edge

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def vertex(self, vertex_id: Any) -> Vertex:
        try:
            return self.vertices[vertex_id]
        except KeyError:
            raise GraphViewError(f"unknown vertex identifier: {vertex_id!r}")

    def edge(self, edge_id: Any) -> Edge:
        try:
            return self.edges[edge_id]
        except KeyError:
            raise GraphViewError(f"unknown edge identifier: {edge_id!r}")

    def has_vertex(self, vertex_id: Any) -> bool:
        return vertex_id in self.vertices

    def has_edge(self, edge_id: Any) -> bool:
        return edge_id in self.edges

    def out_edges_of(self, vertex_id: Any) -> Iterator[Edge]:
        """Edges leaving ``vertex_id`` (both directions when undirected)."""
        for edge_id in self.vertices[vertex_id].out_edges:
            yield self.edges[edge_id]

    def in_edges_of(self, vertex_id: Any) -> Iterator[Edge]:
        for edge_id in self.vertices[vertex_id].in_edges:
            yield self.edges[edge_id]

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def average_fan_out(self) -> float:
        """Mean out-degree — the statistic behind the BFS/DFS heuristic
        of Section 6.3."""
        if not self.vertices:
            return 0.0
        total = sum(v.fan_out for v in self.vertices.values())
        return total / len(self.vertices)

    def memory_estimate_bytes(self) -> int:
        """Rough footprint of the *topology only* (Table 3 reporting).

        Counts the adjacency entries, the endpoint fields, and the hash
        map slots at 8 bytes per reference — a deliberately simple model
        mirroring "compact graph-view structures" in the paper.
        """
        per_vertex = 8 * 4  # id, pointer, two list headers
        per_edge = 8 * 4  # id, from, to, pointer
        adjacency = sum(
            len(v.out_edges) + len(v.in_edges) for v in self.vertices.values()
        )
        return (
            per_vertex * len(self.vertices)
            + per_edge * len(self.edges)
            + 8 * adjacency
        )

    def digest(self) -> str:
        """Stable CRC32 (hex) over the logical topology.

        Covers directedness, the vertex identifier set, and every edge's
        ``(id, from, to)`` triple — the state that must converge
        identically on every replica applying the same logged workload.
        Deliberately insensitive to physical artifacts (adjacency-list
        order, insertion order, tuple pointers), so two topologies built
        along different maintenance paths compare equal iff they
        describe the same graph.
        """
        crc = zlib.crc32(b"directed" if self.directed else b"undirected")
        for key in sorted(_canonical(v) for v in self.vertices):
            crc = zlib.crc32(key.encode("utf-8"), crc)
        edge_keys = sorted(
            f"{_canonical(e.id)}:{_canonical(e.from_id)}>{_canonical(e.to_id)}"
            for e in self.edges.values()
        )
        for key in edge_keys:
            crc = zlib.crc32(key.encode("utf-8"), crc)
        return format(crc, "08x")

    def degree_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for vertex in self.vertices.values():
            histogram[vertex.fan_out] = histogram.get(vertex.fan_out, 0) + 1
        return histogram

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"GraphTopology({kind}, |V|={self.vertex_count}, "
            f"|E|={self.edge_count})"
        )
